//! # dspgemm — facade crate
//!
//! Re-exports the whole workspace under one roof so examples and downstream
//! users can depend on a single crate. See `DESIGN.md` for the architecture
//! and the paper mapping, and the `dspgemm-core` crate for the primary
//! contribution (distributed dynamic sparse matrices + dynamic SpGEMM).

pub use dspgemm_analytics as analytics;
pub use dspgemm_baselines as baselines;
pub use dspgemm_core as core;
pub use dspgemm_graph as graph;
pub use dspgemm_mpi as mpi;
pub use dspgemm_obs as obs;
pub use dspgemm_sparse as sparse;
pub use dspgemm_util as util;
