//! Quickstart: build a distributed dynamic graph, keep `C = A · B` fresh
//! under batched updates, and inspect the communication savings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dspgemm::core::{engine::DynSpGemm, DistMat, Grid};
use dspgemm::graph::rmat::{generate_local, RmatParams};
use dspgemm::sparse::semiring::F64Plus;
use dspgemm::sparse::Triple;
use dspgemm::util::stats::{format_bytes, PhaseTimer};

fn main() {
    let p = 4; // simulated MPI ranks (2x2 grid)
    let threads = 2; // intra-rank worker threads (the paper's OpenMP T)
    let scale = 12; // 4096-vertex R-MAT graph
    let n = 1u32 << scale;

    let sim = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();

        // Every rank independently generates its share of the edge stream —
        // no rank needs to know the data distribution (Section IV-B).
        let edges = generate_local(&RmatParams::GRAPH500, scale, 20_000, 42, comm.rank() as u64);
        let triples: Vec<Triple<f64>> =
            edges.iter().map(|&(u, v)| Triple::new(u, v, 1.0)).collect();

        // B: the adjacency matrix, built through the two-phase redistribution.
        let b = DistMat::from_global_triples(&grid, n, n, triples, threads, &mut timer);
        // A: starts empty; we will grow it dynamically.
        let a = DistMat::empty(&grid, n, n);

        // The engine owns A, B, C and keeps C = A·B under updates.
        let mut engine = DynSpGemm::<F64Plus>::new(&grid, a, b, threads, false);

        // Stream five insertion batches into A.
        for round in 0..5u64 {
            let batch: Vec<Triple<f64>> = generate_local(
                &RmatParams::GRAPH500,
                scale,
                256,
                100 + round,
                comm.rank() as u64,
            )
            .into_iter()
            .map(|(u, v)| Triple::new(u, v, 1.0))
            .collect();
            engine.apply_algebraic(&grid, batch, vec![]);
        }

        let nnz_a = engine.a.global_nnz(&grid);
        let nnz_b = engine.b.global_nnz(&grid);
        let nnz_c = engine.c.global_nnz(&grid);
        if comm.rank() == 0 {
            println!("after 5 dynamic batches on a {p}-rank grid:");
            println!("  nnz(A') = {nnz_a}");
            println!("  nnz(B)  = {nnz_b}");
            println!("  nnz(C') = {nnz_c}   (maintained, never recomputed from scratch)");
            println!("  local flops on rank 0: {}", engine.flops);
            println!("  phase breakdown (rank 0):");
            for (name, d) in engine.timer.entries() {
                println!(
                    "    {name:<18} {}",
                    dspgemm::util::stats::format_duration(d)
                );
            }
        }
        nnz_c
    });

    println!(
        "total simulated communication: {} over {} messages",
        format_bytes(sim.stats.total_bytes()),
        sim.stats.total_msgs()
    );
    println!("{}", sim.stats);
    assert!(sim.results.iter().all(|&x| x == sim.results[0]));
}
