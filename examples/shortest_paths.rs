//! Dynamic multi-source shortest paths over the tropical semiring — the
//! paper's motivating example for *general* updates: under `(min, +)`, edge
//! weight increases and deletions cannot be expressed as semiring addition,
//! so they exercise Algorithm 2 (Bloom-filtered masked recomputation).
//!
//! We maintain `D₂ = W ⊗ W`: the cheapest exactly-two-hop distance between
//! every vertex pair, fresh under weight changes and road closures.
//!
//! ```sh
//! cargo run --release --example shortest_paths
//! ```

use dspgemm::core::{dyn_general::GeneralUpdates, engine::DynSpGemm, DistMat, Grid};
use dspgemm::sparse::semiring::MinPlus;
use dspgemm::sparse::Triple;
use dspgemm::util::stats::PhaseTimer;

fn main() {
    let p = 4;
    // A small ring road network with shortcuts: n cities, ring edges of
    // weight 1, a few expressways of weight 0.5.
    let n: u32 = 64;
    let sim = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let triples: Vec<Triple<f64>> = if comm.rank() == 0 {
            let mut t = Vec::new();
            for i in 0..n {
                t.push(Triple::new(i, (i + 1) % n, 1.0)); // ring
                t.push(Triple::new((i + 1) % n, i, 1.0));
            }
            for i in (0..n).step_by(8) {
                t.push(Triple::new(i, (i + 16) % n, 0.5)); // expressway
            }
            t
        } else {
            vec![]
        };
        let w = DistMat::from_global_triples(&grid, n, n, triples, 1, &mut timer);
        // Track the Bloom filter: general updates are coming.
        let mut engine = DynSpGemm::<MinPlus>::new(&grid, w.clone(), w, 1, true);

        let dist = |eng: &DynSpGemm<MinPlus>, u: u32, v: u32, g: &Grid| -> f64 {
            // The owner looks the value up; everyone learns it via min-reduce.
            let local = eng.c.get_local(u, v).flatten().unwrap_or(f64::INFINITY);
            g.world().allreduce(local, f64::min)
        };

        // Two-hop distance 0 -> 2 via the ring: 1 + 1 = 2.
        let before = dist(&engine, 0, 2, &grid);

        // Roadwork: the ring edge 1 -> 2 triples in cost (a value *increase*
        // — impossible under (min,+) addition, hence a general update)...
        let mut upd = GeneralUpdates::new();
        upd.sets.push(Triple::new(1, 2, 3.0));
        // ...and the expressway 0 -> 16 closes entirely (deletion).
        upd.deletes.push((0, 16));
        engine.apply_general(&grid, upd.clone(), upd);

        let after = dist(&engine, 0, 2, &grid);
        let closed = dist(&engine, 0, 32, &grid);
        (before, after, closed)
    });

    let (before, after, closed) = sim.results[0];
    println!("two-hop distance 0→2 before roadwork: {before}");
    println!("two-hop distance 0→2 after tripling edge 1→2: {after}");
    println!("two-hop distance 0→32 after closing the 0→16 expressway: {closed}");
    assert_eq!(before, 2.0);
    assert_eq!(after, 4.0, "1 + 3 via the ring");
    // 0→16 (0.5) + 16→32 (0.5) is gone; no other two-hop route exists.
    assert!(closed.is_infinite());
    println!(
        "communication: {}",
        dspgemm::util::stats::format_bytes(sim.stats.total_bytes())
    );
}
