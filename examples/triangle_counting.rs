//! Dynamic triangle counting — the classic algebraic-graph use of SpGEMM
//! (the paper's intro cites triangle counting as a motivating application).
//!
//! Triangles through maintained products: keep `C = A · A` fresh under edge
//! insertions with the *dynamic* algebraic algorithm, then
//! `#triangles = (Σ_{(u,v) ∈ A} c_{u,v}) / 6` for an undirected simple
//! graph (each triangle is counted once per directed edge pair).
//!
//! ```sh
//! cargo run --release --example triangle_counting
//! ```

use dspgemm::core::{dyn_algebraic::apply_algebraic_updates, summa::summa, DistMat, Grid};
use dspgemm::graph::{er, symmetrize};
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::{RowScan, Triple};
use dspgemm::util::stats::PhaseTimer;

/// Counts triangles from the maintained product: sum of `C ∘ A` (elementwise
/// product over A's pattern), allreduced, divided by 6.
fn triangles(grid: &Grid, a: &DistMat<u64>, c: &DistMat<u64>) -> u64 {
    let mut local = 0u64;
    a.block().scan_rows(|r, cols, _| {
        for &cc in cols {
            local += c.block().get(r, cc).unwrap_or(0);
        }
    });
    grid.world().allreduce(local, |x, y| x + y) / 6
}

fn main() {
    let p = 4;
    let n: u32 = 600;
    let sim = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();

        // Start with a sparse random graph; keep it simple (no loops, no
        // multi-edges — A must stay 0/1-valued for exact counting, and the
        // algebraic path *adds*, so rank 0 filters already-present edges).
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let base = symmetrize(&er::generate(n, 1200, 9));
        let triples: Vec<Triple<u64>> = if comm.rank() == 0 {
            base.iter()
                .filter(|&&(u, v)| u != v && seen.insert((u, v)))
                .map(|&(u, v)| Triple::new(u, v, 1))
                .collect()
        } else {
            vec![]
        };
        let mut a = DistMat::from_global_triples(&grid, n, n, triples, 1, &mut timer);
        let mut a2 = a.clone(); // the second operand is the same matrix
        let (mut c, _) = summa::<U64Plus>(&grid, &a, &a2, 1, &mut timer);
        let mut counts = vec![triangles(&grid, &a, &c)];

        // Insert undirected edge batches dynamically; each batch patches C.
        for round in 0..4u64 {
            let new_edges = symmetrize(&er::generate(n, 150, 100 + round));
            let batch: Vec<Triple<u64>> = if comm.rank() == 0 {
                new_edges
                    .iter()
                    .filter(|&&(u, v)| u != v && seen.insert((u, v)))
                    .map(|&(u, v)| Triple::new(u, v, 1))
                    .collect()
            } else {
                vec![]
            };
            // A and A² share updates: C' = (A+A*)(A+A*) handled by Eq. 1.
            apply_algebraic_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut a2,
                &mut c,
                batch.clone(),
                batch,
                1,
                &mut timer,
            );
            counts.push(triangles(&grid, &a, &c));
        }
        counts
    });

    println!("dynamic triangle counts after each batch: {:?}", sim.results[0]);
    // Monotone under pure insertions.
    let counts = &sim.results[0];
    assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "communication: {}",
        dspgemm::util::stats::format_bytes(sim.stats.total_bytes())
    );
}
