//! Dynamic triangle counting — the classic algebraic-graph use of SpGEMM
//! (the paper's intro cites triangle counting as a motivating application),
//! served through the analytics layer.
//!
//! An [`AnalyticsSession`] owns the adjacency matrix and keeps `C = A·A`
//! maintained with the shared-operand dynamic algorithm; a registered
//! [`TriangleCountView`] turns the shared per-batch product delta into an
//! incrementally maintained count (`#triangles = (Σ_{(u,v) ∈ A} c_{u,v})/6`
//! for an undirected simple graph), and the session's query API answers
//! point lookups and per-row top-k straight from the maintained product.
//!
//! ```sh
//! cargo run --release --example triangle_counting
//! ```

use dspgemm::analytics::{AnalyticsSession, TriangleCountView};
use dspgemm::graph::{er, symmetrize};
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::Triple;

fn main() {
    let p = 4;
    let n: u32 = 600;
    let sim = dspgemm_mpi::run(p, |comm| {
        // Start with a sparse random graph; keep it simple (no loops, no
        // multi-edges — A must stay 0/1-valued for exact counting, and the
        // algebraic path *adds*, so rank 0 filters already-present edges).
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let base = symmetrize(&er::generate(n, 1200, 9));
        let triples: Vec<Triple<u64>> = if comm.rank() == 0 {
            base.iter()
                .filter(|&&(u, v)| u != v && seen.insert((u, v)))
                .map(|&(u, v)| Triple::new(u, v, 1))
                .collect()
        } else {
            vec![]
        };

        let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, 1, triples);
        let tri = session.register(Box::new(TriangleCountView::new()));
        let count =
            |s: &AnalyticsSession<U64Plus>| s.view_as::<TriangleCountView>(tri).unwrap().count();
        let mut counts = vec![count(&session)];

        // Insert undirected edge batches dynamically; each batch patches C
        // once and the view refreshes from the shared delta.
        for round in 0..4u64 {
            let new_edges = symmetrize(&er::generate(n, 150, 100 + round));
            let batch: Vec<Triple<u64>> = if comm.rank() == 0 {
                new_edges
                    .iter()
                    .filter(|&&(u, v)| u != v && seen.insert((u, v)))
                    .map(|&(u, v)| Triple::new(u, v, 1))
                    .collect()
            } else {
                vec![]
            };
            session.insert_edges(batch);
            counts.push(count(&session));
        }

        // The query API serves straight from the maintained product.
        let busiest = session.product_row_topk(0, 3, |&v| v as f64);
        let c_01 = session.product_entry(0, 1);
        let view = session.view_as::<TriangleCountView>(tri).unwrap();
        (
            counts,
            busiest,
            c_01,
            view.incremental_refreshes,
            view.full_refreshes,
        )
    });

    let (counts, busiest, c_01, incr, full) = &sim.results[0];
    println!("dynamic triangle counts after each batch: {counts:?}");
    println!("top-3 of product row 0 (co-neighbor counts): {busiest:?}");
    println!("point lookup c(0,1): {c_01:?}");
    println!("view refreshes: {incr} incremental, {full} full rescans");
    // Monotone under pure insertions; every refresh took the incremental path.
    assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*incr, 4);
    assert_eq!(*full, 0);
    // All ranks agree (SPMD views).
    assert!(sim.results.iter().all(|r| r.0 == *counts));
    println!(
        "communication: {}",
        dspgemm::util::stats::format_bytes(sim.stats.total_bytes())
    );
}
