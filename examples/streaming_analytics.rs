//! Sliding-window streaming analytics — the "continuously changing inputs"
//! scenario of the paper's introduction (recommender systems / online social
//! networks): a window of recent interactions enters and expires, and the
//! co-interaction profile `C = A · Aᵀ-like product` must stay fresh.
//!
//! Insertions are algebraic; expirations are **deletions**, so the engine
//! alternates Algorithm 1 and Algorithm 2 on the same session — and we
//! compare its communication volume against recomputing from scratch.
//!
//! ```sh
//! cargo run --release --example streaming_analytics
//! ```

use dspgemm::core::{engine::DynSpGemm, dyn_general::GeneralUpdates, DistMat, Grid};
use dspgemm::graph::rmat::{generate_local, RmatParams};
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::Triple;
use dspgemm::util::stats::{format_bytes, PhaseTimer};

const WINDOW: usize = 3; // batches kept live
const ROUNDS: u64 = 6;
const BATCH: usize = 400;

fn batch_edges(scale: u32, round: u64, rank: usize) -> Vec<(u32, u32)> {
    let mut e = generate_local(&RmatParams::GRAPH500, scale, BATCH, 1000 + round, rank as u64);
    e.dedup();
    e
}

fn main() {
    let p = 4;
    let scale = 11;
    let n = 1u32 << scale;

    // Dynamic run: maintain C across the sliding window.
    let dynamic = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let b_triples: Vec<Triple<u64>> = generate_local(
            &RmatParams::GRAPH500,
            scale,
            8_000,
            5,
            comm.rank() as u64,
        )
        .into_iter()
        .map(|(u, v)| Triple::new(u, v, 1))
        .collect();
        let b = DistMat::from_global_triples(&grid, n, n, b_triples, 1, &mut timer);
        let a = DistMat::empty(&grid, n, n);
        let mut engine = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, true);

        let mut nnz_series = Vec::new();
        for round in 0..ROUNDS {
            // New interactions arrive (algebraic inserts into A).
            let arriving: Vec<Triple<u64>> = batch_edges(scale, round, comm.rank())
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1))
                .collect();
            engine.apply_algebraic(&grid, arriving, vec![]);
            // The oldest batch expires (general deletions from A).
            if round >= WINDOW as u64 {
                let expiring = batch_edges(scale, round - WINDOW as u64, comm.rank());
                let mut upd = GeneralUpdates::new();
                upd.deletes = expiring;
                engine.apply_general(&grid, upd, GeneralUpdates::new());
            }
            nnz_series.push((
                engine.a.global_nnz(&grid),
                engine.c.global_nnz(&grid),
            ));
        }
        nnz_series
    });

    println!("round | nnz(A-window) | nnz(C maintained)");
    for (i, (a, c)) in dynamic.results[0].iter().enumerate() {
        println!("{i:>5} | {a:>13} | {c:>16}");
    }
    // The window caps A's size: after warm-up it stays roughly flat.
    let series = &dynamic.results[0];
    let warm = series[WINDOW - 1].0;
    let last = series.last().unwrap().0;
    assert!(
        last < warm * 2,
        "window should bound nnz(A): warm {warm}, last {last}"
    );
    println!(
        "\ndynamic maintenance communication: {}",
        format_bytes(dynamic.stats.total_bytes())
    );
    println!("{}", dynamic.stats);
}
