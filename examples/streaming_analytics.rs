//! Sliding-window streaming analytics — the "continuously changing inputs"
//! scenario of the paper's introduction (recommender systems / online social
//! networks), served as **concurrent maintained views** on one
//! [`AnalyticsSession`].
//!
//! A window of recent interactions enters and expires: insertions are
//! algebraic (Algorithm 1), expirations are deletions (Algorithm 2). Each
//! round redistributes one shared batch that simultaneously refreshes the
//! maintained product `C = A·A` and three registered views — the triangle
//! count, link-prediction scores over a candidate mask, and the degree
//! vector — while the per-round cost tracks the batch, never the graph.
//!
//! ```sh
//! cargo run --release --example streaming_analytics
//! ```

use dspgemm::analytics::{AnalyticsSession, CommonNeighborsView, DegreeView, TriangleCountView};
use dspgemm::core::dyn_general::GeneralUpdates;
use dspgemm::graph::rmat::{generate_local, RmatParams};
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::Triple;
use dspgemm::util::stats::format_bytes;

const WINDOW: usize = 3; // batches kept live
const ROUNDS: u64 = 6;
const BATCH: usize = 400;

fn batch_edges(scale: u32, round: u64, rank: usize) -> Vec<(u32, u32)> {
    let mut e = generate_local(
        &RmatParams::GRAPH500,
        scale,
        BATCH,
        1000 + round,
        rank as u64,
    );
    e.dedup();
    e
}

fn main() {
    let p = 4;
    let scale = 11;
    let n = 1u32 << scale;

    let sim = dspgemm_mpi::run(p, |comm| {
        // The session starts from a warm base graph so the candidate mask
        // and product are non-trivial from round 0.
        let base: Vec<Triple<u64>> =
            generate_local(&RmatParams::GRAPH500, scale, 8_000, 5, comm.rank() as u64)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1))
                .collect();
        let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, 1, base);

        // Three concurrent views fed from each round's single shared batch.
        let tri = session.register(Box::new(TriangleCountView::new()));
        let candidates: Vec<(u32, u32)> = (0..40).map(|i| (i, (i * 7 + 3) % 64)).collect();
        let cn = session.register(Box::new(CommonNeighborsView::new(candidates)));
        let deg = session.register(Box::new(DegreeView::new(1u64)));

        let mut series = Vec::new();
        for round in 0..ROUNDS {
            // New interactions arrive (algebraic inserts).
            let arriving: Vec<Triple<u64>> = batch_edges(scale, round, comm.rank())
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1))
                .collect();
            session.insert_edges(arriving);
            // The oldest batch expires (general deletions).
            if round >= WINDOW as u64 {
                let expiring = batch_edges(scale, round - WINDOW as u64, comm.rank());
                let mut upd = GeneralUpdates::new();
                upd.deletes = expiring;
                session.apply_general(upd);
            }
            let (nnz_a, nnz_c) = session.global_nnz();
            let triangles = session.view_as::<TriangleCountView>(tri).unwrap().count();
            let hot_pair = session
                .view_as::<CommonNeighborsView<U64Plus>>(cn)
                .unwrap()
                .top_k(session.grid(), 1, |&s| s as f64)
                .first()
                .copied();
            let deg0 = session
                .view_as::<DegreeView<U64Plus>>(deg)
                .unwrap()
                .degree(session.grid(), 0)
                .unwrap();
            series.push((nnz_a, nnz_c, triangles, hot_pair, deg0));
        }
        series
    });

    println!("round | nnz(A-window) | nnz(C) | triangles | hottest candidate | deg(0)");
    for (i, (a, c, t, hot, d0)) in sim.results[0].iter().enumerate() {
        let hot = hot
            .map(|(u, v, s)| format!("({u},{v})={s}"))
            .unwrap_or_else(|| "-".into());
        println!("{i:>5} | {a:>13} | {c:>6} | {t:>9} | {hot:>17} | {d0:>6}");
    }
    // The window caps A's size: after warm-up it stays roughly flat.
    let series = &sim.results[0];
    let warm = series[WINDOW - 1].0;
    let last = series.last().unwrap().0;
    assert!(
        last < warm * 2,
        "window should bound nnz(A): warm {warm}, last {last}"
    );
    // All ranks serve identical view values.
    assert!(sim.results.iter().all(|s| s == series));
    println!(
        "\ndynamic maintenance communication: {}",
        format_bytes(sim.stats.total_bytes())
    );
    println!("{}", sim.stats);
}
