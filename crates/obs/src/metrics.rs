//! Metrics primitives: counters, gauges, log-bucketed histograms, and the
//! registry that names them.
//!
//! Everything here is *mergeable*: per-rank (or per-thread) instances can be
//! combined after the fact by bucket-wise / entry-wise addition, so no
//! cross-rank synchronisation is needed while measurements are taken. The
//! [`Histogram`] is the single percentile implementation for the whole
//! workspace — no latency sample is ever stored or sorted.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Sub-bucket resolution exponent of [`Histogram`]: each power-of-two octave
/// is split into `2^SUB_BITS = 32` linear sub-buckets.
///
/// The worst-case relative quantile error is half a sub-bucket width,
/// `2^-(SUB_BITS+1)` ≈ 1.6%, and the guaranteed bound is one sub-bucket,
/// `2^-SUB_BITS` ≈ 3.1%. Values below `2^SUB_BITS` are recorded exactly.
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Bucket-array length: one linear region (`SUB_COUNT` exact buckets for the
/// first two octaves) plus 32 sub-buckets for each of the remaining octaves
/// of a `u64`.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

/// A mergeable log-linear (HDR-style) histogram over `u64` samples.
///
/// Recording is O(1) (a shift and two adds — no allocation, no sorting);
/// quantiles are read by a single forward walk over the bucket array.
/// `count`, `sum`, `min`, and `max` are tracked exactly; quantiles in
/// between are accurate to one sub-bucket (see [`SUB_BITS`]). Merging two
/// histograms is bucket-wise addition, which makes the operation
/// associative and commutative — per-rank histograms can be reduced in any
/// order and the quantiles come out identical.
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

/// Bucket index for a sample value.
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((((msb - SUB_BITS + 1) as u64) << SUB_BITS) + ((v >> shift) & (SUB_COUNT - 1))) as usize
}

/// Inclusive-lower / exclusive-upper bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB_COUNT {
        return (i, i + 1);
    }
    let oct = i >> SUB_BITS;
    let pos = i & (SUB_COUNT - 1);
    let msb = oct as u32 + SUB_BITS - 1;
    let width = 1u64 << (msb - SUB_BITS);
    let lo = (1u64 << msb) + pos * width;
    (lo, lo.saturating_add(width))
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile `q` in `[0, 1]`.
    ///
    /// Rank selection matches the sort-based estimator this replaces
    /// (`samples[round((n-1)·q)]` on the sorted samples): the returned
    /// value is the midpoint of the bucket holding that rank, clamped to
    /// the exact `[min, max]`, so it differs from the sorted answer by at
    /// most one sub-bucket (see [`SUB_BITS`]).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// [`Histogram::quantile`] of a nanosecond histogram, as a `Duration`.
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile(q))
    }

    /// Merges `other` into `self` by bucket-wise addition (associative and
    /// commutative; exact for `count`/`sum`/`min`/`max`).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty `(bucket_lo, bucket_hi, count)` triples, for export.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

/// An ordered bank of named `u64` counters, preserving first-use order.
///
/// This is the storage primitive behind `util::stats::PhaseTimer`: phase
/// nanoseconds, overlapped nanoseconds, and per-thread flop counters are
/// all counter banks, and the timer's `merge`/`merge_max` are the bank's
/// [`CounterBank::merge_sum`] / [`CounterBank::merge_max`]. First-use
/// ordering is load-bearing — breakdown tables print phases in the order
/// the algorithm first recorded them.
#[derive(Debug, Default, Clone)]
pub struct CounterBank {
    entries: Vec<(String, u64)>,
}

impl CounterBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `name` (creating it if new).
    pub fn add(&mut self, name: &str, v: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 += v;
        } else {
            self.entries.push((name.to_string(), v));
        }
    }

    /// Raises counter `name` to at least `v` (creating it if new).
    pub fn raise(&mut self, name: &str, v: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 = e.1.max(v);
        } else {
            self.entries.push((name.to_string(), v));
        }
    }

    /// Current value of counter `name` (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// All `(name, value)` entries in first-use order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Sum of all counter values.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, v)| *v).sum()
    }

    /// Merges `other` by per-name addition (first-use order of `self`
    /// extended by `other`'s new names).
    pub fn merge_sum(&mut self, other: &CounterBank) {
        for (n, v) in &other.entries {
            self.add(n, *v);
        }
    }

    /// Merges `other` by per-name maximum — the critical-path view over
    /// per-rank banks.
    pub fn merge_max(&mut self, other: &CounterBank) {
        for (n, v) in &other.entries {
            self.raise(n, *v);
        }
    }
}

/// A point-in-time copy of a [`Registry`]'s contents.
#[derive(Debug, Default, Clone)]
pub struct RegistrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl RegistrySnapshot {
    /// Renders the snapshot as a self-describing JSON document: counters
    /// and gauges verbatim, histograms as summary statistics
    /// (count/sum/min/max/mean and the standard quantiles) plus their
    /// non-empty buckets.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut s = String::new();
        s.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", escape(k), v));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", escape(k), fmt_f64(*v)));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
                escape(k),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                fmt_f64(h.mean()),
                h.quantile(0.50),
                h.quantile(0.99),
                h.quantile(0.999),
            ));
            for (j, (lo, hi, c)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{lo},{hi},{c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // JSON has no integer/float distinction, but keep output stable.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named store of counters, gauges, and histograms.
///
/// Interior-mutable (a mutex around three maps) so one registry can be
/// shared by reference across a session; the hot paths of the workspace
/// record into *local* [`Histogram`]s / [`CounterBank`]s and merge into a
/// registry at phase boundaries, so the lock is never taken inside a
/// kernel or a communication round. The process-global instance behind
/// [`crate::global`] is what `repro --metrics-out` serialises.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Self {
            inner: Mutex::new(RegistryInner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `v` to counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Records a duration (nanoseconds) into histogram `name`.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges a whole local histogram into histogram `name`.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// A copy of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Point-in-time copy of everything in the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let g = self.lock();
        RegistrySnapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            histograms: g.histograms.clone(),
        }
    }

    /// Removes all metrics (test isolation; experiment boundaries).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let rank = ((h.count() - 1) as f64 * q).round() as u64;
            assert_eq!(h.quantile(q), rank, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.sum(), (0..32).sum::<u64>() as u128);
    }

    #[test]
    fn quantile_error_within_one_subbucket() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (0..10_000u64)
            .map(|i| (i * 2654435761) % 1_000_000)
            .collect();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.5, 0.9, 0.99, 0.999] {
            let exact = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / (exact.max(1) as f64);
            assert!(err <= 1.0 / 32.0, "q={q} exact={exact} approx={approx}");
        }
        // Extremes are tracked exactly.
        assert_eq!(h.quantile(0.0), sorted[0]);
        assert_eq!(h.quantile(1.0), *sorted.last().unwrap());
    }

    #[test]
    fn bucket_bounds_cover_values() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1 << 20,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            // The topmost bucket's upper bound saturates at u64::MAX.
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "v={v} lo={lo} hi={hi}"
            );
        }
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut all = Histogram::new();
        let mut parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for i in 0..1000u64 {
            let v = (i * 37) % 5000;
            all.record(v);
            parts[(i % 4) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.sum(), all.sum());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(merged.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn counter_bank_orders_and_merges() {
        let mut a = CounterBank::new();
        a.add("x", 1);
        a.add("y", 10);
        a.add("x", 2);
        assert_eq!(a.get("x"), 3);
        let names: Vec<&str> = a.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x", "y"]);
        let mut b = CounterBank::new();
        b.add("y", 5);
        b.add("z", 7);
        let mut sum = a.clone();
        sum.merge_sum(&b);
        assert_eq!(sum.get("y"), 15);
        assert_eq!(sum.get("z"), 7);
        let mut mx = a.clone();
        mx.merge_max(&b);
        assert_eq!(mx.get("y"), 10);
        assert_eq!(mx.get("z"), 7);
        assert_eq!(mx.total(), 3 + 10 + 7);
    }

    #[test]
    fn registry_round_trip() {
        let r = Registry::new();
        r.counter_add("sends", 3);
        r.counter_add("sends", 2);
        r.gauge_set("load", 1.5);
        r.observe("lat", 100);
        r.observe("lat", 200);
        assert_eq!(r.counter("sends"), 5);
        assert_eq!(r.gauge("load"), Some(1.5));
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"sends\": 5"));
        assert!(json.contains("\"load\": 1.5"));
        assert!(json.contains("\"count\": 2"));
        r.clear();
        assert_eq!(r.counter("sends"), 0);
    }
}
