//! Span tracer and Chrome `trace_event` export.
//!
//! ## Recording model
//!
//! [`span`] returns a scope guard; on drop it records a
//! `(rank, phase, name, t_start, t_end, attrs)` event into a
//! **thread-local ring buffer** — no locks, no shared cache lines on the
//! hot path. Rings flush into a process-global sink when full and when
//! their thread exits (the simulator's rank threads are scoped, so by the
//! time `mpisim::run` returns every rank's events are in the sink);
//! [`drain`] then takes the whole set for export.
//!
//! ## Zero cost when disabled
//!
//! The tracer is off by default. When off, [`span`] performs one relaxed
//! atomic load and returns an inert guard — no clock is read, nothing is
//! allocated, nothing is recorded. Tracing only ever *reads* clocks and
//! counters, so enabling it cannot change results or communication volume;
//! the `repro overlap` disabled-tracer arm asserts exactly that
//! (bit-identical `C`, byte-identical wire volume).
//!
//! ## Export
//!
//! [`chrome_trace_json`] renders drained events as a Chrome
//! `trace_event` document (`{"traceEvents": [...]}` with sorted `B`/`E`
//! pairs and `i` instants, timestamps in microseconds) openable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev). One
//! simulated rank maps to one trace thread (`tid` = rank).
//! [`validate_chrome_trace`] is the schema check used by tests and the CI
//! smoke job: well-formed events, non-decreasing timestamps, and matched
//! `B`/`E` pairs per thread.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Trace thread id used for events recorded outside any simulated rank.
pub const MAIN_TID: u64 = 1_000_000;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Enables or disables span recording process-wide.
///
/// Idempotent; affects only whether *new* spans record. Already-buffered
/// events stay buffered until [`drain`].
pub fn set_enabled(on: bool) {
    if on {
        // Pin the time base before the first span so timestamps are
        // monotone from zero.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What a [`SpanEvent`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span (`t_start..t_end`), exported as a `B`/`E` pair.
    Span,
    /// A point event (`t_start == t_end`), exported as an `i` instant.
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Simulated rank, or `-1` when recorded outside any rank thread.
    pub rank: i32,
    /// Phase taxonomy bucket (`comm`, `engine`, `round`, `query`, …);
    /// exported as the chrome-trace category.
    pub phase: &'static str,
    /// Span name within the phase (`send`, `bcast_wait`, `epoch_publish`…).
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process trace epoch (== `start_ns` for
    /// instants).
    pub end_ns: u64,
    /// Span or instant.
    pub kind: EventKind,
    /// Numeric attributes (`bytes`, `exposed_ns`, `overlapped_ns`, …).
    pub attrs: Vec<(&'static str, u64)>,
    /// Global record sequence number (completion order); used only to
    /// resolve equal-timestamp ordering during export.
    pub seq: u64,
}

thread_local! {
    static RANK: Cell<i32> = const { Cell::new(-1) };
    static RING: RefCell<Ring> = const { RefCell::new(Ring { buf: Vec::new() }) };
}

/// Per-thread bounded event buffer; spills to the global sink when full
/// and on thread exit (via `Drop` of the thread-local).
struct Ring {
    buf: Vec<SpanEvent>,
}

/// Ring capacity before a spill to the global sink (events, per thread).
const RING_CAP: usize = 4096;

impl Ring {
    fn push(&mut self, ev: SpanEvent) {
        if self.buf.capacity() == 0 {
            self.buf.reserve(RING_CAP);
        }
        self.buf.push(ev);
        if self.buf.len() >= RING_CAP {
            self.spill();
        }
    }

    fn spill(&mut self) {
        if !self.buf.is_empty() {
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.append(&mut self.buf);
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        self.spill();
    }
}

fn record(ev: SpanEvent) {
    RING.with(|r| r.borrow_mut().push(ev));
}

/// Declares the current thread to be simulated rank `rank`; called by the
/// simulator when it spawns rank threads so every event recorded on this
/// thread is attributed to that rank.
pub fn set_thread_rank(rank: usize) {
    RANK.with(|r| r.set(i32::try_from(rank).unwrap_or(i32::MAX)));
}

/// Clears the current thread's rank attribution (events record rank `-1`).
pub fn clear_thread_rank() {
    RANK.with(|r| r.set(-1));
}

/// The simulated rank this thread's events are attributed to (`-1` outside
/// any rank thread). Useful for naming per-rank metrics.
pub fn thread_rank() -> i32 {
    RANK.with(|r| r.get())
}

fn current_rank() -> i32 {
    RANK.with(|r| r.get())
}

/// Flushes the current thread's ring buffer into the global sink.
///
/// Rank threads flush automatically on exit; the main thread should call
/// this (or [`drain`], which does) before exporting.
pub fn flush_thread() {
    RING.with(|r| r.borrow_mut().spill());
}

/// Takes all buffered events out of the global sink (flushing the calling
/// thread's ring first).
///
/// Call after worker/rank threads have joined — a thread that is still
/// running may hold events in its own ring that this cannot see.
pub fn drain() -> Vec<SpanEvent> {
    flush_thread();
    std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()))
}

/// A scope guard recording one span from creation to drop.
///
/// Inert (no clock read, no allocation, nothing recorded) when the tracer
/// is disabled.
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct Span {
    data: Option<SpanData>,
}

#[derive(Debug)]
struct SpanData {
    phase: &'static str,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, u64)>,
}

impl Span {
    /// Attaches a numeric attribute (builder form).
    pub fn attr(mut self, key: &'static str, value: u64) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Attaches a numeric attribute (for values only known mid-span).
    pub fn set_attr(&mut self, key: &'static str, value: u64) {
        if let Some(d) = &mut self.data {
            d.attrs.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            record(SpanEvent {
                rank: current_rank(),
                phase: d.phase,
                name: d.name,
                start_ns: d.start_ns,
                end_ns: now_ns(),
                kind: EventKind::Span,
                attrs: d.attrs,
                seq: SEQ.fetch_add(1, Ordering::Relaxed),
            });
        }
    }
}

/// Opens a span in phase `phase` named `name`; the span closes (and
/// records) when the returned guard drops.
#[inline]
pub fn span(phase: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    Span {
        data: Some(SpanData {
            phase,
            name,
            start_ns: now_ns(),
            attrs: Vec::new(),
        }),
    }
}

/// Records a point event (e.g. an epoch publish) with attributes.
/// No-op when the tracer is disabled.
pub fn instant(phase: &'static str, name: &'static str, attrs: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let t = now_ns();
    record(SpanEvent {
        rank: current_rank(),
        phase,
        name,
        start_ns: t,
        end_ns: t,
        kind: EventKind::Instant,
        attrs: attrs.to_vec(),
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
    });
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

fn tid_of(rank: i32) -> u64 {
    if rank >= 0 {
        rank as u64
    } else {
        MAIN_TID
    }
}

/// One flattened chrome event before serialisation.
struct ChromeEvent {
    ts_ns: u64,
    tid: u64,
    ph: char,
    name: &'static str,
    cat: &'static str,
    args: Vec<(&'static str, u64)>,
}

/// An open span on the per-thread emission stack.
struct Frame {
    name: &'static str,
    cat: &'static str,
    end_ns: u64,
}

/// Emits `E` events for every stack frame that ends at or before `t`.
fn close_until(
    stack: &mut Vec<Frame>,
    flat: &mut Vec<ChromeEvent>,
    tid: u64,
    cursor: &mut u64,
    t: u64,
) {
    while let Some(top) = stack.last() {
        if top.end_ns > t {
            break;
        }
        let f = stack.pop().expect("non-empty");
        *cursor = (*cursor).max(f.end_ns);
        flat.push(ChromeEvent {
            ts_ns: *cursor,
            tid,
            ph: 'E',
            name: f.name,
            cat: f.cat,
            args: Vec::new(),
        });
    }
}

/// Renders events as a Chrome `trace_event` JSON document.
///
/// Spans become matched `B`/`E` pairs, instants become `i` events, and one
/// `M` (thread-name) metadata event labels each rank's track. Events are
/// globally sorted by timestamp; within a thread, equal timestamps keep a
/// nesting-consistent order (outer span opens first, inner closes first),
/// so the output always passes [`validate_chrome_trace`].
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    use crate::json::escape;

    // Group events per trace thread.
    let mut tids: Vec<u64> = events.iter().map(|e| tid_of(e.rank)).collect();
    tids.sort_unstable();
    tids.dedup();

    // Per-tid emission with explicit stack simulation guarantees matched,
    // properly nested B/E pairs even for zero-length or boundary-sharing
    // spans.
    let mut flat: Vec<ChromeEvent> = Vec::with_capacity(events.len() * 2);
    for &tid in &tids {
        let mut spans: Vec<&SpanEvent> = events.iter().filter(|e| tid_of(e.rank) == tid).collect();
        // Start ascending; at equal starts longer spans (and, failing
        // that, later-completed = outer guards) open first.
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.end_ns.cmp(&a.end_ns))
                .then(b.seq.cmp(&a.seq))
        });
        let mut stack: Vec<Frame> = Vec::new();
        let mut cursor = 0u64;
        for s in spans {
            close_until(&mut stack, &mut flat, tid, &mut cursor, s.start_ns);
            cursor = cursor.max(s.start_ns);
            match s.kind {
                EventKind::Instant => flat.push(ChromeEvent {
                    ts_ns: cursor,
                    tid,
                    ph: 'i',
                    name: s.name,
                    cat: s.phase,
                    args: s.attrs.clone(),
                }),
                EventKind::Span => {
                    // A child may not outlive its parent in the rendered
                    // nesting; clamp (only reachable if a span guard is
                    // held across unusual control flow).
                    let end = match stack.last() {
                        Some(parent) => s.end_ns.min(parent.end_ns),
                        None => s.end_ns,
                    };
                    flat.push(ChromeEvent {
                        ts_ns: cursor,
                        tid,
                        ph: 'B',
                        name: s.name,
                        cat: s.phase,
                        args: s.attrs.clone(),
                    });
                    stack.push(Frame {
                        name: s.name,
                        cat: s.phase,
                        end_ns: end.max(cursor),
                    });
                }
            }
        }
        close_until(&mut stack, &mut flat, tid, &mut cursor, u64::MAX);
    }

    // Global, stable sort by timestamp: per-tid relative order (and with
    // it stack correctness) is preserved for equal timestamps.
    flat.sort_by_key(|e| e.ts_ns);

    let mut out = String::with_capacity(flat.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    for &tid in &tids {
        let label = if tid == MAIN_TID {
            "main".to_string()
        } else {
            format!("rank {tid}")
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(&label)
        ));
    }
    for e in &flat {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {:.3}, \
             \"pid\": 1, \"tid\": {}",
            escape(e.name),
            escape(e.cat),
            e.ph,
            e.ts_ns as f64 / 1e3,
            e.tid
        ));
        if e.ph == 'i' {
            out.push_str(", \"s\": \"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(", \"args\": {");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape(k), v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`chrome_trace_json`] output to `path`.
pub fn write_chrome_trace(path: &std::path::Path, events: &[SpanEvent]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(events))
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Total events in the document (including metadata).
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// `i`/`I` instant events.
    pub instants: usize,
    /// Largest timestamp seen, microseconds.
    pub max_ts_us: f64,
}

/// Validates a Chrome `trace_event` JSON document.
///
/// Checks the properties the CI smoke job relies on: the document parses,
/// every event is an object carrying `name`/`ph` (and numeric
/// `ts`/`pid`/`tid` for non-metadata events), timestamps are
/// non-decreasing in document order, and every `B` is closed by a
/// matching same-name `E` on the same `(pid, tid)` with nothing left open
/// at the end.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    use crate::json::{parse, Value};

    let doc = parse(json).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = match (&doc, doc.get("traceEvents")) {
        (_, Some(Value::Arr(a))) => a.as_slice(),
        (Value::Arr(a), _) => a.as_slice(),
        _ => return Err("expected a traceEvents array".to_string()),
    };

    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> = Default::default();
    let mut last_ts = f64::NEG_INFINITY;
    let mut max_ts = 0.0f64;
    let mut spans = 0usize;
    let mut instants = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_obj()
            .ok_or_else(|| format!("event {i}: not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = obj
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        if name.is_empty() {
            return Err(format!("event {i}: empty name"));
        }
        if ph == "M" {
            continue;
        }
        if !matches!(ph, "B" | "E" | "i" | "I" | "X") {
            return Err(format!("event {i}: unsupported phase type {ph:?}"));
        }
        let ts = obj
            .get("ts")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i}: missing numeric \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        if ts < last_ts {
            return Err(format!(
                "event {i}: timestamps not monotone ({ts} after {last_ts})"
            ));
        }
        last_ts = ts;
        max_ts = max_ts.max(ts);
        let pid = obj
            .get("pid")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i}: missing numeric \"pid\""))?;
        let tid = obj
            .get("tid")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i}: missing numeric \"tid\""))?;
        let key = (pid as u64, tid as u64);
        match ph {
            "B" => stacks.entry(key).or_default().push(name.to_string()),
            "E" => {
                let open = stacks
                    .get_mut(&key)
                    .and_then(|s| s.pop())
                    .ok_or_else(|| format!("event {i}: E {name:?} with no open B"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E {name:?} closes B {open:?} (mismatched pair)"
                    ));
                }
                spans += 1;
            }
            "i" | "I" => instants += 1,
            _ => {} // X: complete event, self-contained
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unclosed B {open:?} on pid {pid} tid {tid} at end of trace"
            ));
        }
    }
    Ok(TraceSummary {
        events: events.len(),
        spans,
        instants,
        max_ts_us: max_ts,
    })
}

/// Reads and validates the trace file at `path`.
pub fn validate_chrome_trace_file(path: &std::path::Path) -> Result<TraceSummary, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    validate_chrome_trace(&json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global state; tests touching it serialise.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = lock();
        set_enabled(false);
        let _ = drain();
        {
            let s = span("comm", "send").attr("bytes", 10);
            drop(s);
            instant("engine", "epoch_publish", &[("epoch", 1)]);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_and_export_valid_chrome_trace() {
        let _g = lock();
        set_enabled(true);
        let _ = drain();
        set_thread_rank(3);
        {
            let _outer = span("round", "round");
            {
                let _inner = span("comm", "bcast_wait")
                    .attr("bytes", 1234)
                    .attr("exposed_ns", 5);
            }
            instant("engine", "epoch_publish", &[("epoch", 7)]);
        }
        clear_thread_rank();
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.rank == 3));
        let json = chrome_trace_json(&events);
        let sum = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(sum.spans, 2);
        assert_eq!(sum.instants, 1);
        assert!(json.contains("\"bytes\": 1234"));
        assert!(json.contains("\"epoch\": 7"));
        assert!(json.contains("rank 3"));
    }

    #[test]
    fn ring_spills_to_sink_when_full() {
        let _g = lock();
        set_enabled(true);
        let _ = drain();
        for _ in 0..(RING_CAP + 10) {
            let _s = span("t", "x");
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), RING_CAP + 10);
    }

    #[test]
    fn rank_threads_flush_on_exit() {
        let _g = lock();
        set_enabled(true);
        let _ = drain();
        std::thread::scope(|s| {
            for r in 0..4 {
                s.spawn(move || {
                    set_thread_rank(r);
                    let _s = span("comm", "send").attr("bytes", r as u64);
                });
            }
        });
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 4);
        let mut ranks: Vec<i32> = events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
        validate_chrome_trace(&chrome_trace_json(&events)).expect("valid");
    }

    #[test]
    fn validator_rejects_broken_traces() {
        // Not JSON.
        assert!(validate_chrome_trace("nope").is_err());
        // Unmatched B.
        let bad = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
        // Mismatched pair.
        let bad = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 0},
            {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("mismatched"));
        // Non-monotone timestamps.
        let bad = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 5, "pid": 1, "tid": 0},
            {"name": "a", "ph": "E", "ts": 4, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("monotone"));
        // E with nothing open.
        let bad = r#"{"traceEvents": [
            {"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("no open B"));
        // Good minimal trace.
        let good = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 0},
            {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": 0}
        ]}"#;
        let sum = validate_chrome_trace(good).expect("valid");
        assert_eq!(sum.spans, 1);
        assert_eq!(sum.events, 2);
    }
}
