//! # dspgemm-obs — unified tracing & metrics for the dspgemm workspace
//!
//! One observability layer replaces three ad-hoc mechanisms (per-experiment
//! sort-based percentiles, scattered stopwatches, hand-rolled aggregation):
//!
//! * **[`trace`]** — a span tracer with thread-local ring buffers recording
//!   `(rank, phase, span, t_start, t_end, attrs)` and a Chrome
//!   `trace_event` exporter, so any `repro` run can emit a timeline
//!   openable in `chrome://tracing` / Perfetto. Zero-cost when disabled:
//!   one relaxed atomic load, no clock reads, nothing recorded.
//! * **[`metrics`]** — counters, gauges, and log-bucketed mergeable
//!   [`Histogram`]s (no sample is ever stored or sorted) behind a named
//!   [`Registry`]; the single source for every percentile the benchmarks
//!   report.
//! * **[`json`]** — the dependency-free JSON writer/parser backing the
//!   exporters and the chrome-trace schema validator (the workspace builds
//!   fully offline; there is no serde).
//!
//! This crate is deliberately **std-only with no workspace dependencies**:
//! it sits below `dspgemm-util` (whose `PhaseTimer` is a facade over
//! [`metrics::CounterBank`]) and is used directly by the simulator, the
//! engine, the analytics session, and the benches.
//!
//! ## Span taxonomy
//!
//! Phases (chrome-trace categories) are dot-free lowercase nouns:
//!
//! | phase    | spans / instants                                         |
//! |----------|----------------------------------------------------------|
//! | `comm`   | `send`, `recv`, `wait`, `bcast`, `allgather`, `alltoallv`, `reduce`, `barrier` — attrs: `bytes`, `exposed_ns`, `overlapped_ns` |
//! | `engine` | `redistribute`, `apply_batch`, `recompute`; instant `epoch_publish` — attrs: `epoch`, `nnz`, `flops`, `updates` |
//! | `round`  | `round` (one per SUMMA/pipeline round) — attrs: `round`   |
//! | `query`  | `product_entry`, `row_topk`, … — attrs: `staleness`       |
//!
//! ## Quick example
//!
//! ```
//! dspgemm_obs::set_enabled(true);
//! {
//!     let _s = dspgemm_obs::span("comm", "send").attr("bytes", 4096);
//!     // ... the traced work ...
//! }
//! dspgemm_obs::set_enabled(false);
//! let events = dspgemm_obs::drain();
//! let json = dspgemm_obs::chrome_trace_json(&events);
//! dspgemm_obs::validate_chrome_trace(&json).expect("schema-valid trace");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{CounterBank, Histogram, Registry, RegistrySnapshot, SUB_BITS};
pub use trace::{
    chrome_trace_json, clear_thread_rank, drain, enabled, flush_thread, instant, set_enabled,
    set_thread_rank, span, thread_rank, validate_chrome_trace, validate_chrome_trace_file,
    write_chrome_trace, EventKind, Span, SpanEvent, TraceSummary,
};

/// The process-global metrics registry — what `repro --metrics-out`
/// serialises. Library code records into local histograms/banks and merges
/// here at phase boundaries.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}
