//! A minimal JSON writer/parser.
//!
//! The workspace builds fully offline with no serde, so the trace exporter
//! hand-writes its JSON and the CI-facing validator
//! ([`crate::trace::validate_chrome_trace`]) parses it with this
//! ~150-line recursive-descent parser. It supports the full JSON grammar
//! minus exotic number forms; it is not performance-critical (it runs once
//! per exported trace, in tests and the CI smoke job).

use std::collections::BTreeMap;

/// Escapes a string for embedding in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parses a JSON document. Returns a descriptive error with a byte offset
/// on malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("parse");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f µs";
        let json = format!("\"{}\"", escape(s));
        assert_eq!(parse(&json).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
