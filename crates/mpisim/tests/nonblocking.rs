//! Property tests for the nonblocking request layer.
//!
//! Every nonblocking collective must be *bit-identical in result*,
//! *byte-identical in metered wire volume* and *identical in payload-clone
//! count* to its blocking counterpart, across p ∈ {1, 4, 9} — the schedule
//! moves communication time, never bytes or values. Plus the request
//! lifecycle contracts: out-of-order wait, test-driven completion, progress
//! while blocked in unrelated collectives, and drop-without-wait (panics or
//! completes deterministically, never deadlocks).

use dspgemm_mpi::{run, SimOutput};
use std::sync::Arc;

const PS: [usize; 3] = [1, 4, 9];

/// Deterministic per-rank payload.
fn payload(rank: usize, len: usize) -> Vec<u64> {
    (0..len as u64).map(|x| x * 31 + rank as u64).collect()
}

/// Asserts the two runs agree on results, wire volume and clone count.
fn assert_parity<R: PartialEq + std::fmt::Debug>(
    blocking: &SimOutput<R>,
    nonblocking: &SimOutput<R>,
    what: &str,
) {
    assert_eq!(
        blocking.results, nonblocking.results,
        "{what}: results differ"
    );
    assert_eq!(
        blocking.stats.volume(),
        nonblocking.stats.volume(),
        "{what}: metered wire volume differs"
    );
    assert_eq!(
        blocking.payload_clones, nonblocking.payload_clones,
        "{what}: payload clone count differs"
    );
}

#[test]
fn ibcast_matches_bcast_shared_all_roots_and_sizes() {
    for p in PS {
        for root in 0..p {
            let blocking = run(p, |c| {
                let v = if c.rank() == root {
                    Some(Arc::new(payload(root, 500)))
                } else {
                    None
                };
                (*c.bcast_shared(root, v)).clone()
            });
            let nonblocking = run(p, |c| {
                let v = if c.rank() == root {
                    Some(Arc::new(payload(root, 500)))
                } else {
                    None
                };
                (*c.ibcast_shared(root, v).wait()).clone()
            });
            assert_parity(
                &blocking,
                &nonblocking,
                &format!("ibcast p={p} root={root}"),
            );
            assert_eq!(nonblocking.payload_clones, 0, "shared bcast must not clone");
        }
    }
}

#[test]
fn ialltoallv_matches_alltoallv() {
    for p in PS {
        let chunks = |rank: usize| -> Vec<Vec<u64>> {
            (0..p)
                .map(|dst| vec![(rank * 10 + dst) as u64; rank + 1])
                .collect()
        };
        let blocking = run(p, move |c| c.alltoallv(chunks(c.rank())));
        let nonblocking = run(p, move |c| c.ialltoallv(chunks(c.rank())).wait());
        assert_parity(&blocking, &nonblocking, &format!("ialltoallv p={p}"));
    }
}

#[test]
fn isend_irecv_match_send_recv() {
    for p in PS {
        let blocking = run(p, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            if p == 1 {
                return payload(c.rank(), 64);
            }
            c.send(right, 7, payload(c.rank(), 64));
            c.recv::<Vec<u64>>(left, 7)
        });
        let nonblocking = run(p, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            if p == 1 {
                return payload(c.rank(), 64);
            }
            // Prepost the receive, then send — the overlap-friendly order.
            let r = c.irecv::<Vec<u64>>(left, 7);
            c.isend(right, 7, payload(c.rank(), 64)).wait();
            r.wait()
        });
        assert_parity(&blocking, &nonblocking, &format!("isend/irecv p={p}"));
    }
}

#[test]
fn allgather_shared_matches_allgather() {
    for p in PS {
        let blocking = run(p, |c| c.allgather(payload(c.rank(), 100)));
        let shared = run(p, |c| {
            c.allgather_shared(Arc::new(payload(c.rank(), 100)))
                .iter()
                .map(|part| (**part).clone())
                .collect::<Vec<_>>()
        });
        assert_parity(&blocking, &shared, &format!("allgather_shared p={p}"));
        assert_eq!(shared.payload_clones, 0, "shared ring must not deep-clone");
    }
}

#[test]
fn out_of_order_wait_completes() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            c.send(1, 1, 10u64);
            c.send(1, 2, 20u64);
            0
        } else {
            let r1 = c.irecv::<u64>(0, 1);
            let r2 = c.irecv::<u64>(0, 2);
            // Wait the later-posted request first; r1's envelope is buffered
            // and matched when its wait runs.
            let b = r2.wait();
            let a = r1.wait();
            (b - a) as usize
        }
    });
    assert_eq!(out.results[1], 10);
}

#[test]
fn test_drives_completion_without_blocking() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            c.barrier();
            c.send(1, 3, 99u32);
            c.barrier();
            0
        } else {
            let mut r = c.irecv::<u32>(0, 3);
            // Nothing sent yet: test must report not-ready without blocking.
            assert!(!r.test());
            c.barrier();
            // Sender releases the value after the barrier; poll until ready.
            while !r.test() {
                std::hint::spin_loop();
            }
            c.barrier();
            r.wait()
        }
    });
    assert_eq!(out.results[1], 99);
}

#[test]
fn progress_forwards_tree_edges_while_blocked_elsewhere() {
    // p = 8 gives the binomial tree depth 3, so interior ranks must forward
    // the payload. Between issue and wait every rank runs an unrelated
    // allreduce — the progress engine has to advance the broadcast from
    // inside the allreduce's blocking receives (or at the final wait).
    for p in [4usize, 8, 9] {
        let out = run(p, |c| {
            let v = if c.rank() == 2 % p {
                Some(Arc::new(payload(7, 4096)))
            } else {
                None
            };
            let req = c.ibcast_shared(2 % p, v);
            let s = c.allreduce(c.rank() as u64, |a, b| a + b);
            let got = req.wait();
            (s, got.len())
        });
        let rank_sum: u64 = (0..p as u64).sum();
        assert!(out.results.iter().all(|&(s, l)| s == rank_sum && l == 4096));
    }
}

#[test]
fn interleaved_pipelined_rounds_match_blocking() {
    // A miniature double-buffered SUMMA schedule: issue round k+1's
    // broadcast before "computing" round k. Must produce exactly the
    // blocking schedule's values and volume.
    let rounds = 5usize;
    for p in PS {
        let blocking = run(p, move |c| {
            let mut acc = 0u64;
            for k in 0..rounds {
                let root = k % c.size();
                let v = if c.rank() == root {
                    Some(Arc::new(payload(k, 64)))
                } else {
                    None
                };
                let got = c.bcast_shared(root, v);
                acc = acc.wrapping_mul(31).wrapping_add(got.iter().sum::<u64>());
            }
            acc
        });
        let pipelined = run(p, move |c| {
            let mut acc = 0u64;
            let issue = |k: usize| {
                let root = k % c.size();
                let v = if c.rank() == root {
                    Some(Arc::new(payload(k, 64)))
                } else {
                    None
                };
                c.ibcast_shared(root, v)
            };
            let mut flight = Some(issue(0));
            for k in 0..rounds {
                let got = flight.take().expect("round in flight").wait();
                if k + 1 < rounds {
                    flight = Some(issue(k + 1));
                }
                acc = acc.wrapping_mul(31).wrapping_add(got.iter().sum::<u64>());
            }
            acc
        });
        assert_parity(&blocking, &pipelined, &format!("pipelined rounds p={p}"));
    }
}

#[test]
#[should_panic]
fn dropping_incomplete_request_panics_without_deadlock() {
    run(2, |c| {
        if c.rank() == 1 {
            // An irecv whose message never arrives: dropping it must panic
            // deterministically (poisoning wakes rank 0), not deadlock.
            let r = c.irecv::<u64>(0, 5);
            drop(r);
        } else {
            // Block on something rank 1 will never send; rank 1's drop-panic
            // poisons the network and wakes this receive.
            let _: u64 = c.recv(1, 6);
        }
    });
}

#[test]
fn dropping_completed_request_is_fine() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            c.send(1, 4, 5u8);
        } else {
            let mut r = c.irecv::<u8>(0, 4);
            while !r.test() {
                std::hint::spin_loop();
            }
            // Completed but value never claimed: drop is clean.
            drop(r);
        }
        c.barrier();
        true
    });
    assert!(out.results.iter().all(|&b| b));
}

#[test]
#[should_panic(expected = "share (source")]
fn duplicate_key_irecv_panics_at_post() {
    run(2, |c| {
        if c.rank() == 1 {
            // Same (source, tag) posted twice: matching order would be
            // wait-order, not post-order — must fail fast at issue.
            let _r1 = c.irecv::<u64>(0, 5);
            let _r2 = c.irecv::<u64>(0, 5);
        } else {
            c.send(1, 5, 1u64);
            c.send(1, 5, 2u64);
        }
    });
}

#[test]
#[should_panic(expected = "races a posted nonblocking receive")]
fn blocking_recv_racing_posted_irecv_panics() {
    run(2, |c| {
        if c.rank() == 1 {
            let _r = c.irecv::<u64>(0, 6);
            // A blocking receive under the same key would steal the posted
            // receive's message.
            let _: u64 = c.recv(0, 6);
        } else {
            c.send(1, 6, 1u64);
        }
    });
}

#[test]
fn inflight_ialltoallv_survives_sibling_collectives() {
    // The inter-batch lookahead issues an `ialltoallv` on one communicator
    // (the process-column), then runs whole SpGEMM rounds — broadcasts,
    // reductions, barriers on *sibling* communicators split from the same
    // world — before waiting on it. The in-flight request must neither lose
    // messages nor steal the siblings' traffic.
    for p in [4usize, 9] {
        let q = (p as f64).sqrt() as usize;
        let chunks = |rank: usize| -> Vec<Vec<u64>> {
            (0..p)
                .map(|dst| vec![(rank * 100 + dst) as u64; rank % 3 + 1])
                .collect()
        };
        let sequential = run(p, move |c| {
            let redist = c.alltoallv(chunks(c.rank()));
            let row = c.split((c.rank() / q) as u64, (c.rank() % q) as u64);
            let col = c.split((c.rank() % q) as u64, (c.rank() / q) as u64);
            let mut acc = 0u64;
            for k in 0..q {
                let v = row.bcast(k, (row.rank() == k).then(|| payload(k, 48)));
                acc = acc.wrapping_add(col.allreduce(v.iter().sum::<u64>(), |x, y| x + y));
                c.barrier();
            }
            (redist, acc)
        });
        let overlapped = run(p, move |c| {
            let redist = c.ialltoallv(chunks(c.rank()));
            let row = c.split((c.rank() / q) as u64, (c.rank() % q) as u64);
            let col = c.split((c.rank() % q) as u64, (c.rank() / q) as u64);
            let mut acc = 0u64;
            for k in 0..q {
                let v = row.bcast(k, (row.rank() == k).then(|| payload(k, 48)));
                acc = acc.wrapping_add(col.allreduce(v.iter().sum::<u64>(), |x, y| x + y));
                c.barrier();
            }
            (redist.wait(), acc)
        });
        assert_parity(
            &sequential,
            &overlapped,
            &format!("ialltoallv across sibling collectives p={p}"),
        );
    }
}
