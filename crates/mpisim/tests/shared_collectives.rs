//! The zero-copy (`Arc`-payload) collectives: value equality, wire-meter
//! parity with the clone-based paths, and the clone-counting hook.

use dspgemm_mpi::{run, CommCategory};
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::{WireDecode, WireEncode, WireError, WireReader, WireSize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A payload with **no `Clone` impl**: merely compiling a `bcast_shared` /
/// `sendrecv_shared` of this type proves those collectives cannot deep-clone.
#[derive(Debug, PartialEq)]
struct NoClone(Vec<u64>);

impl WireSize for NoClone {
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes()
    }
}

impl WireEncode for NoClone {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
    }
}

impl WireDecode for NoClone {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NoClone(Vec::wire_decode(r)?))
    }
}

/// A payload whose `Clone` impl counts — the clone-counting hook at the type
/// level, complementing the network-level `payload_clones` meter.
#[derive(Debug)]
struct CloneSpy(u64, &'static AtomicU64);

impl Clone for CloneSpy {
    fn clone(&self) -> Self {
        self.1.fetch_add(1, Ordering::Relaxed);
        CloneSpy(self.0, self.1)
    }
}

impl WireSize for CloneSpy {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl WireEncode for CloneSpy {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
    }
}

// A `CloneSpy` holds a process-local counter reference, so it cannot
// rematerialize on a remote rank. The sim backend never decodes (payloads
// move by pointer), so this impl only satisfies the collective bounds.
impl WireDecode for CloneSpy {
    fn wire_decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Err(WireError::Invalid("CloneSpy is process-local"))
    }
}

#[test]
fn bcast_shared_delivers_root_value_all_roots_and_sizes() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::derive(0x5A4ED, case);
        let p = 1 + rng.gen_range(9) as usize;
        let root = rng.gen_range(16) as usize % p;
        let payload: Vec<u64> = (0..rng.gen_range(50)).map(|_| rng.next_u64()).collect();
        let expect = payload.clone();
        let out = run(p, move |comm| {
            let v = if comm.rank() == root {
                Some(Arc::new(payload.clone()))
            } else {
                None
            };
            comm.bcast_shared(root, v).as_ref().clone()
        });
        assert!(out.results.iter().all(|v| *v == expect), "case {case}");
        assert_eq!(out.payload_clones, 0, "case {case}");
    }
}

#[test]
fn bcast_shared_works_without_clone_and_shares_one_allocation() {
    let out = run(5, |comm| {
        let v = if comm.rank() == 2 {
            Some(Arc::new(NoClone(vec![7, 8, 9])))
        } else {
            None
        };
        let got = comm.bcast_shared(2, v);
        // Every rank holds the same allocation, not a copy.
        (got.0.clone(), Arc::as_ptr(&got) as usize)
    });
    assert!(out.results.iter().all(|(v, _)| *v == vec![7, 8, 9]));
    let first_ptr = out.results[0].1;
    assert!(out.results.iter().all(|&(_, p)| p == first_ptr));
    assert_eq!(out.payload_clones, 0);
}

/// Wire parity: byte and message counters of `bcast_shared` are identical to
/// `bcast` of the same payload on every size and root — zero-copy transport
/// must not distort the paper's communication-volume reproduction.
#[test]
fn bcast_shared_meter_matches_clone_based_bcast() {
    for p in [1usize, 2, 3, 4, 7, 9] {
        for root in [0, p - 1] {
            let payload: Vec<u32> = (0..1000).collect();
            let cloned = run(p, {
                let payload = payload.clone();
                move |comm| {
                    let v = if comm.rank() == root {
                        Some(payload.clone())
                    } else {
                        None
                    };
                    comm.bcast(root, v).len()
                }
            });
            let shared = run(p, {
                let payload = payload.clone();
                move |comm| {
                    let v = if comm.rank() == root {
                        Some(Arc::new(payload.clone()))
                    } else {
                        None
                    };
                    comm.bcast_shared(root, v).len()
                }
            });
            assert_eq!(cloned.results, shared.results);
            assert_eq!(
                cloned.stats.volume(),
                shared.stats.volume(),
                "p={p} root={root}"
            );
            // The clone-based tree copies once per non-root rank; shared: 0.
            assert_eq!(cloned.payload_clones, (p - 1) as u64, "p={p}");
            assert_eq!(shared.payload_clones, 0);
        }
    }
}

#[test]
fn clone_spy_counts_legacy_bcast_copies_only() {
    static LEGACY: AtomicU64 = AtomicU64::new(0);
    static SHARED: AtomicU64 = AtomicU64::new(0);
    let p = 8;
    run(p, |comm| {
        let v = if comm.rank() == 0 {
            Some(CloneSpy(42, &LEGACY))
        } else {
            None
        };
        assert_eq!(comm.bcast(0, v).0, 42);
    });
    run(p, |comm| {
        let v = if comm.rank() == 0 {
            Some(Arc::new(CloneSpy(42, &SHARED)))
        } else {
            None
        };
        assert_eq!(comm.bcast_shared(0, v).0, 42);
    });
    assert_eq!(LEGACY.load(Ordering::Relaxed), (p - 1) as u64);
    assert_eq!(SHARED.load(Ordering::Relaxed), 0);
}

#[test]
fn sendrecv_shared_matches_sendrecv_meter_and_values() {
    // 2x2 transpose exchange: ranks 1 and 2 swap; 0 and 3 are diagonal.
    let exchange = |shared: bool| {
        run(4, move |comm| {
            let (i, j) = (comm.rank() / 2, comm.rank() % 2);
            let peer = 2 * j + i;
            let mine: Vec<u64> = vec![comm.rank() as u64; 100];
            if peer == comm.rank() {
                return mine;
            }
            if shared {
                comm.sendrecv_shared(peer, Arc::new(mine), peer, 9)
                    .as_ref()
                    .clone()
            } else {
                comm.sendrecv(peer, mine, peer, 9)
            }
        })
    };
    let cloned = exchange(false);
    let shared = exchange(true);
    assert_eq!(cloned.results, shared.results);
    assert_eq!(cloned.stats.volume(), shared.stats.volume());
    assert_eq!(shared.payload_clones, 0);
    assert_eq!(shared.results[1], vec![2u64; 100]);
    assert_eq!(shared.results[2], vec![1u64; 100]);
}

/// Satellite regression: on a single-rank communicator both broadcast
/// flavors short-circuit — no messages, no bytes, no clones. A 1×1-grid run
/// pays zero communication overhead.
#[test]
fn single_rank_bcast_is_entirely_free() {
    let out = run(1, |comm| {
        let a = comm.bcast(0, Some(vec![1u64, 2, 3]));
        let b = comm.bcast_shared(0, Some(Arc::new(NoClone(vec![4, 5]))));
        let r = comm.allreduce(7u64, |x, y| x + y);
        (a, b.0.clone(), r)
    });
    assert_eq!(out.results[0].0, vec![1, 2, 3]);
    assert_eq!(out.results[0].1, vec![4, 5]);
    assert_eq!(out.results[0].2, 7);
    assert_eq!(out.stats.total_msgs(), 0, "single-rank run sent messages");
    assert_eq!(out.stats.total_bytes(), 0);
    assert_eq!(out.stats.msgs_in(CommCategory::Bcast), 0);
    assert_eq!(out.payload_clones, 0);
}
