//! Failure-surface coverage: every blocking entry point of the simulator
//! must wake up when a peer fails — recoverably (typed [`CommError`]) for an
//! injected crash, fatally for a genuine panic (poison) — plus deadline
//! timeouts that leave the operation retryable, epoch hygiene after a
//! recovery, and determinism of the seeded fault schedules.

use std::sync::Arc;
use std::time::Duration;

use dspgemm_mpi::{catch_comm_mut, run, run_with_faults, Comm, CommError, FaultPlan};

/// One blocking collective round, selected by name so a single harness can
/// sweep every entry point.
fn collective_round(c: &Comm, kind: &str) {
    let p = c.size();
    let me = c.rank();
    match kind {
        "barrier" => c.barrier(),
        "allreduce" => {
            c.allreduce(me as u64 + 1, |a, b| a + b);
        }
        "bcast" => {
            let v = if me == 0 { Some(99u64) } else { None };
            c.bcast(0, v);
        }
        "gather" => {
            c.gather(0, me as u64);
        }
        "alltoallv" => {
            let chunks: Vec<Vec<u64>> = (0..p).map(|d| vec![(me * 10 + d) as u64]).collect();
            c.alltoallv(chunks);
        }
        "sendrecv" => {
            let dst = (me + 1) % p;
            let src = (me + p - 1) % p;
            c.sendrecv::<u64, u64>(dst, me as u64, src, 7);
        }
        other => panic!("unknown collective kind {other}"),
    }
}

/// An armed crash wakes every survivor out of whatever blocking collective
/// it is in, as a catchable [`CommError::PeerFailed`]; the victim unwinds
/// with [`CommError::Crashed`]. The trailing barrier makes the contract
/// uniform across roles (a bcast root or tree leaf may legitimately finish
/// its own part of the round; no rank can finish a barrier that includes
/// the victim — and a recv-only role in the collective still triggers the
/// victim's armed crash at its first barrier send).
#[test]
fn blocking_collectives_wake_recoverably_on_crash() {
    for kind in [
        "barrier",
        "allreduce",
        "bcast",
        "gather",
        "alltoallv",
        "sendrecv",
    ] {
        let p = 4;
        let victim = 3;
        let out = run(p, move |c| {
            if c.rank() == victim {
                c.arm_crash(1);
            }
            let res = catch_comm_mut(|| {
                collective_round(c, kind);
                c.barrier();
            });
            let failed = c.take_failed_ranks();
            // The documented recovery contract: every rank (victim included)
            // advances the epoch and fences before communicating again — or
            // exiting, since a rank that returns early closes its inbox
            // while peers may still be sending to it.
            c.advance_recovery_epoch();
            c.barrier();
            (res, c.has_crashed(), failed)
        });
        for (rank, (res, crashed, failed)) in out.results.iter().enumerate() {
            if rank == victim {
                assert_eq!(
                    res,
                    &Err(CommError::Crashed { rank: victim }),
                    "kind={kind}"
                );
                assert!(crashed);
            } else {
                assert_eq!(
                    res,
                    &Err(CommError::PeerFailed { rank: victim }),
                    "kind={kind} rank={rank}"
                );
                assert!(!crashed);
                assert_eq!(failed, &vec![victim], "kind={kind} rank={rank}");
            }
        }
    }
}

/// A crash scheduled up front by the [`FaultPlan`] (rather than armed
/// mid-run) fires the same recoverable surface.
#[test]
fn plan_scheduled_crash_fires_like_an_armed_one() {
    let plan = FaultPlan::new(7).crash_before_send(1, 1);
    let out = run_with_faults(3, plan, |c| {
        let res = catch_comm_mut(|| c.barrier());
        c.advance_recovery_epoch();
        c.barrier();
        res
    });
    assert_eq!(out.results[1], Err(CommError::Crashed { rank: 1 }));
    for rank in [0, 2] {
        assert_eq!(out.results[rank], Err(CommError::PeerFailed { rank: 1 }));
    }
}

/// In-flight nonblocking operations: a `wait` on a posted `ialltoallv`
/// must wake recoverably when a contributor dies mid-round.
#[test]
fn inflight_ialltoallv_wait_wakes_on_failure() {
    let p = 4;
    let victim = 2;
    let out = run(p, move |c| {
        let me = c.rank();
        if me == victim {
            c.arm_crash(1);
        }
        let res = catch_comm_mut(|| {
            let chunks: Vec<Vec<u64>> = (0..p).map(|d| vec![(me * 10 + d) as u64; 3]).collect();
            let req = c.ialltoallv(chunks);
            req.wait();
        });
        c.advance_recovery_epoch();
        c.barrier();
        res
    });
    assert_eq!(
        out.results[victim],
        Err(CommError::Crashed { rank: victim })
    );
    for (rank, res) in out.results.iter().enumerate() {
        if rank != victim {
            assert_eq!(
                res,
                &Err(CommError::PeerFailed { rank: victim }),
                "rank={rank}"
            );
        }
    }
}

/// Same for a shared-payload broadcast: the root dies before (or during)
/// its tree sends, and every waiting subscriber wakes with `PeerFailed`.
#[test]
fn inflight_ibcast_wait_wakes_on_root_failure() {
    let p = 4;
    let root = 1;
    let out = run(p, move |c| {
        if c.rank() == root {
            c.arm_crash(1);
        }
        let res = catch_comm_mut(|| {
            let v = if c.rank() == root {
                Some(Arc::new(vec![5u64; 100]))
            } else {
                None
            };
            let req = c.ibcast_shared(root, v);
            req.wait();
        });
        c.advance_recovery_epoch();
        c.barrier();
        res
    });
    assert_eq!(out.results[root], Err(CommError::Crashed { rank: root }));
    for (rank, res) in out.results.iter().enumerate() {
        if rank != root {
            assert_eq!(
                res,
                &Err(CommError::PeerFailed { rank: root }),
                "rank={rank}"
            );
        }
    }
}

/// Fail-stop is preserved: a *genuine* panic (not an injected crash)
/// poisons the network, the poison is **not** catchable as a `CommError`,
/// and the whole job dies instead of deadlocking.
#[test]
fn genuine_panic_poisons_the_job_uncatchably() {
    let result = std::panic::catch_unwind(|| {
        run(3, |c| {
            if c.rank() == 0 {
                panic!("genuine bug on rank 0");
            }
            // catch_comm must re-raise the poison panic, so control never
            // reaches the line after it on the survivors either.
            let _ = catch_comm_mut(|| c.barrier());
            panic!("poison leaked through catch_comm as a CommError");
        })
    });
    assert!(result.is_err(), "a poisoned job must fail fast");
}

/// A deadline wait times out with a typed error while leaving the
/// operation in flight: the same request can be waited again and complete.
#[test]
fn timeout_leaves_the_operation_retryable() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            let mut req = c.irecv::<u64>(1, 9);
            let first = req.wait_deadline(Duration::from_millis(5));
            let timed_out = matches!(first, Err(CommError::Timeout { .. }));
            // Only now release the sender: the first wait deterministically
            // timed out before any data existed.
            c.send(1, 1, 0u64);
            let (v, _) = req
                .wait_deadline(Duration::from_secs(10))
                .expect("retried wait completes once the sender runs");
            (timed_out, v)
        } else {
            let _: u64 = c.recv(0, 1);
            c.send(0, 9, 77u64);
            (true, 77)
        }
    });
    assert_eq!(out.results, vec![(true, 77), (true, 77)]);
}

/// Epoch hygiene after a recovery: advancing the recovery epoch drops
/// stale traffic of the aborted round (even on matching (src, tag)),
/// resets the collective sequence uniformly, and lets the full collective
/// surface run again — including on the crashed rank, which rejoins as
/// the replacement.
#[test]
fn epoch_advance_drops_stale_traffic_and_resumes_collectives() {
    let p = 3;
    let victim = 1;
    let out = run(p, move |c| {
        let me = c.rank();
        if me == 0 {
            // A pre-crash message nobody receives before the incident: it
            // must never satisfy a post-recovery receive on the same tag.
            c.send(2, 5, 111u64);
        }
        if me == victim {
            c.arm_crash(1);
        }
        let res = catch_comm_mut(|| {
            c.allreduce(1u64, |a, b| a + b);
            c.barrier();
        });
        assert!(res.is_err(), "the aborted round must not complete");
        // --- recovery protocol: drain detections, advance, fence. ---
        let failed = c.take_failed_ranks();
        if me != victim {
            assert_eq!(failed, vec![victim]);
            assert!(c.last_failure_detect_ns() > 0);
        }
        let epoch = c.advance_recovery_epoch();
        assert_eq!(epoch, 1);
        c.barrier();
        // --- the whole surface works again, in the new epoch. ---
        let sum = c.allreduce(me as u64, |a, b| a + b);
        let bc = c.bcast(victim, if me == victim { Some(42u64) } else { None });
        let chunks: Vec<Vec<u64>> = (0..p).map(|d| vec![(me + d) as u64]).collect();
        let routed = c.alltoallv(chunks);
        let fresh = if me == 0 {
            c.send(2, 5, 222u64);
            222
        } else if me == 2 {
            c.recv::<u64>(0, 5)
        } else {
            222
        };
        (sum, bc, routed[me][0], fresh, c.recovery_epoch())
    });
    for (rank, &(sum, bc, diag, fresh, epoch)) in out.results.iter().enumerate() {
        assert_eq!(sum, 3, "rank={rank}");
        assert_eq!(bc, 42, "rank={rank}");
        assert_eq!(diag, 2 * rank as u64, "rank={rank}");
        assert_eq!(fresh, 222, "stale pre-crash message leaked past the epoch");
        assert_eq!(epoch, 1);
    }
}

/// Delay storms and transient drops are pure functions of the seed: two
/// identical faulty runs produce identical results and identical retry
/// counts, and the *logical* wire volume matches the fault-free run
/// bit-for-bit (retries model wasted time, not extra traffic).
#[test]
fn fault_schedules_are_deterministic_and_byte_neutral() {
    let program = |c: &Comm| {
        let p = c.size();
        let me = c.rank();
        let mut acc = 0u64;
        for round in 0..3u64 {
            let chunks: Vec<Vec<u64>> = (0..p)
                .map(|d| vec![me as u64 + d as u64 + round; 4])
                .collect();
            let routed = c.alltoallv(chunks);
            let local: u64 = routed.iter().flatten().sum();
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(c.allreduce(local, |a, b| a + b));
        }
        acc
    };
    let plan = FaultPlan::new(1234)
        .delay_storm(3, 40)
        .transient_drops(2, 2, 5);
    let clean = run(4, program);
    let faulty_a = run_with_faults(4, plan.clone(), program);
    let faulty_b = run_with_faults(4, plan, program);
    assert_eq!(faulty_a.results, faulty_b.results);
    assert_eq!(faulty_a.results, clean.results);
    assert_eq!(faulty_a.transient_retries, faulty_b.transient_retries);
    assert!(faulty_a.transient_retries > 0, "schedule selected no sends");
    assert_eq!(clean.transient_retries, 0);
    // Byte parity: injected faults never show up as application traffic.
    assert_eq!(clean.stats.total_bytes(), faulty_a.stats.total_bytes());
    assert_eq!(clean.stats.total_msgs(), faulty_a.stats.total_msgs());
}
