//! Property-based tests: every collective must agree with its sequential
//! reference on arbitrary inputs, sizes and roots.

use dspgemm_mpi::run;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_delivers_root_value(p in 1usize..9, root_sel in 0usize..9, value in any::<u64>()) {
        let root = root_sel % p;
        let out = run(p, move |comm| {
            comm.bcast(root, if comm.rank() == root { Some(value) } else { None })
        });
        prop_assert!(out.results.iter().all(|&v| v == value));
    }

    #[test]
    fn allgather_orders_by_rank(p in 1usize..9, base in any::<u32>()) {
        let out = run(p, move |comm| {
            comm.allgather(base.wrapping_add(comm.rank() as u32))
        });
        let expect: Vec<u32> = (0..p as u32).map(|r| base.wrapping_add(r)).collect();
        prop_assert!(out.results.iter().all(|v| *v == expect));
    }

    #[test]
    fn allreduce_matches_fold(p in 1usize..9, values in prop::collection::vec(any::<u64>(), 9)) {
        let vals = values.clone();
        let out = run(p, move |comm| {
            comm.allreduce(vals[comm.rank()], |a, b| a ^ b)
        });
        let expect = values[..p].iter().fold(0u64, |a, &b| a ^ b);
        prop_assert!(out.results.iter().all(|&v| v == expect));
    }

    #[test]
    fn alltoallv_is_a_transpose(p in 1usize..6, seed in any::<u64>()) {
        let out = run(p, move |comm| {
            let chunks: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![seed ^ ((comm.rank() * p + dst) as u64)])
                .collect();
            comm.alltoallv(chunks)
        });
        for dst in 0..p {
            for src in 0..p {
                prop_assert_eq!(out.results[dst][src][0], seed ^ ((src * p + dst) as u64));
            }
        }
    }

    #[test]
    fn exscan_prefixes(p in 1usize..9, values in prop::collection::vec(0u64..1000, 9)) {
        let vals = values.clone();
        let out = run(p, move |comm| {
            comm.exscan(vals[comm.rank()], 0, |a, b| a + b)
        });
        let mut acc = 0u64;
        for r in 0..p {
            prop_assert_eq!(out.results[r], acc);
            acc += values[r];
        }
    }

    #[test]
    fn gather_preserves_order(p in 1usize..9, root_sel in 0usize..9) {
        let root = root_sel % p;
        let out = run(p, move |comm| comm.gather(root, comm.rank() as u64 * 7));
        let expect: Vec<u64> = (0..p as u64).map(|r| r * 7).collect();
        prop_assert_eq!(out.results[root].as_ref(), Some(&expect));
        for (r, res) in out.results.iter().enumerate() {
            if r != root {
                prop_assert!(res.is_none());
            }
        }
    }

    #[test]
    fn reduce_totals_commutative_op(
        p in 1usize..9,
        values in prop::collection::vec(any::<u32>(), 9),
    ) {
        let vals = values.clone();
        let out = run(p, move |comm| {
            comm.reduce(0, vals[comm.rank()] as u64, |a, b| a + b)
        });
        let expect: u64 = values[..p].iter().map(|&v| v as u64).sum();
        prop_assert_eq!(out.results[0], Some(expect));
    }
}
