//! Property-based tests: every collective must agree with its sequential
//! reference on arbitrary inputs, sizes and roots.
//!
//! Driven by the in-repo seeded generator (the workspace builds offline, so
//! the external `proptest` crate the seed used is unavailable); each property
//! runs `CASES` independently drawn inputs, reproducible from the case seed.

use dspgemm_mpi::run;
use dspgemm_util::rng::{Rng, SplitMix64};

const CASES: u64 = 24;

#[test]
fn bcast_delivers_root_value() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xBCA57, case);
        let p = 1 + rng.gen_range(8) as usize;
        let root = rng.gen_range(9) as usize % p;
        let value = rng.next_u64();
        let out = run(p, move |comm| {
            comm.bcast(
                root,
                if comm.rank() == root {
                    Some(value)
                } else {
                    None
                },
            )
        });
        assert!(out.results.iter().all(|&v| v == value), "case {case}");
    }
}

#[test]
fn allgather_orders_by_rank() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xA11, case);
        let p = 1 + rng.gen_range(8) as usize;
        let base = rng.next_u64() as u32;
        let out = run(p, move |comm| {
            comm.allgather(base.wrapping_add(comm.rank() as u32))
        });
        let expect: Vec<u32> = (0..p as u32).map(|r| base.wrapping_add(r)).collect();
        assert!(out.results.iter().all(|v| *v == expect), "case {case}");
    }
}

#[test]
fn allreduce_matches_fold() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xA11_2ED, case);
        let p = 1 + rng.gen_range(8) as usize;
        let values: Vec<u64> = (0..9).map(|_| rng.next_u64()).collect();
        let vals = values.clone();
        let out = run(p, move |comm| {
            comm.allreduce(vals[comm.rank()], |a, b| a ^ b)
        });
        let expect = values[..p].iter().fold(0u64, |a, &b| a ^ b);
        assert!(out.results.iter().all(|&v| v == expect), "case {case}");
    }
}

#[test]
fn alltoallv_is_a_transpose() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xA2A, case);
        let p = 1 + rng.gen_range(5) as usize;
        let seed = rng.next_u64();
        let out = run(p, move |comm| {
            let chunks: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![seed ^ ((comm.rank() * p + dst) as u64)])
                .collect();
            comm.alltoallv(chunks)
        });
        for dst in 0..p {
            for src in 0..p {
                assert_eq!(
                    out.results[dst][src][0],
                    seed ^ ((src * p + dst) as u64),
                    "case {case}"
                );
            }
        }
    }
}

#[test]
fn exscan_prefixes() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xE55CA4, case);
        let p = 1 + rng.gen_range(8) as usize;
        let values: Vec<u64> = (0..9).map(|_| rng.gen_range(1000)).collect();
        let vals = values.clone();
        let out = run(p, move |comm| {
            comm.exscan(vals[comm.rank()], 0, |a, b| a + b)
        });
        let mut acc = 0u64;
        for (res, val) in out.results.iter().zip(&values) {
            assert_eq!(*res, acc, "case {case}");
            acc += val;
        }
    }
}

#[test]
fn gather_preserves_order() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0x6A7_8E4, case);
        let p = 1 + rng.gen_range(8) as usize;
        let root = rng.gen_range(9) as usize % p;
        let out = run(p, move |comm| comm.gather(root, comm.rank() as u64 * 7));
        let expect: Vec<u64> = (0..p as u64).map(|r| r * 7).collect();
        assert_eq!(out.results[root].as_ref(), Some(&expect), "case {case}");
        for (r, res) in out.results.iter().enumerate() {
            if r != root {
                assert!(res.is_none(), "case {case}");
            }
        }
    }
}

#[test]
fn reduce_totals_commutative_op() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0x2ED_0CE, case);
        let p = 1 + rng.gen_range(8) as usize;
        let values: Vec<u32> = (0..9).map(|_| rng.next_u64() as u32).collect();
        let vals = values.clone();
        let out = run(p, move |comm| {
            comm.reduce(0, vals[comm.rank()] as u64, |a, b| a + b)
        });
        let expect: u64 = values[..p].iter().map(|&v| v as u64).sum();
        assert_eq!(out.results[0], Some(expect), "case {case}");
    }
}
