//! TCP-backend-specific behaviour: failure detection over real sockets and
//! the single-rank loopback short-circuit. (Cross-backend semantics parity
//! lives in `backend_matrix.rs`.)
#![cfg(feature = "tcp-transport")]

use dspgemm_mpi::tcp::{detect_deadline, run_tcp, test_path, Reexec, TcpConfig};
use dspgemm_mpi::{catch_comm_mut, CommError};
use std::time::{Duration, Instant};

/// Kill a rank process mid-job: every survivor must surface a typed
/// `PeerFailed { rank: 2 }` from its `wait_deadline` polling loop within
/// the detection budget — no hang, no untyped crash. Detection is driven
/// by the broken socket (the reader thread synthesizes a failure marker on
/// EOF), with `wait_deadline`'s timeout as the bounded fallback that keeps
/// the loop from blocking forever.
#[test]
fn killed_peer_raises_peer_failed_on_survivors() {
    let out = run_tcp(
        Reexec::Test(test_path(
            module_path!(),
            "killed_peer_raises_peer_failed_on_survivors",
        )),
        TcpConfig::new(4).expect_failures(),
        |comm| {
            // Make sure everyone is past bootstrap before the kill.
            comm.barrier();
            if comm.rank() == 2 {
                // Die without poison, FIN, or any goodbye: survivors must
                // detect this from the transport alone.
                std::process::abort();
            }
            let budget = detect_deadline();
            let t0 = Instant::now();
            let outcome = catch_comm_mut(|| {
                // A message from rank 2 that will never arrive.
                let mut req = comm.irecv::<u64>(2, 77);
                loop {
                    match req.wait_deadline(Duration::from_millis(50)) {
                        Ok(_) => panic!("received a message from a dead rank"),
                        Err(CommError::Timeout { .. }) => {
                            assert!(
                                t0.elapsed() < budget,
                                "no failure detected within the detection budget"
                            );
                        }
                        // A typed failure normally unwinds out of the
                        // drain; re-raise if it ever arrives by value so
                        // `catch_comm_mut` sees one uniform signal.
                        Err(other) => std::panic::panic_any(other),
                    }
                }
            });
            match outcome {
                Err(CommError::PeerFailed { rank }) => {
                    assert_eq!(rank, 2, "wrong failed rank reported");
                    assert!(t0.elapsed() < budget, "detection exceeded the budget");
                }
                Err(other) => panic!("expected PeerFailed, got {other}"),
                Ok(_) => unreachable!("the polling loop only exits by unwinding"),
            }
            assert_eq!(comm.failed_ranks(), vec![2]);
            comm.rank() as u64
        },
    );
    assert_eq!(out.results.len(), 4);
    assert!(
        out.results[2].is_none(),
        "the killed rank reported a result"
    );
    for r in [0usize, 1, 3] {
        assert_eq!(
            out.results[r],
            Some(r as u64),
            "survivor {r} did not finish"
        );
    }
}

/// p = 1 regression: a single-rank TCP job must take the same channel-free
/// short-circuits as the simulator — bcast and friends resolve locally and
/// self-sends go through the loopback inbox, so *zero* socket frames are
/// written and nothing is wire-encoded (the payload round-trips by
/// pointer, not through the codec).
#[test]
fn single_rank_loopback_short_circuit() {
    let out = run_tcp(
        Reexec::Test(test_path(
            module_path!(),
            "single_rank_loopback_short_circuit",
        )),
        TcpConfig::new(1),
        |comm| {
            assert_eq!((comm.rank(), comm.size()), (0, 1));
            let b = comm.bcast(0, Some(vec![1u64, 2, 3]));
            comm.barrier();
            // A self-send through the explicit p2p path.
            comm.send(0, 5, 41u64);
            let v: u64 = comm.recv(0, 5);
            let g = comm.allgather(v + b.iter().sum::<u64>());
            g[0]
        },
    );
    assert_eq!(out.results, vec![Some(47)]);
    assert_eq!(out.frames, 0, "single rank wrote socket frames");

    // Parity with the simulator, including metered volume.
    let sim = dspgemm_mpi::run(1, |comm| {
        let b = comm.bcast(0, Some(vec![1u64, 2, 3]));
        comm.barrier();
        comm.send(0, 5, 41u64);
        let v: u64 = comm.recv(0, 5);
        let g = comm.allgather(v + b.iter().sum::<u64>());
        g[0]
    });
    assert_eq!(sim.results, vec![47]);
    assert_eq!(out.stats.volume(), sim.stats.volume());
}
