//! Cross-backend parity matrix: every case is one SPMD program run on the
//! in-process simulator and — with `--features tcp-transport` — on real OS
//! processes over the TCP mesh, at p ∈ {1, 4}. The backends must produce
//! identical per-rank results *and* identical logical wire volume (bytes
//! and message counts per rank per category): the TCP backend meters
//! logical `WireSize` bytes on the sender exactly like the simulator, so
//! any divergence is a transport bug, not measurement noise.

use dspgemm_mpi::Comm;
use std::sync::Arc;

/// Expands each case into a module with `sim_p1`/`sim_p4` tests (always)
/// and `tcp_p1`/`tcp_p4` parity tests (feature `tcp-transport`). The TCP
/// tests re-execute this test binary per rank, so `run_tcp` runs first in
/// the test body — the child processes exit inside it.
macro_rules! backend_matrix {
    ($($name:ident($comm:ident) -> $ret:ty $body:block)*) => {
        $(
            mod $name {
                use super::*;

                fn case($comm: &Comm) -> $ret $body

                fn sim(p: usize) -> (Vec<$ret>, dspgemm_mpi::CommStats) {
                    let out = dspgemm_mpi::run(p, case);
                    (out.results, out.stats.volume())
                }

                #[test]
                fn sim_p1() {
                    sim(1);
                }

                #[test]
                fn sim_p4() {
                    sim(4);
                }

                #[cfg(feature = "tcp-transport")]
                fn tcp_parity(p: usize, fn_name: &str) {
                    use dspgemm_mpi::tcp::{run_tcp, test_path, Reexec, TcpConfig};
                    let out = run_tcp(
                        Reexec::Test(test_path(module_path!(), fn_name)),
                        TcpConfig::new(p),
                        case,
                    );
                    let (sim_results, sim_volume) = sim(p);
                    let tcp_results: Vec<$ret> = out
                        .results
                        .into_iter()
                        .map(|r| r.expect("every rank reports"))
                        .collect();
                    assert_eq!(tcp_results, sim_results, "results differ across backends");
                    assert_eq!(
                        out.stats.volume(),
                        sim_volume,
                        "logical wire volume differs across backends"
                    );
                    if p == 1 {
                        // Loopback short-circuit: a single rank never
                        // touches a socket.
                        assert_eq!(out.frames, 0, "p=1 sent socket frames");
                    }
                }

                #[cfg(feature = "tcp-transport")]
                #[test]
                fn tcp_p1() {
                    tcp_parity(1, "tcp_p1");
                }

                #[cfg(feature = "tcp-transport")]
                #[test]
                fn tcp_p4() {
                    tcp_parity(4, "tcp_p4");
                }
            }
        )*
    };
}

backend_matrix! {
    allreduce_scalars(comm) -> (u64, u64) {
        let sum = comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b);
        comm.barrier();
        let max = comm.allreduce(comm.rank() as u64 * 3 + 7, |a: u64, b| a.max(b));
        (sum, max)
    }

    bcast_vector(comm) -> Vec<u64> {
        let v = if comm.rank() == 0 {
            Some((0..257u64).map(|i| i * i + 1).collect::<Vec<u64>>())
        } else {
            None
        };
        comm.bcast(0, v)
    }

    alltoallv_ragged(comm) -> Vec<Vec<u64>> {
        let p = comm.size();
        let chunks: Vec<Vec<u64>> = (0..p)
            .map(|dst| vec![(comm.rank() * 100 + dst) as u64; comm.rank() + 2 * dst + 1])
            .collect();
        comm.alltoallv(chunks)
    }

    sendrecv_ring(comm) -> (u64, Vec<u64>) {
        let p = comm.size();
        let next = (comm.rank() + 1) % p;
        let prev = (comm.rank() + p - 1) % p;
        let from_prev = comm.sendrecv::<u64, u64>(next, comm.rank() as u64, prev, 9);
        let gathered = comm.allgather(from_prev);
        (from_prev, gathered)
    }

    tags_match_out_of_order(comm) -> (u32, u32) {
        if comm.size() == 1 {
            return (0, 0);
        }
        if comm.rank() == 0 {
            for dst in 1..comm.size() {
                comm.send(dst, 1, 10u32 + dst as u32);
                comm.send(dst, 2, 20u32 + dst as u32);
            }
            (0, 0)
        } else {
            // Wait for tag 2 before tag 1: exercises the pending buffer on
            // both backends.
            let r2 = comm.irecv::<u32>(0, 2);
            let r1 = comm.irecv::<u32>(0, 1);
            let b = r2.wait();
            let a = r1.wait();
            (a, b)
        }
    }

    shared_panels(comm) -> (Vec<u64>, u64) {
        let root_panel = if comm.rank() == 0 {
            Some(Arc::new((0..123u64).map(|i| i ^ 0xA5).collect::<Vec<u64>>()))
        } else {
            None
        };
        let panel = comm.ibcast_shared(0, root_panel).wait();
        let p = comm.size();
        let chunks: Vec<Vec<u64>> = (0..p)
            .map(|dst| vec![(comm.rank() + dst) as u64; dst + 1])
            .collect();
        let exchanged = comm.ialltoallv(chunks).wait();
        let checksum = exchanged.into_iter().flatten().sum::<u64>()
            + panel.iter().sum::<u64>();
        ((*panel).clone(), checksum)
    }

    gather_exscan_reduce(comm) -> (Option<Vec<u64>>, u64, Option<u64>) {
        let gathered = comm.gather(1 % comm.size(), comm.rank() as u64 * 5);
        let prefix = comm.exscan(comm.rank() as u64 + 1, 0, |a, b| a + b);
        let reduced = comm.reduce(0, comm.rank() as u64 + 11, |a, b| a + b);
        (gathered, prefix, reduced)
    }
}
