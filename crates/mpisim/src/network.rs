//! The shared transport: one inbox channel per rank plus the meter.

use crate::message::{Envelope, Payload, Tag};
use crate::stats::{CommCategory, CommStats, Meter};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Shared state of a simulated cluster: `p` inboxes and the byte meter.
pub(crate) struct Network {
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Option<Receiver<Envelope>>>,
    meter: Arc<Meter>,
}

impl Network {
    pub(crate) fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Self {
            senders,
            receivers,
            meter: Meter::new(p),
        }
    }

    /// Takes rank `r`'s endpoint (inbox receiver plus fan-out senders).
    /// Each rank's endpoint can be taken exactly once.
    pub(crate) fn endpoint(&mut self, rank: usize) -> Endpoint {
        Endpoint {
            rank,
            inbox: self.receivers[rank].take().expect("endpoint taken twice"),
            peers: self.senders.clone(),
            meter: Arc::clone(&self.meter),
            pending: Vec::new(),
            blocked_ns: 0,
        }
    }

    pub(crate) fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    pub(crate) fn payload_clones(&self) -> u64 {
        self.meter.payload_clones()
    }
}

/// A single rank's connection to the network.
///
/// The endpoint only moves envelopes; *matching policy* (direct receives,
/// the nonblocking progress engine) lives in `comm`/`request`, which drive
/// the primitives below so that every blocking drain can advance pending
/// collectives.
pub(crate) struct Endpoint {
    pub(crate) rank: usize,
    inbox: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    meter: Arc<Meter>,
    /// Messages received but not yet matched (out-of-order arrivals).
    pending: Vec<Envelope>,
    /// Cumulative nanoseconds this rank has spent blocked on the inbox
    /// (all waits, including barriers). The nonblocking layer samples it at
    /// request issue and completion so time blocked in *other* operations is
    /// never misattributed as compute-overlapped communication.
    blocked_ns: u64,
}

impl Endpoint {
    /// Snapshot of the whole network's counters (benchmark instrumentation).
    pub(crate) fn stats_snapshot(&self) -> CommStats {
        self.meter.snapshot()
    }

    /// Records one payload deep-clone by a clone-based collective.
    #[inline]
    pub(crate) fn record_payload_clone(&self) {
        self.meter.record_payload_clone();
    }

    /// Network-wide payload deep-clone count so far.
    #[inline]
    pub(crate) fn payload_clones(&self) -> u64 {
        self.meter.payload_clones()
    }

    /// Records compute-hidden request lifetime for this rank (the
    /// nonblocking layer's overlap attribution).
    #[inline]
    pub(crate) fn record_overlapped_ns(&self, ns: u64) {
        self.meter.record_overlapped(self.rank, ns);
    }

    /// Cumulative nanoseconds this rank has spent blocked on the inbox.
    #[inline]
    pub(crate) fn blocked_ns_total(&self) -> u64 {
        self.blocked_ns
    }

    /// Sends an envelope, attributing `bytes` to `category`.
    pub(crate) fn send_envelope(
        &self,
        dst_world: usize,
        comm_id: u64,
        tag: Tag,
        payload: Payload,
        category: CommCategory,
        bytes: u64,
    ) {
        self.meter.record(self.rank, category, bytes);
        let env = Envelope {
            src_world: self.rank,
            comm_id,
            tag,
            payload,
            sent_at: Instant::now(),
        };
        // A closed inbox means the peer already exited; with poison-on-panic
        // this only happens after a failure elsewhere, so fail loudly.
        self.peers[dst_world]
            .send(env)
            .expect("peer rank inbox closed (peer exited early)");
    }

    /// Broadcasts a poison marker to every other rank (called on panic).
    pub(crate) fn poison_all(&self) {
        for (dst, tx) in self.peers.iter().enumerate() {
            if dst != self.rank {
                // Ignore closed inboxes; peers may have already exited.
                let _ = tx.send(Envelope {
                    src_world: self.rank,
                    comm_id: 0,
                    tag: Tag(0),
                    payload: Payload::Poison,
                    sent_at: Instant::now(),
                });
            }
        }
    }

    /// Takes an already-buffered envelope matching `(src, comm, tag)`, if
    /// one arrived out of order earlier. Returns the payload and the moment
    /// the sender made it available.
    pub(crate) fn take_pending(
        &mut self,
        src_world: usize,
        comm_id: u64,
        tag: Tag,
    ) -> Option<(Box<dyn std::any::Any + Send>, Instant)> {
        let pos = self
            .pending
            .iter()
            .position(|e| e.src_world == src_world && e.comm_id == comm_id && e.tag == tag)?;
        let env = self.pending.remove(pos);
        match env.payload {
            Payload::Value(v) => Some((v, env.sent_at)),
            Payload::Poison => panic!("peer rank {src_world} panicked"),
        }
    }

    /// Buffers an envelope that matched neither the caller's receive nor a
    /// registered progress action (preserves MPI's non-overtaking guarantee
    /// per (source, comm, tag)).
    pub(crate) fn buffer(&mut self, env: Envelope) {
        self.pending.push(env);
    }

    /// Non-blocking poll of the inbox. Receipt of poison panics.
    pub(crate) fn try_next(&mut self) -> Option<Envelope> {
        let env = self.inbox.try_recv().ok()?;
        if matches!(env.payload, Payload::Poison) {
            panic!("peer rank {} panicked", env.src_world);
        }
        Some(env)
    }

    /// Blocking receive of the next envelope, returning the time this rank
    /// spent blocked. With `record_exposed`, the blocked time is recorded
    /// into the meter as *exposed* communication time — callers pass `false`
    /// for pure-synchronization waits (barriers), whose skew is
    /// load-imbalance, not communication cost. Receipt of poison panics.
    pub(crate) fn blocking_next(
        &mut self,
        record_exposed: bool,
    ) -> (Envelope, std::time::Duration) {
        let t = Instant::now();
        let env = self
            .inbox
            .recv()
            .expect("network closed while waiting for message");
        let blocked = t.elapsed();
        self.blocked_ns += blocked.as_nanos() as u64;
        if record_exposed {
            self.meter
                .record_exposed(self.rank, blocked.as_nanos() as u64);
        }
        if matches!(env.payload, Payload::Poison) {
            panic!("peer rank {} panicked", env.src_world);
        }
        (env, blocked)
    }
}
