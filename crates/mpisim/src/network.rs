//! Rank endpoints: the inbox, metering, and fault machinery over a
//! [`Transport`].

use crate::fault::{CommError, FaultPlan};
use crate::message::{Envelope, Payload, Tag};
use crate::stats::{CommCategory, CommStats, Meter};
use crate::transport::Transport;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dspgemm_util::hash::mix64;
use std::cell::{Cell, RefCell};
use std::panic::panic_any;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared state of a simulated cluster: `p` inboxes and the byte meter.
pub(crate) struct Network {
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Option<Receiver<Envelope>>>,
    meter: Arc<Meter>,
    plan: Arc<FaultPlan>,
}

impl Network {
    pub(crate) fn new_with_plan(p: usize, plan: FaultPlan) -> Self {
        assert!(p >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Self {
            senders,
            receivers,
            meter: Meter::new(p),
            plan: Arc::new(plan),
        }
    }

    /// Takes rank `r`'s endpoint (inbox receiver plus the channel-mesh
    /// transport). Each rank's endpoint can be taken exactly once.
    pub(crate) fn endpoint(&mut self, rank: usize) -> Endpoint {
        Endpoint::with_transport(
            rank,
            self.receivers[rank].take().expect("endpoint taken twice"),
            Transport::Local {
                peers: self.senders.clone(),
            },
            Arc::clone(&self.meter),
            Arc::clone(&self.plan),
        )
    }

    pub(crate) fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    pub(crate) fn payload_clones(&self) -> u64 {
        self.meter.payload_clones()
    }

    pub(crate) fn transient_retries(&self) -> u64 {
        self.meter.transient_retries()
    }
}

/// A single rank's connection to the network.
///
/// The endpoint only moves envelopes; *matching policy* (direct receives,
/// the nonblocking progress engine) lives in `comm`/`request`, which drive
/// the primitives below so that every blocking drain can advance pending
/// collectives.
pub(crate) struct Endpoint {
    pub(crate) rank: usize,
    inbox: Receiver<Envelope>,
    transport: Transport,
    meter: Arc<Meter>,
    /// Messages received but not yet matched (out-of-order arrivals).
    pending: Vec<Envelope>,
    /// Cumulative nanoseconds this rank has spent blocked on the inbox
    /// (all waits, including barriers). The nonblocking layer samples it at
    /// request issue and completion so time blocked in *other* operations is
    /// never misattributed as compute-overlapped communication.
    blocked_ns: u64,
    /// The run's fault schedule (an empty plan outside `run_with_faults`).
    plan: Arc<FaultPlan>,
    /// Sends issued by this rank so far (the fault plan's operation index).
    /// `Cell`: `send_envelope` takes `&self` under shared `RefCell` borrows
    /// at every call site.
    sends: Cell<u64>,
    /// Crash before this (1-based) send index, if armed.
    crash_at: Cell<Option<u64>>,
    /// Whether this rank already simulated its crash (the replacement
    /// thread must not crash again on the same trigger).
    crashed: Cell<bool>,
    /// Current recovery epoch. Incremented by the recovery protocol;
    /// stamped on every outgoing envelope and matched exactly on receive.
    epoch: Cell<u64>,
    /// Peers whose `Failed` markers this rank has drained.
    failed: RefCell<Vec<usize>>,
    /// Marker-to-drain latency of the most recent failure detection.
    last_detect_ns: Cell<u64>,
}

impl Endpoint {
    /// Builds an endpoint from its receive inbox and outgoing transport.
    /// Used by [`Network::endpoint`] (channel mesh) and the TCP backend's
    /// per-process bootstrap.
    pub(crate) fn with_transport(
        rank: usize,
        inbox: Receiver<Envelope>,
        transport: Transport,
        meter: Arc<Meter>,
        plan: Arc<FaultPlan>,
    ) -> Endpoint {
        let crash_at = match plan.crash {
            Some((r, k)) if r == rank => Some(k),
            _ => None,
        };
        Endpoint {
            rank,
            inbox,
            transport,
            meter,
            pending: Vec::new(),
            blocked_ns: 0,
            plan,
            sends: Cell::new(0),
            crash_at: Cell::new(crash_at),
            crashed: Cell::new(false),
            epoch: Cell::new(0),
            failed: RefCell::new(Vec::new()),
            last_detect_ns: Cell::new(0),
        }
    }

    /// Whether payloads to world rank `dst` must be wire-encoded before
    /// sending (true only for remote peers of a real-wire transport).
    #[inline]
    pub(crate) fn encodes_to(&self, dst_world: usize) -> bool {
        self.transport.encodes_to(dst_world)
    }

    /// Snapshot of the whole network's counters (benchmark instrumentation).
    pub(crate) fn stats_snapshot(&self) -> CommStats {
        self.meter.snapshot()
    }

    /// Records one payload deep-clone by a clone-based collective.
    #[inline]
    pub(crate) fn record_payload_clone(&self) {
        self.meter.record_payload_clone();
    }

    /// Network-wide payload deep-clone count so far.
    #[inline]
    pub(crate) fn payload_clones(&self) -> u64 {
        self.meter.payload_clones()
    }

    /// Network-wide injected transient-retry count so far.
    #[inline]
    pub(crate) fn transient_retries_total(&self) -> u64 {
        self.meter.transient_retries()
    }

    /// Records compute-hidden request lifetime for this rank (the
    /// nonblocking layer's overlap attribution).
    #[inline]
    pub(crate) fn record_overlapped_ns(&self, ns: u64) {
        self.meter.record_overlapped(self.rank, ns);
    }

    /// Cumulative nanoseconds this rank has spent blocked on the inbox.
    #[inline]
    pub(crate) fn blocked_ns_total(&self) -> u64 {
        self.blocked_ns
    }

    /// Current recovery epoch of this rank.
    #[inline]
    pub(crate) fn recovery_epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Marker-to-drain latency (ns) of the most recent failure detection.
    #[inline]
    pub(crate) fn last_detect_ns(&self) -> u64 {
        self.last_detect_ns.get()
    }

    /// Peers whose failure this rank has detected so far (drained markers).
    pub(crate) fn failed_ranks(&self) -> Vec<usize> {
        self.failed.borrow().clone()
    }

    /// Drains the detected-failure set (recovery protocols consume it once
    /// per incident so a later failure starts from a clean slate).
    pub(crate) fn take_failed_ranks(&self) -> Vec<usize> {
        std::mem::take(&mut *self.failed.borrow_mut())
    }

    /// Whether this rank's thread already simulated a crash.
    #[inline]
    pub(crate) fn has_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// Arms a simulated crash `after` sends from now (1 = the very next
    /// send aborts). Re-arming clears a previous trigger.
    pub(crate) fn arm_crash(&self, after: u64) {
        assert!(after >= 1, "arm_crash is 1-based: 1 crashes the next send");
        self.crash_at.set(Some(self.sends.get() + after));
        self.crashed.set(false);
    }

    /// Disarms a pending simulated crash.
    pub(crate) fn disarm_crash(&self) {
        self.crash_at.set(None);
    }

    /// Enters the next recovery epoch: stale buffered envelopes (aborted
    /// rounds, failure markers) are purged and subsequent sends are stamped
    /// with the new epoch. Returns the new epoch.
    pub(crate) fn advance_epoch(&mut self) -> u64 {
        let e = self.epoch.get() + 1;
        self.epoch.set(e);
        self.pending
            .retain(|env| env.epoch >= e && matches!(env.payload, Payload::Value(_)));
        e
    }

    fn note_failed(&self, rank: usize) {
        let mut failed = self.failed.borrow_mut();
        if !failed.contains(&rank) {
            failed.push(rank);
        }
    }

    /// Fault-plan hook run before every send. Order matters: a crash
    /// trigger fires *before* the send is metered or delivered ("crash
    /// before the k-th send"), while delay/transient schedules run after
    /// the crash check but before delivery.
    fn inject_send_faults(&self) {
        let op = self.sends.get() + 1;
        self.sends.set(op);
        if let Some(at) = self.crash_at.get() {
            if op >= at && !self.crashed.get() {
                self.simulate_crash();
            }
        }
        if let Some(d) = self.plan.delay {
            let h = mix64(self.plan.seed ^ ((self.rank as u64) << 40) ^ op);
            if h.is_multiple_of(d.every) && d.max_micros > 0 {
                std::thread::sleep(Duration::from_micros((h >> 32) % d.max_micros));
            }
        }
        if let Some(t) = self.plan.transient {
            let h = mix64(self.plan.seed ^ 0x7472_616e ^ ((self.rank as u64) << 40) ^ op);
            if h.is_multiple_of(t.every) {
                for _ in 0..t.retries {
                    self.meter.record_transient_retry();
                    if t.backoff_micros > 0 {
                        std::thread::sleep(Duration::from_micros(t.backoff_micros));
                    }
                }
            }
        }
    }

    /// Simulates this rank's crash: a `Failed` marker goes to every peer
    /// (so each survivor's next drain aborts its round recoverably) and the
    /// calling thread unwinds with [`CommError::Crashed`], which the
    /// harness can catch to rejoin as the replacement rank.
    fn simulate_crash(&self) -> ! {
        self.crashed.set(true);
        self.crash_at.set(None);
        let now = Instant::now();
        for dst in 0..self.transport.len() {
            if dst != self.rank {
                let _ = self.transport.deliver(
                    dst,
                    Envelope {
                        src_world: self.rank,
                        comm_id: 0,
                        tag: Tag(0),
                        epoch: self.epoch.get(),
                        payload: Payload::Failed { rank: self.rank },
                        sent_at: now,
                    },
                );
            }
        }
        dspgemm_obs::instant("comm", "simulated_crash", &[("rank", self.rank as u64)]);
        panic_any(CommError::Crashed { rank: self.rank })
    }

    /// Sends an envelope, attributing `bytes` to `category`.
    pub(crate) fn send_envelope(
        &self,
        dst_world: usize,
        comm_id: u64,
        tag: Tag,
        payload: Payload,
        category: CommCategory,
        bytes: u64,
    ) {
        self.inject_send_faults();
        self.meter.record(self.rank, category, bytes);
        let env = Envelope {
            src_world: self.rank,
            comm_id,
            tag,
            epoch: self.epoch.get(),
            payload,
            sent_at: Instant::now(),
        };
        if self.transport.deliver(dst_world, env).is_err() {
            // On the channel mesh a closed inbox only happens after a
            // poison-panic elsewhere — fail loudly. On a real wire a dead
            // peer process is a *detected failure*: surface the same typed
            // error the marker path raises so recovery handles both.
            if self.transport.encodes_to(dst_world) {
                self.note_failed(dst_world);
                dspgemm_obs::instant("comm", "peer_failed", &[("rank", dst_world as u64)]);
                panic_any(CommError::PeerFailed { rank: dst_world });
            }
            panic!("peer rank inbox closed (peer exited early)");
        }
    }

    /// Broadcasts a poison marker to every other rank (called on panic).
    pub(crate) fn poison_all(&self) {
        for dst in 0..self.transport.len() {
            if dst != self.rank {
                // Ignore unreachable peers; they may have already exited.
                let _ = self.transport.deliver(
                    dst,
                    Envelope {
                        src_world: self.rank,
                        comm_id: 0,
                        tag: Tag(0),
                        epoch: self.epoch.get(),
                        payload: Payload::Poison,
                        sent_at: Instant::now(),
                    },
                );
            }
        }
    }

    /// Screens a drained envelope: values from the current epoch pass,
    /// stale traffic (previous epochs — stragglers of an aborted round) is
    /// dropped, poison fails fast, and a current `Failed` marker aborts the
    /// round with a recoverable [`CommError::PeerFailed`].
    fn screen(&self, env: Envelope) -> Option<Envelope> {
        match env.payload {
            Payload::Poison => panic!("peer rank {} panicked", env.src_world),
            Payload::Failed { rank } => {
                self.note_failed(rank);
                if env.epoch < self.epoch.get() {
                    // A marker from an epoch this rank already recovered
                    // past: the incident was handled, drop it.
                    None
                } else {
                    let detect = env.sent_at.elapsed().as_nanos() as u64;
                    self.last_detect_ns.set(detect);
                    dspgemm_obs::instant(
                        "comm",
                        "peer_failed",
                        &[("rank", rank as u64), ("detect_ns", detect)],
                    );
                    panic_any(CommError::PeerFailed { rank })
                }
            }
            Payload::Value(_) => {
                if env.epoch < self.epoch.get() {
                    None
                } else {
                    Some(env)
                }
            }
        }
    }

    /// Takes an already-buffered envelope matching `(src, comm, tag)` in
    /// the current epoch, if one arrived out of order earlier. Returns the
    /// payload and the moment the sender made it available.
    pub(crate) fn take_pending(
        &mut self,
        src_world: usize,
        comm_id: u64,
        tag: Tag,
    ) -> Option<(Box<dyn std::any::Any + Send>, Instant)> {
        let epoch = self.epoch.get();
        let pos = self.pending.iter().position(|e| {
            e.src_world == src_world && e.comm_id == comm_id && e.tag == tag && e.epoch == epoch
        })?;
        let env = self.pending.remove(pos);
        match env.payload {
            Payload::Value(v) => Some((v, env.sent_at)),
            Payload::Poison => panic!("peer rank {src_world} panicked"),
            Payload::Failed { .. } => unreachable!("failure markers never match a receive"),
        }
    }

    /// Buffers an envelope that matched neither the caller's receive nor a
    /// registered progress action (preserves MPI's non-overtaking guarantee
    /// per (source, comm, tag)).
    pub(crate) fn buffer(&mut self, env: Envelope) {
        self.pending.push(env);
    }

    /// Non-blocking poll of the inbox. Receipt of poison panics; a failure
    /// marker raises [`CommError::PeerFailed`]; stale-epoch traffic is
    /// dropped and polling continues.
    pub(crate) fn try_next(&mut self) -> Option<Envelope> {
        loop {
            let env = self.inbox.try_recv().ok()?;
            if let Some(env) = self.screen(env) {
                return Some(env);
            }
        }
    }

    /// Blocking receive of the next envelope, returning the time this rank
    /// spent blocked. With `record_exposed`, the blocked time is recorded
    /// into the meter as *exposed* communication time — callers pass `false`
    /// for pure-synchronization waits (barriers), whose skew is
    /// load-imbalance, not communication cost. Receipt of poison panics;
    /// a failure marker raises [`CommError::PeerFailed`].
    pub(crate) fn blocking_next(&mut self, record_exposed: bool) -> (Envelope, Duration) {
        match self.blocking_next_deadline(record_exposed, None) {
            Ok(v) => v,
            Err(_) => unreachable!("no deadline was set"),
        }
    }

    /// [`Endpoint::blocking_next`] with an optional deadline. Past the
    /// deadline, returns [`CommError::Timeout`] instead of an envelope; the
    /// inbox is untouched beyond what was already drained, so the caller
    /// can keep waiting later.
    pub(crate) fn blocking_next_deadline(
        &mut self,
        record_exposed: bool,
        deadline: Option<Instant>,
    ) -> Result<(Envelope, Duration), CommError> {
        let t = Instant::now();
        loop {
            let env = match deadline {
                None => self
                    .inbox
                    .recv()
                    .expect("network closed while waiting for message"),
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    let got = if remaining.is_zero() {
                        Err(RecvTimeoutError::Timeout)
                    } else {
                        self.inbox.recv_timeout(remaining)
                    };
                    match got {
                        Ok(env) => env,
                        Err(RecvTimeoutError::Timeout) => {
                            let blocked = t.elapsed();
                            self.blocked_ns += blocked.as_nanos() as u64;
                            if record_exposed {
                                self.meter
                                    .record_exposed(self.rank, blocked.as_nanos() as u64);
                            }
                            return Err(CommError::Timeout { waited: blocked });
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            panic!("network closed while waiting for message")
                        }
                    }
                }
            };
            if let Some(env) = self.screen(env) {
                let blocked = t.elapsed();
                self.blocked_ns += blocked.as_nanos() as u64;
                if record_exposed {
                    self.meter
                        .record_exposed(self.rank, blocked.as_nanos() as u64);
                }
                return Ok((env, blocked));
            }
        }
    }
}
