//! The shared transport: one inbox channel per rank plus the meter.

use crate::message::{Envelope, Payload, Tag};
use crate::stats::{CommCategory, CommStats, Meter};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// Shared state of a simulated cluster: `p` inboxes and the byte meter.
pub(crate) struct Network {
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Option<Receiver<Envelope>>>,
    meter: Arc<Meter>,
}

impl Network {
    pub(crate) fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Self {
            senders,
            receivers,
            meter: Meter::new(p),
        }
    }

    /// Takes rank `r`'s endpoint (inbox receiver plus fan-out senders).
    /// Each rank's endpoint can be taken exactly once.
    pub(crate) fn endpoint(&mut self, rank: usize) -> Endpoint {
        Endpoint {
            rank,
            inbox: self.receivers[rank].take().expect("endpoint taken twice"),
            peers: self.senders.clone(),
            meter: Arc::clone(&self.meter),
            pending: Vec::new(),
        }
    }

    pub(crate) fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    pub(crate) fn payload_clones(&self) -> u64 {
        self.meter.payload_clones()
    }
}

/// A single rank's connection to the network.
pub(crate) struct Endpoint {
    pub(crate) rank: usize,
    inbox: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    meter: Arc<Meter>,
    /// Messages received but not yet matched (out-of-order arrivals).
    pending: Vec<Envelope>,
}

impl Endpoint {
    /// Snapshot of the whole network's counters (benchmark instrumentation).
    pub(crate) fn stats_snapshot(&self) -> CommStats {
        self.meter.snapshot()
    }

    /// Records one payload deep-clone by a clone-based collective.
    #[inline]
    pub(crate) fn record_payload_clone(&self) {
        self.meter.record_payload_clone();
    }

    /// Network-wide payload deep-clone count so far.
    #[inline]
    pub(crate) fn payload_clones(&self) -> u64 {
        self.meter.payload_clones()
    }

    /// Sends an envelope, attributing `bytes` to `category`.
    pub(crate) fn send_envelope(
        &self,
        dst_world: usize,
        comm_id: u64,
        tag: Tag,
        payload: Payload,
        category: CommCategory,
        bytes: u64,
    ) {
        self.meter.record(self.rank, category, bytes);
        let env = Envelope {
            src_world: self.rank,
            comm_id,
            tag,
            payload,
        };
        // A closed inbox means the peer already exited; with poison-on-panic
        // this only happens after a failure elsewhere, so fail loudly.
        self.peers[dst_world]
            .send(env)
            .expect("peer rank inbox closed (peer exited early)");
    }

    /// Broadcasts a poison marker to every other rank (called on panic).
    pub(crate) fn poison_all(&self) {
        for (dst, tx) in self.peers.iter().enumerate() {
            if dst != self.rank {
                // Ignore closed inboxes; peers may have already exited.
                let _ = tx.send(Envelope {
                    src_world: self.rank,
                    comm_id: 0,
                    tag: Tag(0),
                    payload: Payload::Poison,
                });
            }
        }
    }

    /// Blocking receive matching `(comm_id, src_world, tag)`.
    ///
    /// Non-matching arrivals are buffered, preserving MPI's non-overtaking
    /// guarantee per (source, comm, tag). Receipt of poison panics.
    pub(crate) fn recv_match(
        &mut self,
        src_world: usize,
        comm_id: u64,
        tag: Tag,
    ) -> Box<dyn std::any::Any + Send> {
        // First check the out-of-order buffer.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src_world == src_world && e.comm_id == comm_id && e.tag == tag)
        {
            match self.pending.remove(pos).payload {
                Payload::Value(v) => return v,
                Payload::Poison => panic!("peer rank {src_world} panicked"),
            }
        }
        loop {
            let env = self
                .inbox
                .recv()
                .expect("network closed while waiting for message");
            if matches!(env.payload, Payload::Poison) {
                panic!("peer rank {} panicked", env.src_world);
            }
            if env.src_world == src_world && env.comm_id == comm_id && env.tag == tag {
                match env.payload {
                    Payload::Value(v) => return v,
                    Payload::Poison => unreachable!(),
                }
            }
            self.pending.push(env);
        }
    }
}
