//! Communication metering.
//!
//! Every byte that crosses the simulated wire is attributed to the sending
//! rank and a [`CommCategory`]. The benchmark harness uses these counters to
//! report communication volume — the paper's central cost metric — and the
//! per-category split behind the breakdown figures (Fig. 7 "redist. comm.",
//! Fig. 12 "send/recv" vs "bcast" vs "scatter/reduce-scatter").

use dspgemm_util::{WireDecode, WireEncode, WireError, WireReader};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Traffic categories, mirroring the communication steps the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CommCategory {
    /// Point-to-point sends (e.g. the transpose exchange in Algorithm 1).
    P2p = 0,
    /// Broadcast trees (SUMMA and Algorithm 1/2 block broadcasts).
    Bcast = 1,
    /// Gather / allgather traffic.
    Gather = 2,
    /// All-to-all exchanges (update redistribution).
    Alltoall = 3,
    /// Reductions, including the sparse merge-reduce aggregation.
    Reduce = 4,
    /// Barrier control traffic (counted as messages; zero payload bytes).
    Barrier = 5,
}

/// Number of traffic categories.
pub const NUM_CATEGORIES: usize = 6;

const CATEGORY_NAMES: [&str; NUM_CATEGORIES] =
    ["p2p", "bcast", "gather", "alltoall", "reduce", "barrier"];

impl CommCategory {
    /// Human-readable category name.
    pub fn name(self) -> &'static str {
        CATEGORY_NAMES[self as usize]
    }

    /// All categories in index order.
    pub fn all() -> [CommCategory; NUM_CATEGORIES] {
        [
            CommCategory::P2p,
            CommCategory::Bcast,
            CommCategory::Gather,
            CommCategory::Alltoall,
            CommCategory::Reduce,
            CommCategory::Barrier,
        ]
    }
}

#[derive(Debug, Default)]
pub(crate) struct RankCounters {
    bytes: [AtomicU64; NUM_CATEGORIES],
    msgs: [AtomicU64; NUM_CATEGORIES],
    /// Nanoseconds this rank spent *blocked* waiting for communication
    /// (inside a blocking receive or a `Request::wait`) — the paper-relevant
    /// "exposed" communication time that serializes against compute.
    exposed_ns: AtomicU64,
    /// Nanoseconds of nonblocking-request lifetime hidden under local
    /// compute: for each completed request, `(completion - issue) -
    /// blocked`. Communication that progressed while the rank did useful
    /// work — the quantity the pipelined schedulers maximize.
    overlapped_ns: AtomicU64,
}

impl RankCounters {
    #[inline]
    pub(crate) fn record(&self, cat: CommCategory, bytes: u64) {
        self.bytes[cat as usize].fetch_add(bytes, Ordering::Relaxed);
        self.msgs[cat as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared, thread-safe metering state for a network.
#[derive(Debug)]
pub(crate) struct Meter {
    per_rank: Vec<RankCounters>,
    /// Payload deep-clones performed by the clone-based `bcast` (it forwards
    /// `value.clone()` to each tree child). The `*_shared` collectives move
    /// one `Arc` per receiver and never touch this counter, so a zero here
    /// over a measured region proves the region broadcast its payloads
    /// zero-copy. Scope: only `bcast` records — `allreduce`'s broadcast-back
    /// leg (O(1) control values on the hot paths) and `allgather`'s ring
    /// forwards (whose `T` may itself be an `Arc`, where `clone()` is not a
    /// deep copy) are exempt. Kept outside [`CommStats`]: it meters
    /// *transport implementation* (memcpy work), not logical wire volume.
    payload_clones: AtomicU64,
    /// Transient send failures injected by a fault plan (each counted once
    /// per retried attempt). Kept outside [`CommStats`] like
    /// `payload_clones`: retries model wasted *time* on a lossy fabric,
    /// not extra logical wire volume — the ablations' byte-parity asserts
    /// across fault arms depend on that.
    transient_retries: AtomicU64,
}

impl Meter {
    pub(crate) fn new(p: usize) -> Arc<Self> {
        Arc::new(Self {
            per_rank: (0..p).map(|_| RankCounters::default()).collect(),
            payload_clones: AtomicU64::new(0),
            transient_retries: AtomicU64::new(0),
        })
    }

    #[inline]
    pub(crate) fn record(&self, src_world: usize, cat: CommCategory, bytes: u64) {
        self.per_rank[src_world].record(cat, bytes);
    }

    /// Adds blocked-waiting time for `rank` (exposed communication).
    #[inline]
    pub(crate) fn record_exposed(&self, rank: usize, ns: u64) {
        self.per_rank[rank]
            .exposed_ns
            .fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds compute-hidden request lifetime for `rank` (overlapped
    /// communication).
    #[inline]
    pub(crate) fn record_overlapped(&self, rank: usize, ns: u64) {
        self.per_rank[rank]
            .overlapped_ns
            .fetch_add(ns, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_payload_clone(&self) {
        self.payload_clones.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn payload_clones(&self) -> u64 {
        self.payload_clones.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn record_transient_retry(&self) {
        self.transient_retries.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn transient_retries(&self) -> u64 {
        self.transient_retries.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            per_rank: self
                .per_rank
                .iter()
                .map(|rc| RankCommStats {
                    bytes: std::array::from_fn(|c| rc.bytes[c].load(Ordering::Relaxed)),
                    msgs: std::array::from_fn(|c| rc.msgs[c].load(Ordering::Relaxed)),
                    exposed_ns: rc.exposed_ns.load(Ordering::Relaxed),
                    overlapped_ns: rc.overlapped_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Immutable snapshot of per-rank communication counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankCommStats {
    /// Bytes sent by this rank, per category.
    pub bytes: [u64; NUM_CATEGORIES],
    /// Messages sent by this rank, per category.
    pub msgs: [u64; NUM_CATEGORIES],
    /// Nanoseconds spent blocked waiting for communication (exposed).
    pub exposed_ns: u64,
    /// Nanoseconds of nonblocking-request lifetime hidden under compute
    /// (overlapped).
    pub overlapped_ns: u64,
}

impl RankCommStats {
    /// Total bytes sent by this rank across categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages sent by this rank across categories.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }
}

/// Snapshot of the whole network's communication counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Per-world-rank counters.
    pub per_rank: Vec<RankCommStats>,
}

impl CommStats {
    /// Total bytes sent across all ranks and categories.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(RankCommStats::total_bytes).sum()
    }

    /// Total messages across all ranks and categories.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(RankCommStats::total_msgs).sum()
    }

    /// Total bytes in one category.
    pub fn bytes_in(&self, cat: CommCategory) -> u64 {
        self.per_rank.iter().map(|r| r.bytes[cat as usize]).sum()
    }

    /// Total messages in one category.
    pub fn msgs_in(&self, cat: CommCategory) -> u64 {
        self.per_rank.iter().map(|r| r.msgs[cat as usize]).sum()
    }

    /// Maximum bytes sent by any single rank (load-balance indicator; the
    /// paper's bandwidth terms are all per-process maxima).
    pub fn max_rank_bytes(&self) -> u64 {
        self.per_rank
            .iter()
            .map(RankCommStats::total_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total nanoseconds all ranks spent blocked waiting for communication
    /// (exposed communication time).
    pub fn total_exposed_ns(&self) -> u64 {
        self.per_rank.iter().map(|r| r.exposed_ns).sum()
    }

    /// Total nanoseconds of nonblocking-request lifetime hidden under local
    /// compute (overlapped communication time).
    pub fn total_overlapped_ns(&self) -> u64 {
        self.per_rank.iter().map(|r| r.overlapped_ns).sum()
    }

    /// Fraction of communication time that was hidden under compute:
    /// `overlapped / (overlapped + exposed)`. Zero when nothing was
    /// communicated.
    pub fn overlap_ratio(&self) -> f64 {
        let exposed = self.total_exposed_ns() as f64;
        let overlapped = self.total_overlapped_ns() as f64;
        if exposed + overlapped == 0.0 {
            0.0
        } else {
            overlapped / (exposed + overlapped)
        }
    }

    /// The deterministic volume counters only: a copy with the wall-clock
    /// timing fields (`exposed_ns`, `overlapped_ns`) zeroed. Two runs of the
    /// same program have equal `volume()` but never equal timings — use this
    /// for byte/message-parity assertions.
    pub fn volume(&self) -> CommStats {
        CommStats {
            per_rank: self
                .per_rank
                .iter()
                .map(|r| RankCommStats {
                    bytes: r.bytes,
                    msgs: r.msgs,
                    exposed_ns: 0,
                    overlapped_ns: 0,
                })
                .collect(),
        }
    }

    /// Counter-wise difference `self - earlier`, for measuring a phase.
    ///
    /// # Panics
    /// Panics if the snapshots have different rank counts or `earlier` has
    /// larger counters (i.e. snapshots taken in the wrong order).
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        assert_eq!(self.per_rank.len(), earlier.per_rank.len());
        CommStats {
            per_rank: self
                .per_rank
                .iter()
                .zip(&earlier.per_rank)
                .map(|(now, before)| RankCommStats {
                    bytes: std::array::from_fn(|c| {
                        now.bytes[c]
                            .checked_sub(before.bytes[c])
                            .expect("snapshot order")
                    }),
                    msgs: std::array::from_fn(|c| {
                        now.msgs[c]
                            .checked_sub(before.msgs[c])
                            .expect("snapshot order")
                    }),
                    exposed_ns: now
                        .exposed_ns
                        .checked_sub(before.exposed_ns)
                        .expect("snapshot order"),
                    overlapped_ns: now
                        .overlapped_ns
                        .checked_sub(before.overlapped_ns)
                        .expect("snapshot order"),
                })
                .collect(),
        }
    }
}

// Wire codec for stats snapshots: the TCP backend's child processes ship
// their counters back to the parent over the control socket.
impl WireEncode for RankCommStats {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.bytes.wire_encode(out);
        self.msgs.wire_encode(out);
        self.exposed_ns.wire_encode(out);
        self.overlapped_ns.wire_encode(out);
    }
}

impl WireDecode for RankCommStats {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            bytes: <[u64; NUM_CATEGORIES]>::wire_decode(r)?,
            msgs: <[u64; NUM_CATEGORIES]>::wire_decode(r)?,
            exposed_ns: u64::wire_decode(r)?,
            overlapped_ns: u64::wire_decode(r)?,
        })
    }
}

impl WireEncode for CommStats {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.per_rank.wire_encode(out);
    }
}

impl WireDecode for CommStats {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            per_rank: Vec::wire_decode(r)?,
        })
    }
}

impl std::fmt::Display for CommStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "comm volume: {} total, {} max/rank, {} msgs",
            dspgemm_util::stats::format_bytes(self.total_bytes()),
            dspgemm_util::stats::format_bytes(self.max_rank_bytes()),
            self.total_msgs()
        )?;
        for cat in CommCategory::all() {
            let b = self.bytes_in(cat);
            if b > 0 || self.msgs_in(cat) > 0 {
                writeln!(
                    f,
                    "  {:<9} {:>12}  ({} msgs)",
                    cat.name(),
                    dspgemm_util::stats::format_bytes(b),
                    self.msgs_in(cat)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_records_and_snapshots() {
        let m = Meter::new(2);
        m.record(0, CommCategory::P2p, 100);
        m.record(0, CommCategory::P2p, 50);
        m.record(1, CommCategory::Bcast, 10);
        let s = m.snapshot();
        assert_eq!(s.per_rank[0].bytes[CommCategory::P2p as usize], 150);
        assert_eq!(s.per_rank[0].msgs[CommCategory::P2p as usize], 2);
        assert_eq!(s.per_rank[1].bytes[CommCategory::Bcast as usize], 10);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.bytes_in(CommCategory::P2p), 150);
        assert_eq!(s.max_rank_bytes(), 150);
    }

    #[test]
    fn delta_since() {
        let m = Meter::new(1);
        m.record(0, CommCategory::Reduce, 5);
        let before = m.snapshot();
        m.record(0, CommCategory::Reduce, 7);
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.bytes_in(CommCategory::Reduce), 7);
        assert_eq!(d.msgs_in(CommCategory::Reduce), 1);
    }

    #[test]
    fn display_lists_active_categories() {
        let m = Meter::new(1);
        m.record(0, CommCategory::Alltoall, 2048);
        let text = m.snapshot().to_string();
        assert!(text.contains("alltoall"));
        assert!(!text.contains("gather"));
    }
}
