//! Communicators: point-to-point messaging and collective operations.

use crate::message::{Payload, Tag};
use crate::network::Endpoint;
use crate::request::{self, ProgressEntry, RankIo, Request};
use crate::stats::CommCategory;
use dspgemm_util::hash::mix64;
use dspgemm_util::{decode_from_slice, encode_to_vec, WireBytes, WireDecode, WireSize};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

/// A communicator: an ordered group of ranks with isolated message matching,
/// point-to-point operations and collectives — the moral equivalent of an
/// `MPI_Comm`.
///
/// Communicators follow the MPI SPMD contract: all members must call the same
/// sequence of collective operations on a communicator. Point-to-point tags
/// live in a per-communicator namespace, so traffic on a row communicator can
/// never be confused with traffic on the world communicator.
///
/// `Comm` is intentionally **not** `Send`: it belongs to its rank's thread,
/// just as an `MPI_Comm` belongs to its process.
pub struct Comm {
    io: RankIo,
    /// World rank of each group member, indexed by group rank.
    members: Arc<[usize]>,
    /// This rank's position within `members`.
    my_rank: usize,
    comm_id: u64,
    /// Sequence number for collective calls (isolates back-to-back
    /// collectives from one another).
    coll_seq: Cell<u64>,
    /// Sequence number for `split` calls (derives child communicator ids).
    split_seq: Cell<u64>,
}

/// World communicator id. Children derive theirs deterministically.
const WORLD_COMM_ID: u64 = 0x5747_1d00_c0a1_e5ce;

impl Comm {
    /// Builds the world communicator for one rank (runtime-internal).
    pub(crate) fn world(endpoint: Endpoint, size: usize) -> Self {
        let rank = endpoint.rank;
        Comm {
            io: RankIo::new(endpoint),
            members: (0..size).collect::<Vec<_>>().into(),
            my_rank: rank,
            comm_id: WORLD_COMM_ID,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }

    /// This rank's position within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of group member `group_rank`.
    #[inline]
    pub fn world_rank_of(&self, group_rank: usize) -> usize {
        self.members[group_rank]
    }

    fn next_coll_tag(&self, round: u64) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        Tag::internal((seq << 16) | round)
    }

    #[inline]
    fn coll_tag(base: Tag, round: u64) -> Tag {
        debug_assert!(round < (1 << 16));
        Tag(base.0 | round)
    }

    fn send_internal<T: Send + WireSize + 'static>(
        &self,
        dst: usize,
        tag: Tag,
        value: T,
        category: CommCategory,
        bytes: u64,
    ) {
        let dst_world = self.members[dst];
        let ep = self.io.endpoint.borrow();
        let payload = pack_payload(&ep, dst_world, value);
        ep.send_envelope(dst_world, self.comm_id, tag, payload, category, bytes);
    }

    fn recv_internal<T: Send + WireDecode + 'static>(&self, src: usize, tag: Tag) -> T {
        self.recv_internal_with(src, tag, true)
    }

    /// `expose = false` skips exposed-time metering: used by pure
    /// synchronization (the barrier), whose waiting is load-imbalance skew
    /// rather than communication cost.
    fn recv_internal_with<T: Send + WireDecode + 'static>(
        &self,
        src: usize,
        tag: Tag,
        expose: bool,
    ) -> T {
        let src_world = self.members[src];
        let (boxed, _sent_at, _blocked) =
            request::recv_match(&self.io, src_world, self.comm_id, tag, expose);
        downcast_payload(boxed, src, tag)
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Sends `value` to group rank `dst` under user `tag`.
    ///
    /// Sends are buffered (never block); matching follows MPI semantics:
    /// non-overtaking per (source, tag).
    pub fn send<T: Send + WireSize + 'static>(&self, dst: usize, tag: u64, value: T) {
        let bytes = value.wire_bytes();
        let _sp = dspgemm_obs::span("comm", "send").attr("bytes", bytes);
        self.send_internal(dst, Tag::user(tag), value, CommCategory::P2p, bytes);
    }

    /// Blocking receive of a `T` from group rank `src` under user `tag`.
    pub fn recv<T: Send + WireDecode + 'static>(&self, src: usize, tag: u64) -> T {
        let mut sp = dspgemm_obs::span("comm", "recv");
        let user_tag = Tag::user(tag);
        let src_world = self.members[src];
        let (boxed, _sent_at, blocked) =
            request::recv_match(&self.io, src_world, self.comm_id, user_tag, true);
        sp.set_attr(
            "exposed_ns",
            u64::try_from(blocked.as_nanos()).unwrap_or(u64::MAX),
        );
        downcast_payload(boxed, src, user_tag)
    }

    /// Combined send-to-`dst` / receive-from-`src` (deadlock-free, like
    /// `MPI_Sendrecv`). Used for Algorithm 1's transpose exchange, where
    /// process `(i, j)` swaps blocks with process `(j, i)`.
    ///
    /// Implemented in prepost-irecv form: the receive is posted before the
    /// send, so both directions of the exchange are in flight at once and
    /// the wait is pure arrival time.
    pub fn sendrecv<T: Send + WireSize + 'static, U: Send + WireDecode + 'static>(
        &self,
        dst: usize,
        send_value: T,
        src: usize,
        tag: u64,
    ) -> U {
        let recv = self.irecv::<U>(src, tag);
        self.send(dst, tag, send_value);
        recv.wait()
    }

    /// Zero-copy [`Comm::sendrecv`]: moves one `Arc` per direction instead
    /// of a packed value, so the payload itself is never copied in-process.
    /// The meter still charges the pointee's full packed size ([`WireSize`]
    /// is transparent over `Arc`), so logical communication volume is
    /// byte-identical to the clone-based path.
    pub fn sendrecv_shared<T: Send + Sync + WireSize + WireDecode + 'static>(
        &self,
        dst: usize,
        send_value: Arc<T>,
        src: usize,
        tag: u64,
    ) -> Arc<T> {
        self.sendrecv(dst, send_value, src, tag)
    }

    // ------------------------------------------------------------------
    // Nonblocking operations
    // ------------------------------------------------------------------

    /// Nonblocking send of `value` to group rank `dst` under user `tag`.
    ///
    /// Sends are buffered, so the operation completes at issue; the returned
    /// request exists for call-site symmetry with `MPI_Isend` and must still
    /// be waited (a no-op).
    pub fn isend<T: Send + WireSize + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
    ) -> Request<()> {
        self.send(dst, tag, value);
        Request::ready(self.io.clone(), (), "isend")
    }

    /// Zero-copy [`Comm::isend`]: moves an `Arc` handle, metered at the
    /// pointee's packed size.
    pub fn isend_shared<T: Send + Sync + WireSize + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: Arc<T>,
    ) -> Request<()> {
        self.isend(dst, tag, value)
    }

    /// Nonblocking receive of a `T` from group rank `src` under user `tag`.
    /// Complete with [`Request::wait`]; poll with [`Request::test`].
    pub fn irecv<T: Send + WireDecode + 'static>(&self, src: usize, tag: u64) -> Request<T> {
        let src_world = self.members[src];
        let user_tag = Tag::user(tag);
        Request::from_parts(
            self.io.clone(),
            vec![(src_world, self.comm_id, user_tag)],
            Box::new(move |mut payloads| {
                downcast_payload(payloads.pop().expect("one part"), src, user_tag)
            }),
            "irecv",
        )
    }

    /// Nonblocking zero-copy receive of an `Arc<T>` (pairs with
    /// [`Comm::isend_shared`] / [`Comm::sendrecv_shared`] senders).
    pub fn irecv_shared<T: Send + Sync + WireDecode + 'static>(
        &self,
        src: usize,
        tag: u64,
    ) -> Request<Arc<T>> {
        self.irecv(src, tag)
    }

    /// Nonblocking zero-copy broadcast: identical binomial tree, tag
    /// sequencing and byte metering to [`Comm::bcast_shared`], but issued
    /// immediately and completed later.
    ///
    /// The root performs its tree sends at issue. A non-root registers an
    /// arrival action with the rank's progress engine: when the parent's
    /// envelope is drained — inside *any* blocking or polling call on this
    /// rank, not just this request's `wait` — the payload is forwarded to
    /// the subtree children and the request becomes ready. This is what
    /// lets a pipelined schedule keep round `k + 1`'s panels flowing while
    /// every rank is busy multiplying round `k`.
    pub fn ibcast_shared<T: Send + Sync + WireSize + WireDecode + 'static>(
        &self,
        root: usize,
        value: Option<Arc<T>>,
    ) -> Request<Arc<T>> {
        let p = self.size();
        // Single-rank short-circuit: no tag, no channel slot, no metering —
        // identical to the blocking path's zero-overhead contract.
        if p == 1 {
            let v = value.expect("root must supply the broadcast value");
            return Request::ready(self.io.clone(), v, "ibcast_shared");
        }
        let tag = self.next_coll_tag(0);
        let vrank = (self.my_rank + p - root) % p;
        let (parent, children) = bcast_tree_shape(p, vrank);
        // Group-rank children translated to world ranks, preserving the
        // blocking tree's decreasing-mask send order.
        let child_worlds: Vec<usize> = children
            .iter()
            .map(|&cv| self.members[(cv + root) % p])
            .collect();
        match parent {
            None => {
                let v = value.expect("root must supply the broadcast value");
                let ep = self.io.endpoint.borrow();
                for &dst_world in &child_worlds {
                    let payload = pack_payload(&ep, dst_world, Arc::clone(&v));
                    ep.send_envelope(
                        dst_world,
                        self.comm_id,
                        tag,
                        payload,
                        CommCategory::Bcast,
                        v.wire_bytes(),
                    );
                }
                drop(ep);
                Request::ready(self.io.clone(), v, "ibcast_shared")
            }
            Some(parent_vrank) => {
                assert!(value.is_none(), "non-root rank passed a broadcast value");
                let parent_world = self.members[(parent_vrank + root) % p];
                type BcastSlot<T> = Rc<RefCell<Option<(Arc<T>, std::time::Instant)>>>;
                let slot: BcastSlot<T> = Rc::new(RefCell::new(None));
                let action_slot = Rc::clone(&slot);
                let action_io = self.io.clone();
                let comm_id = self.comm_id;
                let action = Box::new(
                    move |boxed: Box<dyn Any + Send>, sent_at: std::time::Instant| {
                        let v: Arc<T> = downcast_payload(boxed, parent_vrank, tag);
                        let ep = action_io.endpoint.borrow();
                        for &dst_world in &child_worlds {
                            let payload = pack_payload(&ep, dst_world, Arc::clone(&v));
                            ep.send_envelope(
                                dst_world,
                                comm_id,
                                tag,
                                payload,
                                CommCategory::Bcast,
                                v.wire_bytes(),
                            );
                        }
                        drop(ep);
                        *action_slot.borrow_mut() = Some((v, sent_at));
                    },
                );
                // The parent's envelope may already be buffered (a peer ran
                // ahead while this rank was blocked elsewhere): consume it
                // now, otherwise register for arrival.
                let buffered =
                    self.io
                        .endpoint
                        .borrow_mut()
                        .take_pending(parent_world, self.comm_id, tag);
                match buffered {
                    Some((payload, sent_at)) => action(payload, sent_at),
                    None => self.io.progress.borrow_mut().register(ProgressEntry {
                        src_world: parent_world,
                        comm_id: self.comm_id,
                        tag,
                        action,
                    }),
                }
                Request::from_slot(self.io.clone(), slot, "ibcast_shared")
            }
        }
    }

    /// Nonblocking personalized all-to-all: sends go out at issue (buffered),
    /// the `p - 1` receives complete at `wait`/`test`. Result layout and
    /// metering are identical to [`Comm::alltoallv`].
    pub fn ialltoallv<T: Send + WireSize + WireDecode + 'static>(
        &self,
        mut out: Vec<Vec<T>>,
    ) -> Request<Vec<Vec<T>>> {
        let p = self.size();
        assert_eq!(out.len(), p, "alltoallv needs one chunk per destination");
        let tag = self.next_coll_tag(0);
        let own = std::mem::take(&mut out[self.my_rank]);
        for (dst, chunk_slot) in out.iter_mut().enumerate() {
            if dst != self.my_rank {
                let chunk = std::mem::take(chunk_slot);
                let bytes = chunk.wire_bytes();
                self.send_internal(dst, tag, chunk, CommCategory::Alltoall, bytes);
            }
        }
        if p == 1 {
            return Request::ready(self.io.clone(), vec![own], "ialltoallv");
        }
        let my_rank = self.my_rank;
        let srcs: Vec<usize> = (0..p).filter(|&s| s != my_rank).collect();
        let parts: Vec<(usize, u64, Tag)> = srcs
            .iter()
            .map(|&s| (self.members[s], self.comm_id, tag))
            .collect();
        Request::from_parts(
            self.io.clone(),
            parts,
            Box::new(move |payloads| {
                let mut result: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
                result[my_rank] = Some(own);
                for (src, boxed) in srcs.into_iter().zip(payloads) {
                    result[src] = Some(downcast_payload(boxed, src, tag));
                }
                result
                    .into_iter()
                    .map(|o| o.expect("chunk from every source"))
                    .collect()
            }),
            "ialltoallv",
        )
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Synchronizes all ranks (dissemination barrier, `O(log p)` rounds).
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let _sp = dspgemm_obs::span("comm", "barrier");
        let base = self.next_coll_tag(0);
        let mut k = 1usize;
        let mut round = 0u64;
        while k < p {
            let dst = (self.my_rank + k) % p;
            let src = (self.my_rank + p - k) % p;
            let tag = Self::coll_tag(base, round);
            self.send_internal(dst, tag, (), CommCategory::Barrier, 0);
            let () = self.recv_internal_with(src, tag, false);
            k <<= 1;
            round += 1;
        }
    }

    /// Broadcasts a value from `root` to all ranks (binomial tree,
    /// `O(log p)` rounds). The root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value.
    ///
    /// Each forward along the tree deep-clones the payload; the clones are
    /// counted in the network's payload-clone meter (see
    /// [`crate::SimOutput::payload_clones`]). Hot paths that broadcast
    /// matrix blocks should use [`Comm::bcast_shared`] instead.
    pub fn bcast<T: Clone + Send + WireSize + WireDecode + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> T {
        self.bcast_impl(root, value, true)
    }

    fn bcast_impl<T: Clone + Send + WireSize + WireDecode + 'static>(
        &self,
        root: usize,
        value: Option<T>,
        count_clones: bool,
    ) -> T {
        self.bcast_tree(root, value, |v| {
            if count_clones {
                self.io.endpoint.borrow().record_payload_clone();
            }
            v.clone()
        })
    }

    /// Zero-copy broadcast: identical binomial tree and metering to
    /// [`Comm::bcast`], but the payload moves as one `Arc<T>` per receiver —
    /// a reference-count increment instead of a deep clone. `T` needs no
    /// `Clone` bound, which statically guarantees this collective cannot
    /// copy the payload.
    ///
    /// The meter charges each tree edge the pointee's packed size, so the
    /// recorded communication volume (the paper's Fig. 7/12 metric) is
    /// byte-identical to the clone-based path; see `DESIGN.md` on what the
    /// simulator meters versus what it moves.
    pub fn bcast_shared<T: Send + Sync + WireSize + WireDecode + 'static>(
        &self,
        root: usize,
        value: Option<Arc<T>>,
    ) -> Arc<T> {
        self.bcast_tree(root, value, Arc::clone)
    }

    /// The one binomial broadcast tree behind both [`Comm::bcast`] flavors.
    /// `duplicate` produces the copy forwarded along each tree edge — a deep
    /// clone on the legacy path, an `Arc` refcount increment on the shared
    /// path — so tags, rounds and metering cannot drift apart between them.
    fn bcast_tree<T: Send + WireSize + WireDecode + 'static>(
        &self,
        root: usize,
        value: Option<T>,
        mut duplicate: impl FnMut(&T) -> T,
    ) -> T {
        let p = self.size();
        // Single-rank short-circuit: no tag, no channel slot, no metering —
        // a 1×1 grid pays zero communication overhead.
        if p == 1 {
            return value.expect("root must supply the broadcast value");
        }
        let mut sp = dspgemm_obs::span("comm", "bcast");
        let tag = self.next_coll_tag(0);
        let vrank = (self.my_rank + p - root) % p;
        // One tree-shape source for the blocking and nonblocking broadcasts:
        // edges, send order and metering cannot drift apart.
        let (parent, children) = bcast_tree_shape(p, vrank);
        let v: T = match parent {
            None => value.expect("root must supply the broadcast value"),
            Some(parent_vrank) => {
                assert!(value.is_none(), "non-root rank passed a broadcast value");
                self.recv_internal((parent_vrank + root) % p, tag)
            }
        };
        if dspgemm_obs::enabled() {
            sp.set_attr("bytes", v.wire_bytes());
        }
        for &child_vrank in &children {
            let dst = (child_vrank + root) % p;
            let bytes = v.wire_bytes();
            self.send_internal(dst, tag, duplicate(&v), CommCategory::Bcast, bytes);
        }
        v
    }

    /// Gathers one value per rank at `root` (group-rank order). Returns
    /// `Some(values)` at the root, `None` elsewhere.
    pub fn gather<T: Send + WireSize + WireDecode + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Option<Vec<T>> {
        let _sp = dspgemm_obs::span("comm", "gather");
        let tag = self.next_coll_tag(0);
        if self.my_rank == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_internal(src, tag));
                }
            }
            Some(out.into_iter().map(|o| o.expect("gathered")).collect())
        } else {
            let bytes = value.wire_bytes();
            self.send_internal(root, tag, value, CommCategory::Gather, bytes);
            None
        }
    }

    /// Allgather: every rank contributes one value and receives the vector of
    /// all values in group-rank order (ring algorithm, `p - 1` rounds).
    ///
    /// Each ring round forwards `value.clone()`; payload-sized values should
    /// use [`Comm::allgather_shared`], which moves `Arc` handles instead.
    pub fn allgather<T: Clone + Send + WireSize + WireDecode + 'static>(&self, value: T) -> Vec<T> {
        self.allgather_ring(value, T::clone)
    }

    /// Zero-copy allgather: the same ring algorithm and metering as
    /// [`Comm::allgather`], but every forward moves one `Arc<T>` handle — a
    /// refcount increment, never a deep clone. `T` needs no `Clone` bound,
    /// which statically guarantees this collective cannot copy the payload.
    /// Each ring edge is metered at the pointee's packed size, so recorded
    /// wire volume is byte-identical to the clone-based path.
    pub fn allgather_shared<T: Send + Sync + WireSize + WireDecode + 'static>(
        &self,
        value: Arc<T>,
    ) -> Vec<Arc<T>> {
        self.allgather_ring(value, Arc::clone)
    }

    /// The one ring behind both [`Comm::allgather`] flavors. `duplicate`
    /// produces the copy forwarded each round — a deep clone on the legacy
    /// path, an `Arc` refcount increment on the shared path — so tags,
    /// rounds and metering cannot drift apart between them.
    fn allgather_ring<T: Send + WireSize + WireDecode + 'static>(
        &self,
        value: T,
        mut duplicate: impl FnMut(&T) -> T,
    ) -> Vec<T> {
        let p = self.size();
        let base = self.next_coll_tag(0);
        let mut slots: Vec<Option<T>> = (0..p).map(|_| None).collect();
        slots[self.my_rank] = Some(value);
        if p == 1 {
            return slots.into_iter().map(|o| o.expect("own value")).collect();
        }
        let mut sp = dspgemm_obs::span("comm", "allgather");
        let mut sent_bytes = 0u64;
        let right = (self.my_rank + 1) % p;
        let left = (self.my_rank + p - 1) % p;
        for r in 0..p - 1 {
            let tag = Self::coll_tag(base, r as u64);
            // Forward the value that originated at (rank - r), receive the one
            // that originated at (rank - r - 1).
            let send_origin = (self.my_rank + p - r) % p;
            let recv_origin = (self.my_rank + p - r - 1) % p;
            let v = duplicate(slots[send_origin].as_ref().expect("value to forward"));
            let bytes = v.wire_bytes();
            sent_bytes += bytes;
            self.send_internal(right, tag, v, CommCategory::Gather, bytes);
            slots[recv_origin] = Some(self.recv_internal(left, tag));
        }
        sp.set_attr("bytes", sent_bytes);
        slots
            .into_iter()
            .map(|o| o.expect("allgather slot"))
            .collect()
    }

    /// Personalized all-to-all: `out[dst]` is delivered to rank `dst`;
    /// returns the received chunks indexed by source rank (own chunk is moved
    /// through locally without touching the meter, matching MPI self-sends
    /// being free in practice).
    pub fn alltoallv<T: Send + WireSize + WireDecode + 'static>(
        &self,
        mut out: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let p = self.size();
        assert_eq!(out.len(), p, "alltoallv needs one chunk per destination");
        let mut sp = dspgemm_obs::span("comm", "alltoallv");
        let mut sent_bytes = 0u64;
        let tag = self.next_coll_tag(0);
        let mut result: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        // Keep own chunk.
        result[self.my_rank] = Some(std::mem::take(&mut out[self.my_rank]));
        // Send all chunks (buffered; cannot deadlock), then receive.
        for (dst, chunk_slot) in out.iter_mut().enumerate() {
            if dst != self.my_rank {
                let chunk = std::mem::take(chunk_slot);
                let bytes = chunk.wire_bytes();
                sent_bytes += bytes;
                self.send_internal(dst, tag, chunk, CommCategory::Alltoall, bytes);
            }
        }
        sp.set_attr("bytes", sent_bytes);
        for (src, slot) in result.iter_mut().enumerate() {
            if src != self.my_rank {
                *slot = Some(self.recv_internal(src, tag));
            }
        }
        result.into_iter().map(|o| o.expect("chunk")).collect()
    }

    /// Reduces values to `root` with a binary operator (binomial tree,
    /// `O(log p)` rounds). Returns `Some(total)` at the root, `None`
    /// elsewhere.
    ///
    /// `op` must be associative; the evaluation order is the binomial-tree
    /// order, so results on floats may differ from sequential summation. This
    /// is also the **sparse merge-reduction** primitive of Algorithm 1: with
    /// `op = merge-add over DCSR blocks` it implements the paper's
    /// "(log p)-round parallel reduction … for aggregation".
    pub fn reduce<T, F>(&self, root: usize, value: T, mut op: F) -> Option<T>
    where
        T: Send + WireSize + WireDecode + 'static,
        F: FnMut(T, T) -> T,
    {
        let p = self.size();
        let tag = self.next_coll_tag(0);
        if p == 1 {
            return Some(value);
        }
        let mut sp = dspgemm_obs::span("comm", "reduce");
        let vrank = (self.my_rank + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask == 0 {
                let peer_v = vrank | mask;
                if peer_v < p {
                    let src = (peer_v + root) % p;
                    let other: T = self.recv_internal(src, tag);
                    acc = op(acc, other);
                }
            } else {
                let peer_v = vrank & !mask;
                let dst = (peer_v + root) % p;
                let bytes = acc.wire_bytes();
                sp.set_attr("bytes", bytes);
                self.send_internal(dst, tag, acc, CommCategory::Reduce, bytes);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce: reduce to rank 0, then broadcast the result.
    ///
    /// The broadcast-back leg is exempt from payload-clone counting: the
    /// remaining hot-path uses of `allreduce` are O(1)-size control values
    /// (global nnz agreement, elision votes), not operand payloads. Vector
    /// aggregations that used to run through `allreduce` (SpMV segments, the
    /// general algorithm's filter vector) use `reduce` + [`Comm::bcast_shared`].
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + WireSize + WireDecode + 'static,
        F: FnMut(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.bcast_impl(0, reduced, false)
    }

    /// Exclusive prefix "scan": rank `r` receives `op` folded over the values
    /// of ranks `0..r`; rank 0 receives `identity`. Linear chain (used only
    /// in setup paths, never in inner loops).
    pub fn exscan<T, F>(&self, value: T, identity: T, mut op: F) -> T
    where
        T: Clone + Send + WireSize + WireDecode + 'static,
        F: FnMut(T, T) -> T,
    {
        let p = self.size();
        let tag = self.next_coll_tag(0);
        let prefix = if self.my_rank == 0 {
            identity
        } else {
            self.recv_internal(self.my_rank - 1, tag)
        };
        if self.my_rank + 1 < p {
            let next = op(prefix.clone(), value);
            let bytes = next.wire_bytes();
            self.send_internal(self.my_rank + 1, tag, next, CommCategory::Reduce, bytes);
        }
        prefix
    }

    /// Splits the communicator into sub-communicators by `color`; ranks with
    /// equal color form a group ordered by `(key, old rank)`. Semantics of
    /// `MPI_Comm_split`. Used to build the row and column communicators of
    /// the 2D process grid.
    pub fn split(&self, color: u64, key: u64) -> Comm {
        let split_seq = self.split_seq.get();
        self.split_seq.set(split_seq + 1);
        // Everyone learns everyone's (color, key).
        let all: Vec<(u64, u64)> = self.allgather((color, key));
        let mut group: Vec<(u64, usize)> = all
            .iter()
            .enumerate()
            .filter(|(_, (c, _))| *c == color)
            .map(|(old_rank, (_, k))| (*k, old_rank))
            .collect();
        group.sort_unstable();
        let members: Vec<usize> = group
            .iter()
            .map(|&(_, old_rank)| self.members[old_rank])
            .collect();
        let my_world = self.members[self.my_rank];
        let my_rank = members
            .iter()
            .position(|&w| w == my_world)
            .expect("caller must be in its own color group");
        // Deterministically agreed child id: same parent, same split call,
        // same color on every member.
        let comm_id = mix64(self.comm_id ^ mix64(split_seq).rotate_left(17) ^ mix64(color));
        Comm {
            io: self.io.clone(),
            members: members.into(),
            my_rank,
            comm_id,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }

    /// Poisons the network after a local panic so peers blocked in `recv`
    /// fail fast instead of deadlocking (runtime-internal).
    pub(crate) fn poison_network(&self) {
        self.io.endpoint.borrow().poison_all();
    }

    // ------------------------------------------------------------------
    // Fault injection & recovery (see `crate::fault`)
    // ------------------------------------------------------------------

    /// Arms a simulated crash of *this* rank `after_sends` sends from now
    /// (1 = the very next send). On trigger the rank broadcasts `Failed`
    /// markers and unwinds with [`crate::CommError::Crashed`]; peers'
    /// drains surface [`crate::CommError::PeerFailed`]. Counted across all
    /// of this rank's communicators. Re-arming replaces a prior trigger.
    pub fn arm_crash(&self, after_sends: u64) {
        self.io.endpoint.borrow().arm_crash(after_sends);
    }

    /// Disarms a crash previously armed with [`Comm::arm_crash`] (or
    /// scheduled by the run's [`crate::FaultPlan`]) if it has not fired.
    pub fn disarm_crash(&self) {
        self.io.endpoint.borrow().disarm_crash();
    }

    /// Whether this rank's thread already simulated a crash (true on the
    /// thread that caught [`crate::CommError::Crashed`] and is rejoining
    /// as the replacement rank).
    pub fn has_crashed(&self) -> bool {
        self.io.endpoint.borrow().has_crashed()
    }

    /// Peers whose failure this rank has detected (drained `Failed`
    /// markers) since the last [`Comm::take_failed_ranks`].
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.io.endpoint.borrow().failed_ranks()
    }

    /// Drains the detected-failure set. Recovery protocols consume it once
    /// per incident so a later failure starts from a clean slate.
    pub fn take_failed_ranks(&self) -> Vec<usize> {
        self.io.endpoint.borrow().take_failed_ranks()
    }

    /// Marker-to-detection latency (ns) of this rank's most recent
    /// [`crate::CommError::PeerFailed`] — how long the failure marker sat
    /// in the inbox before a drain surfaced it.
    pub fn last_failure_detect_ns(&self) -> u64 {
        self.io.endpoint.borrow().last_detect_ns()
    }

    /// Current recovery epoch of this rank (0 until a recovery runs).
    pub fn recovery_epoch(&self) -> u64 {
        self.io.endpoint.borrow().recovery_epoch()
    }

    /// Network-wide count of transient send retries injected by the fault
    /// plan (never part of [`crate::CommStats`] — retries model wasted
    /// time, not logical wire volume).
    pub fn transient_retries(&self) -> u64 {
        self.io.endpoint.borrow().transient_retries_total()
    }

    /// Advances this rank into the next recovery epoch after a detected
    /// failure: purges buffered traffic of aborted rounds, clears the
    /// progress engine (pending actions and posted receives of the aborted
    /// round must never fire again), and resets this communicator's
    /// collective sequence so post-recovery collectives match across ranks
    /// that aborted at different points. **Local**; every rank of the job
    /// must call it (followed by a barrier) before communicating again, and
    /// every *other* live communicator of this rank must be resynced with
    /// [`Comm::reset_collective_seq`]. Returns the new epoch.
    ///
    /// Epoch hygiene is what makes the resets safe: envelopes are stamped
    /// with the sender's epoch and matched epoch-exactly, so a straggler
    /// from the aborted round can never satisfy a post-recovery receive
    /// even though sequence numbers restart.
    pub fn advance_recovery_epoch(&self) -> u64 {
        let epoch = self.io.endpoint.borrow_mut().advance_epoch();
        self.io.progress.borrow_mut().clear();
        self.coll_seq.set(0);
        epoch
    }

    /// Resets this communicator's collective sequence number to zero.
    /// Companion of [`Comm::advance_recovery_epoch`] for the *other*
    /// communicators sharing the rank (e.g. a grid's row/column splits):
    /// ranks abort an in-flight round at different collective positions,
    /// so after an epoch advance every communicator restarts its sequence
    /// in lockstep. Split sequence numbers are deliberately *not* reset —
    /// communicator ids derived by future splits must stay unique.
    pub fn reset_collective_seq(&self) {
        self.coll_seq.set(0);
    }

    /// Snapshot of the *whole network's* communication counters — all ranks,
    /// all categories. Taken between synchronization points (e.g. around a
    /// barrier-fenced measurement region) the delta of two snapshots is the
    /// exact traffic of that region. Intended for benchmark instrumentation.
    pub fn comm_stats(&self) -> crate::stats::CommStats {
        self.io.endpoint.borrow().stats_snapshot()
    }

    /// Network-wide count of payload deep-clones performed by clone-based
    /// collectives so far (the clone-counting test hook). Fenced by barriers,
    /// the delta of two reads proves a region moved payloads zero-copy.
    pub fn payload_clones(&self) -> u64 {
        self.io.endpoint.borrow().payload_clones()
    }

    /// Duplicates the communicator with an isolated tag namespace
    /// (`MPI_Comm_dup`): same group, new communicator id.
    pub fn dup(&self) -> Comm {
        let split_seq = self.split_seq.get();
        self.split_seq.set(split_seq + 1);
        let comm_id = mix64(self.comm_id ^ mix64(split_seq).rotate_left(29));
        Comm {
            io: self.io.clone(),
            members: Arc::clone(&self.members),
            my_rank: self.my_rank,
            comm_id,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }
}

/// Packs a value for delivery to `dst_world`: remote peers of a real-wire
/// transport get the wire-encoded bytes (one serialization per
/// destination), everything else moves the typed value by pointer — the
/// simulator's zero-copy contract, and the TCP backend's self-send
/// short-circuit.
fn pack_payload<T: Send + WireSize + 'static>(
    ep: &Endpoint,
    dst_world: usize,
    value: T,
) -> Payload {
    if ep.encodes_to(dst_world) {
        Payload::Value(Box::new(WireBytes(encode_to_vec(&value))))
    } else {
        Payload::Value(Box::new(value))
    }
}

/// Downcasts a received payload, with the same diagnostic as the blocking
/// receive path on type mismatch. A payload that arrived over a real wire
/// is a [`WireBytes`] buffer instead of the typed value; it is decoded
/// here, at the matched receive — the one place the expected type is known.
fn downcast_payload<T: Send + WireDecode + 'static>(
    boxed: Box<dyn Any + Send>,
    src: usize,
    tag: Tag,
) -> T {
    match boxed.downcast::<T>() {
        Ok(v) => *v,
        Err(boxed) => match boxed.downcast::<WireBytes>() {
            Ok(bytes) => decode_from_slice::<T>(&bytes.0).unwrap_or_else(|e| {
                panic!(
                    "wire decode failed receiving from rank {src} tag {tag:?} as {}: {e}",
                    std::any::type_name::<T>()
                )
            }),
            Err(_) => panic!(
                "type mismatch receiving from rank {src} tag {tag:?}: expected {}",
                std::any::type_name::<T>()
            ),
        },
    }
}

/// Shape of the binomial broadcast tree at virtual rank `vrank` in a group
/// of `p`: the parent (None at the root) and the children in the blocking
/// tree's decreasing-mask send order. Extracted from `bcast_tree` so the
/// nonblocking broadcast reproduces the exact same edges, order and
/// metering.
fn bcast_tree_shape(p: usize, vrank: usize) -> (Option<usize>, Vec<usize>) {
    let mut mask = 1usize;
    let mut parent = None;
    while mask < p {
        if vrank & mask != 0 {
            parent = Some(vrank - mask);
            break;
        }
        mask <<= 1;
    }
    let mut children = Vec::new();
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            children.push(vrank + mask);
        }
        mask >>= 1;
    }
    (parent, children)
}
