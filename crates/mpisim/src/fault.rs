//! Deterministic fault injection and the recoverable failure surface.
//!
//! The simulator's historical failure semantics is *fail-stop*: a panicking
//! rank poisons every inbox and peers die in their own panics. That models
//! "the job is lost" — useless for recovery protocols. This module adds a
//! second, *recoverable* failure mode driven by a seeded [`FaultPlan`]:
//!
//! * **Crashes** — a chosen rank stops before its k-th send (absolute, or
//!   armed mid-run via `Comm::arm_crash`), broadcasts a `Failed` marker to
//!   every peer, and unwinds with [`CommError::Crashed`]. Peers that drain
//!   the marker unwind with [`CommError::PeerFailed`] instead of a plain
//!   panic, so a harness can [`catch_comm`] the error, run a recovery
//!   protocol, and resume.
//! * **Delay storms** — a deterministic, seed-derived subset of sends
//!   sleeps a bounded jitter before delivery. Message *order between a
//!   pair* is unchanged (channels are FIFO); only interleaving across
//!   pairs moves, which is exactly the nondeterminism a real fabric has.
//! * **Transient drops** — a seed-derived subset of sends is "dropped and
//!   retried" a fixed number of times before delivering. Retries are
//!   counted on the meter (never in [`crate::CommStats`], whose
//!   byte-parity across arms the ablations assert) and back off
//!   deterministically.
//!
//! Everything is a pure function of `(seed, rank, operation index)`, so a
//! faulty run is exactly reproducible — the property the `repro faults`
//! ablation's bit-identity asserts rely on.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe, UnwindSafe};
use std::time::Duration;

/// A typed communication failure, surfaced to harnesses via [`catch_comm`].
///
/// Internally these travel as panic payloads: the collective call tree is
/// deep and infallible by signature, so the error unwinds to the nearest
/// [`catch_comm`] (batch granularity in the engine) instead of threading
/// `Result` through every send. An uncaught `CommError` behaves like any
/// panic: the runtime poisons the network and the job fails fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank failed; the in-flight round on this rank was aborted.
    /// Survivors should run a recovery protocol before communicating again.
    PeerFailed {
        /// World rank of the failed peer.
        rank: usize,
    },
    /// *This* rank was chosen by the fault plan to crash. The harness's
    /// rank closure can catch this, rejoin as the replacement rank, and
    /// rebuild state from its peers.
    Crashed {
        /// World rank that crashed (the caller's own rank).
        rank: usize,
    },
    /// A deadline wait elapsed with the operation still incomplete. The
    /// operation is *still in flight* — the caller may retry the wait —
    /// which is what distinguishes a slow peer from a dead one.
    Timeout {
        /// How long the caller was blocked before giving up.
        waited: Duration,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
            CommError::Crashed { rank } => write!(f, "rank {rank} crashed (fault injection)"),
            CommError::Timeout { waited } => write!(f, "communication timed out after {waited:?}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Runs `f`, converting an unwinding [`CommError`] into `Err`. Panics that
/// are *not* `CommError`s (genuine bugs) are re-raised unchanged, so
/// fail-stop semantics and test assertions keep working through this.
pub fn catch_comm<R>(f: impl FnOnce() -> R + UnwindSafe) -> Result<R, CommError> {
    match catch_unwind(f) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<CommError>() {
            Ok(err) => Err(*err),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// [`catch_comm`] without the `UnwindSafe` bound, for closures that borrow
/// engine state mutably. The caller asserts that the borrowed state is left
/// consistent-enough on unwind for its own recovery path (the engine's
/// rollback discards and rebuilds everything the aborted batch touched).
pub fn catch_comm_mut<R>(f: impl FnOnce() -> R) -> Result<R, CommError> {
    catch_comm(AssertUnwindSafe(f))
}

/// Deterministic jitter schedule: every `every`-th eligible send (selected
/// by hash, not stride) sleeps up to `max_micros` before delivering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelaySpec {
    /// Expected selection period (a send is delayed with probability
    /// `1/every`, chosen by seeded hash).
    pub every: u64,
    /// Upper bound on the injected sleep, in microseconds.
    pub max_micros: u64,
}

/// Deterministic transient-failure schedule: selected sends are dropped
/// and retried `retries` times (with a deterministic backoff) before the
/// delivery that sticks. Bytes are metered once — the retries model wasted
/// *time*, not extra application wire volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientSpec {
    /// Expected selection period (hash-chosen, like [`DelaySpec::every`]).
    pub every: u64,
    /// How many failed attempts precede the successful delivery.
    pub retries: u32,
    /// Sleep between attempts, in microseconds.
    pub backoff_micros: u64,
}

/// A seeded, deterministic fault schedule for one simulated run.
///
/// Build one with the fluent methods and hand it to
/// [`crate::run_with_faults`]. The same plan against the same program
/// produces the same fault sequence, byte counts, and (for a deterministic
/// program) the same results — fault runs are replayable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every per-send selection hash.
    pub seed: u64,
    /// Crash `rank` immediately before its `k`-th send (1-based, counted
    /// across all communicators). `None` injects no crash at start; a
    /// crash can still be armed mid-run via `Comm::arm_crash`.
    pub crash: Option<(usize, u64)>,
    /// Deterministic delay jitter applied to every rank's sends.
    pub delay: Option<DelaySpec>,
    /// Deterministic drop-then-retry schedule applied to every rank's sends.
    pub transient: Option<TransientSpec>,
}

impl FaultPlan {
    /// A plan with no faults scheduled (crashes may still be armed at
    /// runtime); `seed` drives any schedule added later.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Crashes `rank` immediately before its `k`-th send (1-based).
    pub fn crash_before_send(mut self, rank: usize, k: u64) -> Self {
        assert!(k >= 1, "send indices are 1-based");
        self.crash = Some((rank, k));
        self
    }

    /// Adds deterministic delay jitter: roughly one in `every` sends
    /// sleeps up to `max_micros` microseconds.
    pub fn delay_storm(mut self, every: u64, max_micros: u64) -> Self {
        assert!(every >= 1);
        self.delay = Some(DelaySpec { every, max_micros });
        self
    }

    /// Adds deterministic transient send failures: roughly one in `every`
    /// sends fails `retries` times (backing off `backoff_micros` between
    /// attempts) before delivering.
    pub fn transient_drops(mut self, every: u64, retries: u32, backoff_micros: u64) -> Self {
        assert!(every >= 1);
        self.transient = Some(TransientSpec {
            every,
            retries,
            backoff_micros,
        });
        self
    }

    /// Whether this plan injects anything at all by itself.
    pub fn is_empty(&self) -> bool {
        self.crash.is_none() && self.delay.is_none() && self.transient.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_comm_converts_comm_errors_only() {
        let err = catch_comm(|| std::panic::panic_any(CommError::PeerFailed { rank: 3 }));
        assert_eq!(err, Err(CommError::PeerFailed { rank: 3 }));
        let ok = catch_comm(|| 7u32);
        assert_eq!(ok, Ok(7));
        // A non-CommError panic passes through untouched.
        let passthrough = catch_unwind(|| {
            let _ = catch_comm(|| panic!("plain bug"));
        });
        assert!(passthrough.is_err());
    }

    #[test]
    fn plan_builders_compose() {
        let plan = FaultPlan::new(42)
            .crash_before_send(1, 10)
            .delay_storm(3, 50)
            .transient_drops(5, 2, 10);
        assert_eq!(plan.crash, Some((1, 10)));
        assert_eq!(
            plan.delay,
            Some(DelaySpec {
                every: 3,
                max_micros: 50
            })
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(42).is_empty());
    }
}
