//! Real TCP transport: ranks as OS processes over a localhost socket mesh
//! (feature `tcp-transport`).
//!
//! The simulator runs ranks as threads that move payloads by pointer. This
//! backend runs the *same* communicator layer — tag/communicator matching,
//! epochs, the nonblocking progress engine — with ranks as separate OS
//! processes exchanging length-prefixed frames over localhost TCP. Payloads
//! cross the wire through the [`dspgemm_util::WireEncode`] /
//! [`dspgemm_util::WireDecode`] codec, serialized once per destination at
//! the typed layer ([`dspgemm_util::WireBytes`]) and decoded at the matched
//! receive.
//!
//! ## Topology
//! One duplex connection per unordered rank pair: rank `r` listens, dials
//! every rank `s < r` (announcing itself with a `HELLO` frame), and accepts
//! from every rank `s > r`. Dialing before accepting cannot deadlock: the
//! kernel completes handshakes into the listener backlog without an
//! `accept` call. Per-peer reader threads parse frames into envelopes
//! and feed the rank's ordinary channel inbox, so everything above
//! [`crate::Comm`]'s transport seam is byte-for-byte the simulator's code.
//!
//! ## Bootstrap
//! [`run_tcp`] is `fork`-free and `unsafe`-free: the parent re-executes its
//! own binary (`std::env::current_exe`) once per rank with the rank
//! identity in environment variables, and a localhost *control* socket
//! carries the address exchange and the final results. A test re-executes
//! itself filtered to exactly one test name ([`Reexec::Test`]); a
//! deterministic CLI re-executes its own argv ([`Reexec::SameArgv`]).
//!
//! ## Failure detection
//! A killed peer closes its sockets; each survivor's reader thread sees the
//! broken stream and synthesizes a failure marker, which the screening
//! logic raises as [`crate::CommError::PeerFailed`] from whatever blocking
//! drain or [`crate::Request::wait_deadline`] poll the rank is in — the
//! same typed error the simulator's fault injection produces. Writes to a
//! dead peer surface the same way.
//!
//! ## Metering
//! Bytes are metered on the sender at the *logical*
//! [`WireSize`](dspgemm_util::WireSize) cost,
//! exactly like the simulator — wire-volume parity across backends holds by
//! construction, and the parity suite asserts it.

use crate::comm::Comm;
use crate::fault::FaultPlan;
use crate::message::{Envelope, Payload, Tag};
use crate::network::Endpoint;
use crate::stats::{CommStats, Meter, RankCommStats};
use crate::transport::{PeerGone, Transport};
use crossbeam::channel::{unbounded, Sender};
use dspgemm_util::{decode_from_slice, encode_to_vec, WireBytes, WireDecode, WireEncode};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable carrying the child's world rank.
const ENV_RANK: &str = "DSPGEMM_TCP_RANK";
/// Environment variable carrying the world size.
const ENV_WORLD: &str = "DSPGEMM_TCP_WORLD";
/// Environment variable carrying the parent's control-socket address.
const ENV_CONTROL: &str = "DSPGEMM_TCP_CONTROL";
/// Environment variable carrying the failure-detection deadline in ms.
const ENV_DETECT_MS: &str = "DSPGEMM_TCP_DETECT_MS";

/// Frame kinds on the data mesh. A frame is `kind: u8` followed by
/// kind-specific fields; all integers little-endian via the wire codec.
mod frame {
    /// Mesh handshake: `rank: u64`. First frame on a dialed connection.
    pub const HELLO: u8 = 1;
    /// A message envelope: `comm_id: u64, tag: u64, epoch: u64,
    /// len: u64, payload: [u8; len]`.
    pub const VALUE: u8 = 2;
    /// Sender panicked: `epoch: u64`. Receivers fail fast.
    pub const POISON: u8 = 3;
    /// Simulated-crash marker: `epoch: u64, rank: u64`.
    pub const FAILED: u8 = 4;
    /// Orderly goodbye: no fields. The reader thread exits without
    /// synthesizing a failure.
    pub const FIN: u8 = 5;
}

/// Returns `true` when this process is a [`run_tcp`] child (rank process).
///
/// A program using [`Reexec::SameArgv`] must call [`run_tcp`] on the same
/// code path in the child as in the parent; this lets it skip any
/// parent-only setup (argument parsing side effects, banner printing).
pub fn is_child() -> bool {
    std::env::var_os(ENV_RANK).is_some()
}

/// World size this child process was spawned for, or `None` in a parent.
///
/// A [`Reexec::SameArgv`] program that launches TCP jobs at several world
/// sizes uses this to route a child to the matching [`run_tcp`] call site
/// (and skip the others — each child belongs to exactly one job).
pub fn child_world() -> Option<usize> {
    std::env::var(ENV_WORLD).ok()?.parse().ok()
}

/// The failure-detection budget [`run_tcp`] was configured with, readable
/// from rank code on both backends' child processes (falls back to the
/// default when unset, e.g. under the simulator).
pub fn detect_deadline() -> Duration {
    std::env::var(ENV_DETECT_MS)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_DETECT)
}

/// Builds the libtest `--exact` filter for a test function: the test's
/// module path *within the test crate* plus the function name.
///
/// `module_path!()` inside an integration test includes the crate name as
/// its first segment, which libtest filters do not use — this strips it.
pub fn test_path(module_path: &str, fn_name: &str) -> String {
    match module_path.split_once("::") {
        Some((_, rest)) => format!("{rest}::{fn_name}"),
        None => fn_name.to_string(),
    }
}

/// How a [`run_tcp`] child process re-enters the calling code.
#[derive(Debug, Clone)]
pub enum Reexec {
    /// Re-execute the current test binary filtered (`--exact`) to the one
    /// named test, which must call [`run_tcp`] *before* any other
    /// side-effecting work (the child exits inside the call). Build the
    /// path with [`test_path`]`(module_path!(), "test_fn_name")`.
    Test(String),
    /// Re-execute the current binary with the same arguments. The program
    /// must be deterministic in its argv and reach the same [`run_tcp`]
    /// call site; use [`is_child`] to skip parent-only side effects.
    SameArgv,
}

const DEFAULT_DEADLINE: Duration = Duration::from_secs(120);
const DEFAULT_DETECT: Duration = Duration::from_secs(5);

/// Configuration for a [`run_tcp`] job.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Number of ranks (child processes).
    pub p: usize,
    /// Overall parent-side deadline: bootstrap plus the full job. Past it
    /// the parent kills all children and panics (deadlock watchdog).
    pub deadline: Duration,
    /// Failure-detection budget advertised to ranks via [`detect_deadline`]
    /// (for `wait_deadline` loops in recovery code).
    pub detect: Duration,
    /// When `true`, a child that dies without reporting a result yields
    /// `None` in [`TcpOutput::results`] instead of panicking the parent —
    /// for tests that kill ranks on purpose.
    pub expect_failures: bool,
}

impl TcpConfig {
    /// Defaults for `p` ranks: 120 s job deadline, 5 s detection budget,
    /// failures fatal.
    pub fn new(p: usize) -> Self {
        Self {
            p,
            deadline: DEFAULT_DEADLINE,
            detect: DEFAULT_DETECT,
            expect_failures: false,
        }
    }

    /// Tolerate ranks dying without a result (see
    /// [`TcpConfig::expect_failures`]).
    pub fn expect_failures(mut self) -> Self {
        self.expect_failures = true;
        self
    }
}

/// Result of a [`run_tcp`] job.
#[derive(Debug)]
pub struct TcpOutput<R> {
    /// Per-rank return values; `None` for ranks that died without
    /// reporting (only with [`TcpConfig::expect_failures`]).
    pub results: Vec<Option<R>>,
    /// Merged communication counters: rank `r`'s row comes from rank `r`'s
    /// own process. Ranks that died contribute an empty row.
    pub stats: CommStats,
    /// Total frames written to the data mesh across all ranks. Zero for
    /// `p = 1`: a rank's sends to itself short-circuit through its local
    /// inbox and never touch a socket.
    pub frames: u64,
}

// ---------------------------------------------------------------------------
// The link: outgoing half of a rank process's connection to the mesh.
// ---------------------------------------------------------------------------

/// Outgoing half of a TCP rank's world: a loopback channel to its own inbox
/// plus one stream per remote peer.
pub(crate) struct TcpLink {
    rank: usize,
    /// Self-sends bypass the sockets entirely (same zero-copy pointer move
    /// as the simulator).
    loopback: Sender<Envelope>,
    /// Write halves, indexed by world rank; `None` at `self.rank`.
    peers: Vec<Option<TcpStream>>,
    /// Data-mesh frames written by this process (socket-touching sends).
    frames: Arc<AtomicU64>,
}

impl TcpLink {
    /// World size.
    pub(crate) fn world(&self) -> usize {
        self.peers.len()
    }

    /// Whether `dst` is this rank itself (loopback, never encoded).
    pub(crate) fn is_self(&self, dst: usize) -> bool {
        dst == self.rank
    }

    /// Delivers an envelope: loopback for self, a `VALUE`/`POISON`/`FAILED`
    /// frame for remote peers. A broken stream (peer process dead) reports
    /// [`PeerGone`].
    pub(crate) fn deliver(&self, dst: usize, env: Envelope) -> Result<(), PeerGone> {
        if self.is_self(dst) {
            return self.loopback.send(env).map_err(|_| PeerGone);
        }
        let mut buf = Vec::new();
        match env.payload {
            Payload::Value(boxed) => {
                let bytes = boxed
                    .downcast::<WireBytes>()
                    .expect("internal: un-encoded payload reached the wire transport");
                buf.push(frame::VALUE);
                env.comm_id.wire_encode(&mut buf);
                env.tag.0.wire_encode(&mut buf);
                env.epoch.wire_encode(&mut buf);
                (bytes.0.len() as u64).wire_encode(&mut buf);
                buf.extend_from_slice(&bytes.0);
            }
            Payload::Poison => {
                buf.push(frame::POISON);
                env.epoch.wire_encode(&mut buf);
            }
            Payload::Failed { rank } => {
                buf.push(frame::FAILED);
                env.epoch.wire_encode(&mut buf);
                (rank as u64).wire_encode(&mut buf);
            }
        }
        let mut stream = self.peers[dst].as_ref().ok_or(PeerGone)?;
        self.frames.fetch_add(1, Ordering::Relaxed);
        stream.write_all(&buf).map_err(|_| PeerGone)
    }
}

/// Sends an orderly `FIN` on each stream so peer reader threads exit
/// without synthesizing failures. Errors are ignored (a peer may have
/// finished first and closed).
fn send_fins(streams: &[TcpStream]) {
    for mut stream in streams {
        let _ = stream.write_all(&[frame::FIN]);
    }
}

// ---------------------------------------------------------------------------
// Stream-level codec helpers (control channel and mesh reader).
// ---------------------------------------------------------------------------

fn read_exact_u64(stream: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    stream.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes one length-prefixed control message.
fn ctrl_send<T: WireEncode>(stream: &mut TcpStream, msg: &T) -> std::io::Result<()> {
    let body = encode_to_vec(msg);
    let mut buf = Vec::with_capacity(8 + body.len());
    (body.len() as u64).wire_encode(&mut buf);
    buf.extend_from_slice(&body);
    stream.write_all(&buf)
}

/// Reads one length-prefixed control message.
fn ctrl_recv<T: WireDecode>(stream: &mut TcpStream) -> std::io::Result<T> {
    let len = read_exact_u64(stream)? as usize;
    if len > (1 << 32) {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "control message length implausible",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    decode_from_slice::<T>(&body)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
}

// ---------------------------------------------------------------------------
// Reader threads: sockets -> the rank's ordinary channel inbox.
// ---------------------------------------------------------------------------

/// Parses frames from `peer`'s stream into the inbox until `FIN`, EOF, or a
/// read error. An unclean end synthesizes a `Failed { rank: peer }` marker
/// stamped with `epoch = u64::MAX` so it can never be screened out as
/// stale — the survivors' typed [`crate::CommError::PeerFailed`] signal.
fn reader_loop(peer: usize, mut stream: TcpStream, inbox: Sender<Envelope>) {
    let fail = |inbox: &Sender<Envelope>| {
        let _ = inbox.send(Envelope {
            src_world: peer,
            comm_id: 0,
            tag: Tag(0),
            epoch: u64::MAX,
            payload: Payload::Failed { rank: peer },
            sent_at: Instant::now(),
        });
    };
    loop {
        let mut kind = [0u8; 1];
        if stream.read_exact(&mut kind).is_err() {
            fail(&inbox);
            return;
        }
        let env = match kind[0] {
            frame::FIN => return,
            frame::VALUE => {
                let Ok(comm_id) = read_exact_u64(&mut stream) else {
                    fail(&inbox);
                    return;
                };
                let Ok(tag) = read_exact_u64(&mut stream) else {
                    fail(&inbox);
                    return;
                };
                let Ok(epoch) = read_exact_u64(&mut stream) else {
                    fail(&inbox);
                    return;
                };
                let Ok(len) = read_exact_u64(&mut stream) else {
                    fail(&inbox);
                    return;
                };
                let mut body = vec![0u8; len as usize];
                if stream.read_exact(&mut body).is_err() {
                    fail(&inbox);
                    return;
                }
                Envelope {
                    src_world: peer,
                    comm_id,
                    tag: Tag(tag),
                    epoch,
                    payload: Payload::Value(Box::new(WireBytes(body))),
                    sent_at: Instant::now(),
                }
            }
            frame::POISON => {
                let Ok(epoch) = read_exact_u64(&mut stream) else {
                    fail(&inbox);
                    return;
                };
                Envelope {
                    src_world: peer,
                    comm_id: 0,
                    tag: Tag(0),
                    epoch,
                    payload: Payload::Poison,
                    sent_at: Instant::now(),
                }
            }
            frame::FAILED => {
                let Ok(epoch) = read_exact_u64(&mut stream) else {
                    fail(&inbox);
                    return;
                };
                let Ok(rank) = read_exact_u64(&mut stream) else {
                    fail(&inbox);
                    return;
                };
                Envelope {
                    src_world: peer,
                    comm_id: 0,
                    tag: Tag(0),
                    epoch,
                    payload: Payload::Failed {
                        rank: rank as usize,
                    },
                    sent_at: Instant::now(),
                }
            }
            _ => {
                fail(&inbox);
                return;
            }
        };
        if inbox.send(env).is_err() {
            // Rank thread finished; drain quietly until FIN/EOF.
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Child-side bootstrap.
// ---------------------------------------------------------------------------

/// Rank-thread stack, matching the simulator's default (local SpGEMM builds
/// large temporary rows).
const CHILD_STACK: usize = 16 << 20;

/// Exit code of a child whose rank function panicked.
const CHILD_PANIC_EXIT: i32 = 101;

fn child_main<R, F>(f: F) -> !
where
    R: Send + WireEncode + 'static,
    F: FnOnce(&Comm) -> R + Send + 'static,
{
    let rank: usize = std::env::var(ENV_RANK)
        .expect("child env")
        .parse()
        .expect("child rank");
    let p: usize = std::env::var(ENV_WORLD)
        .expect("child env")
        .parse()
        .expect("child world");
    let control_addr = std::env::var(ENV_CONTROL).expect("child env");

    // Register with the parent: our world rank and mesh listener address.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mesh listener");
    let mesh_addr = listener.local_addr().expect("mesh addr").to_string();
    let mut control = TcpStream::connect(&control_addr).expect("connect control");
    ctrl_send(&mut control, &(rank as u64, mesh_addr)).expect("send hello");
    let addrs: Vec<String> = ctrl_recv(&mut control).expect("recv address book");
    assert_eq!(addrs.len(), p, "address book size");

    // Build the mesh: dial lower ranks (kernel backlog absorbs the
    // handshake even before they accept), then accept higher ranks.
    let mut conns: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
    for (s, addr) in addrs.iter().enumerate().take(rank) {
        let mut stream = TcpStream::connect(addr).expect("dial peer");
        let mut hello = vec![frame::HELLO];
        (rank as u64).wire_encode(&mut hello);
        stream.write_all(&hello).expect("send mesh hello");
        conns[s] = Some(stream);
    }
    for _ in rank + 1..p {
        let (mut stream, _) = listener.accept().expect("accept peer");
        let mut kind = [0u8; 1];
        stream.read_exact(&mut kind).expect("read mesh hello");
        assert_eq!(kind[0], frame::HELLO, "mesh handshake");
        let peer = read_exact_u64(&mut stream).expect("read peer rank") as usize;
        assert!(peer > rank && peer < p, "mesh handshake rank");
        assert!(conns[peer].is_none(), "duplicate mesh connection");
        conns[peer] = Some(stream);
    }
    drop(listener);

    // Wire the inbox: one reader thread per peer feeding the same channel
    // the simulator's Endpoint drains.
    let (tx, rx) = unbounded::<Envelope>();
    for (peer, conn) in conns.iter().enumerate() {
        if let Some(stream) = conn {
            stream.set_nodelay(true).expect("nodelay");
            let read_half = stream.try_clone().expect("clone stream");
            let inbox = tx.clone();
            std::thread::Builder::new()
                .name(format!("tcp-reader-{peer}"))
                .spawn(move || reader_loop(peer, read_half, inbox))
                .expect("spawn reader");
        }
    }

    // Write-half clones for the orderly goodbye after the rank function
    // returns (the link itself moves into the rank thread). FIN ordering
    // is safe: frames on the same socket are kernel-ordered across
    // duplicated descriptors, and all data writes complete before join.
    let fin_streams: Vec<TcpStream> = conns
        .iter()
        .flatten()
        .map(|s| s.try_clone().expect("clone stream"))
        .collect();

    let meter = Meter::new(p);
    let frames = Arc::new(AtomicU64::new(0));
    let link = TcpLink {
        rank,
        loopback: tx,
        peers: conns,
        frames: Arc::clone(&frames),
    };

    // Run the rank function on a roomy stack, exactly like a simulator
    // rank thread.
    let meter_for_rank = Arc::clone(&meter);
    let outcome = std::thread::Builder::new()
        .name(format!("rank-{rank}"))
        .stack_size(CHILD_STACK)
        .spawn(move || {
            dspgemm_obs::set_thread_rank(rank);
            let endpoint = Endpoint::with_transport(
                rank,
                rx,
                Transport::Tcp(link),
                meter_for_rank,
                Arc::new(FaultPlan::default()),
            );
            let comm = Comm::world(endpoint, p);
            let outcome = catch_unwind(AssertUnwindSafe(|| f(&comm)));
            if outcome.is_err() {
                // Poison peers so their next drain fails fast, mirroring
                // the simulator's panic behaviour.
                comm.poison_network();
            }
            outcome
        })
        .expect("spawn rank thread")
        .join()
        .expect("rank thread join");

    match outcome {
        Ok(result) => {
            send_fins(&fin_streams);
            let payload = (result, meter.snapshot(), frames.load(Ordering::Relaxed));
            ctrl_send(&mut control, &payload).expect("report result");
            // Flush before exiting; `exit` skips destructors.
            let _ = control.flush();
            std::process::exit(0);
        }
        Err(_) => {
            eprintln!("tcp rank {rank}: rank function panicked");
            std::process::exit(CHILD_PANIC_EXIT);
        }
    }
}

// ---------------------------------------------------------------------------
// Parent-side orchestration.
// ---------------------------------------------------------------------------

/// Kills any still-running children when dropped (watchdog cleanup: no
/// orphan rank processes survive a panicking parent).
struct KillGuard {
    children: Vec<Option<Child>>,
}

impl KillGuard {
    fn reap(&mut self, rank: usize) -> Option<Child> {
        self.children[rank].take()
    }
}

impl Drop for KillGuard {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_child(reexec: &Reexec, rank: usize, cfg: &TcpConfig, control_addr: &str) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    match reexec {
        Reexec::Test(path) => {
            cmd.args([path.as_str(), "--exact", "--nocapture", "--test-threads=1"]);
        }
        Reexec::SameArgv => {
            cmd.args(std::env::args().skip(1));
        }
    }
    cmd.env(ENV_RANK, rank.to_string())
        .env(ENV_WORLD, cfg.p.to_string())
        .env(ENV_CONTROL, control_addr)
        .env(ENV_DETECT_MS, cfg.detect.as_millis().to_string())
        .stdin(Stdio::null());
    cmd.spawn().expect("spawn rank process")
}

/// Runs `f` as an SPMD program on `cfg.p` ranks, each a real OS process,
/// over the TCP mesh. Returns per-rank results, merged communication
/// counters, and the total data-mesh frame count.
///
/// In a **child** process (see [`Reexec`]) this function never returns: it
/// runs `f` for its rank and exits. Call it before any side-effecting
/// parent work, or guard with [`is_child`].
///
/// # Panics
/// Panics if bootstrap or any rank fails (unless
/// [`TcpConfig::expect_failures`]), or past [`TcpConfig::deadline`]. All
/// children are killed on the way out.
pub fn run_tcp<R, F>(reexec: Reexec, cfg: TcpConfig, f: F) -> TcpOutput<R>
where
    R: Send + WireEncode + WireDecode + 'static,
    F: FnOnce(&Comm) -> R + Send + 'static,
{
    assert!(cfg.p >= 1, "need at least one rank");
    if is_child() {
        child_main(f);
    }

    let deadline = Instant::now() + cfg.deadline;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind control listener");
    listener.set_nonblocking(true).expect("nonblocking control");
    let control_addr = listener.local_addr().expect("control addr").to_string();

    let mut guard = KillGuard {
        children: (0..cfg.p)
            .map(|r| Some(spawn_child(&reexec, r, &cfg, &control_addr)))
            .collect(),
    };

    // Phase 1: collect hellos. Nonblocking accept so we can watch both the
    // deadline and early child deaths.
    let mut controls: Vec<Option<TcpStream>> = (0..cfg.p).map(|_| None).collect();
    let mut addrs: Vec<String> = vec![String::new(); cfg.p];
    let mut pending = cfg.p;
    while pending > 0 {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false).expect("blocking control");
                let (rank, addr): (u64, String) = ctrl_recv(&mut stream).expect("recv hello");
                let rank = rank as usize;
                assert!(rank < cfg.p && controls[rank].is_none(), "hello rank");
                addrs[rank] = addr;
                controls[rank] = Some(stream);
                pending -= 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                assert!(
                    Instant::now() < deadline,
                    "deadline waiting for rank hellos ({pending} missing)"
                );
                for (rank, slot) in guard.children.iter_mut().enumerate() {
                    if let Some(child) = slot {
                        if let Some(status) = child.try_wait().expect("try_wait") {
                            panic!("rank {rank} exited during bootstrap: {status}");
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("control accept failed: {e}"),
        }
    }
    drop(listener);

    // Phase 2: publish the address book; ranks build the mesh and run.
    for stream in controls.iter_mut().flatten() {
        ctrl_send(stream, &addrs).expect("send address book");
    }

    // Phase 3: collect results. A clean child reports (result, stats,
    // frames) and exits 0; a dead child's control stream just ends.
    let mut results: Vec<Option<R>> = (0..cfg.p).map(|_| None).collect();
    let mut per_rank: Vec<RankCommStats> = vec![RankCommStats::default(); cfg.p];
    let mut frames = 0u64;
    for rank in 0..cfg.p {
        let mut stream = controls[rank].take().expect("control stream");
        let remaining = deadline.saturating_duration_since(Instant::now());
        assert!(
            !remaining.is_zero(),
            "deadline before rank {rank}'s result arrived"
        );
        stream
            .set_read_timeout(Some(remaining))
            .expect("read timeout");
        match ctrl_recv::<(R, CommStats, u64)>(&mut stream) {
            Ok((result, stats, child_frames)) => {
                assert_eq!(stats.per_rank.len(), cfg.p, "stats shape from rank {rank}");
                results[rank] = Some(result);
                per_rank[rank] = stats.per_rank[rank].clone();
                frames += child_frames;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("deadline waiting for rank {rank}'s result (possible deadlock)");
            }
            Err(e) => {
                assert!(
                    cfg.expect_failures,
                    "rank {rank} died without reporting: {e}"
                );
            }
        }
        if let Some(mut child) = guard.reap(rank) {
            if results[rank].is_some() {
                let status = child.wait().expect("child wait");
                assert!(status.success(), "rank {rank} reported but exited {status}");
            } else {
                // Died or still dying; make sure it is gone.
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    TcpOutput {
        results,
        stats: CommStats { per_rank },
        frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::Receiver;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    /// A link whose only remote peer (world rank 1) is the write end of a
    /// local socket pair, with a reader thread parsing the other end.
    fn link_and_reader() -> (TcpLink, Receiver<Envelope>, std::thread::JoinHandle<()>) {
        let (write_end, read_end) = socket_pair();
        let (tx, rx) = unbounded();
        let (loop_tx, _loop_rx) = unbounded();
        let reader = std::thread::spawn(move || reader_loop(1, read_end, tx));
        let link = TcpLink {
            rank: 0,
            loopback: loop_tx,
            peers: vec![None, Some(write_end)],
            frames: Arc::new(AtomicU64::new(0)),
        };
        (link, rx, reader)
    }

    fn value_env(comm_id: u64, tag: u64, epoch: u64, body: Vec<u8>) -> Envelope {
        Envelope {
            src_world: 0,
            comm_id,
            tag: Tag(tag),
            epoch,
            payload: Payload::Value(Box::new(WireBytes(body))),
            sent_at: Instant::now(),
        }
    }

    #[test]
    fn value_frames_roundtrip_max_header_values() {
        let (link, rx, reader) = link_and_reader();
        // The envelope header's extremes: max comm id, max user-visible and
        // reserved-range tags, max epoch, empty and non-trivial payloads.
        let cases = [
            (u64::MAX, u64::MAX, u64::MAX, vec![]),
            (0, 0, 0, vec![0xAB; 3]),
            (
                1,
                Tag::RESERVED_BASE,
                u64::MAX - 1,
                (0..=255).collect::<Vec<u8>>(),
            ),
        ];
        for (comm_id, tag, epoch, body) in cases.iter().cloned() {
            link.deliver(1, value_env(comm_id, tag, epoch, body.clone()))
                .expect("deliver");
            let env = rx.recv_timeout(Duration::from_secs(10)).expect("frame");
            assert_eq!(env.src_world, 1, "reader stamps the peer rank");
            assert_eq!(env.comm_id, comm_id);
            assert_eq!(env.tag, Tag(tag));
            assert_eq!(env.epoch, epoch);
            match env.payload {
                Payload::Value(boxed) => {
                    assert_eq!(boxed.downcast::<WireBytes>().expect("bytes").0, body);
                }
                _ => panic!("expected a value payload"),
            }
        }
        assert_eq!(link.frames.load(Ordering::Relaxed), cases.len() as u64);
        send_fins(&[link.peers[1].as_ref().unwrap().try_clone().unwrap()]);
        reader.join().expect("reader exits on FIN");
    }

    #[test]
    fn poison_and_failed_frames_roundtrip() {
        let (link, rx, reader) = link_and_reader();
        link.deliver(
            1,
            Envelope {
                src_world: 0,
                comm_id: 0,
                tag: Tag(0),
                epoch: u64::MAX,
                payload: Payload::Poison,
                sent_at: Instant::now(),
            },
        )
        .expect("deliver poison");
        let env = rx.recv_timeout(Duration::from_secs(10)).expect("frame");
        assert!(matches!(env.payload, Payload::Poison));
        assert_eq!(env.epoch, u64::MAX);

        link.deliver(
            1,
            Envelope {
                src_world: 0,
                comm_id: 0,
                tag: Tag(0),
                epoch: 3,
                payload: Payload::Failed { rank: 7 },
                sent_at: Instant::now(),
            },
        )
        .expect("deliver failed marker");
        let env = rx.recv_timeout(Duration::from_secs(10)).expect("frame");
        assert!(matches!(env.payload, Payload::Failed { rank: 7 }));
        assert_eq!(env.epoch, 3);
        drop(link);
        reader.join().expect("reader exits on EOF");
    }

    #[test]
    fn eof_without_fin_synthesizes_unscreenable_failure() {
        let (link, rx, reader) = link_and_reader();
        drop(link); // Closes the write end with no FIN: an unclean death.
        let env = rx.recv_timeout(Duration::from_secs(10)).expect("marker");
        assert!(matches!(env.payload, Payload::Failed { rank: 1 }));
        // Epoch u64::MAX: survives epoch screening at any recovery depth.
        assert_eq!(env.epoch, u64::MAX);
        reader.join().expect("reader exits");
    }

    #[test]
    fn deliver_to_dead_peer_reports_peer_gone() {
        let (link, rx, reader) = link_and_reader();
        // Close the inbox, then push one frame: the reader parses it, fails
        // to enqueue, and exits — closing the read end of the socket.
        drop(rx);
        link.deliver(1, value_env(0, 0, 0, vec![9])).expect("first");
        reader.join().expect("reader");
        // The read end is fully closed; the kernel needs a write (or two,
        // for a buffered first) to observe the reset.
        let mut gone = false;
        for i in 0..100 {
            if link.deliver(1, value_env(0, 0, 0, vec![i])).is_err() {
                gone = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(gone, "writes to a dead peer never failed");
    }

    #[test]
    fn loopback_delivery_skips_sockets_and_codec() {
        let (write_end, _read_end) = socket_pair();
        let (loop_tx, loop_rx) = unbounded();
        let link = TcpLink {
            rank: 0,
            loopback: loop_tx,
            peers: vec![None, Some(write_end)],
            frames: Arc::new(AtomicU64::new(0)),
        };
        assert!(!link.is_self(1));
        assert!(link.is_self(0));
        // A *typed* (never encoded) payload to self must arrive intact.
        link.deliver(
            0,
            Envelope {
                src_world: 0,
                comm_id: 5,
                tag: Tag(6),
                epoch: 0,
                payload: Payload::Value(Box::new(vec![1u64, 2, 3])),
                sent_at: Instant::now(),
            },
        )
        .expect("loopback");
        let env = loop_rx.recv_timeout(Duration::from_secs(10)).expect("env");
        match env.payload {
            Payload::Value(boxed) => {
                assert_eq!(*boxed.downcast::<Vec<u64>>().expect("typed"), vec![1, 2, 3]);
            }
            _ => panic!("expected a value payload"),
        }
        assert_eq!(link.frames.load(Ordering::Relaxed), 0, "loopback framed");
    }
}
