//! Message envelopes and tags.

use std::any::Any;

/// A user-visible message tag.
///
/// Tags isolate logically independent message streams between the same pair
/// of ranks, exactly like MPI tags. User code may use any value below
/// [`Tag::RESERVED_BASE`]; the runtime reserves the upper range for
/// collectives and control traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// First tag value reserved for runtime-internal traffic.
    pub const RESERVED_BASE: u64 = 1 << 48;

    /// Creates a user tag.
    ///
    /// # Panics
    /// Panics if `value` falls in the reserved range.
    #[inline]
    pub fn user(value: u64) -> Self {
        assert!(
            value < Self::RESERVED_BASE,
            "tag {value} is in the runtime-reserved range"
        );
        Tag(value)
    }

    /// Creates a runtime-internal tag (collective sequence numbers).
    #[inline]
    pub(crate) fn internal(seq: u64) -> Self {
        Tag(Self::RESERVED_BASE | seq)
    }
}

/// What travels through a channel.
pub(crate) enum Payload {
    /// A user or collective value.
    Value(Box<dyn Any + Send>),
    /// The source rank panicked; receivers must fail fast.
    Poison,
    /// The source rank crashed under fault injection; receivers abort the
    /// in-flight round with a recoverable [`crate::CommError::PeerFailed`]
    /// instead of dying (the fail-stop `Poison` behaviour).
    Failed {
        /// World rank of the crashed sender.
        rank: usize,
    },
}

/// A routed message.
pub(crate) struct Envelope {
    /// World rank of the sender.
    pub src_world: usize,
    /// Communicator that the message belongs to.
    pub comm_id: u64,
    /// Tag within the communicator.
    pub tag: Tag,
    /// The sender's recovery epoch when the message was pushed. Matching is
    /// epoch-exact: after a recovery, stragglers from the aborted round
    /// (previous epoch) are silently dropped at drain time, and traffic
    /// from peers that already advanced is buffered until this rank
    /// catches up. Always 0 in fault-free runs.
    pub epoch: u64,
    /// The value (or a poison/failure marker).
    pub payload: Payload,
    /// When the sender pushed the envelope — in-process transfer is
    /// instantaneous, so this is the moment the data became *available* to
    /// the receiver. The nonblocking layer measures a request's
    /// communication window against it (not against `wait`, which would
    /// count post-arrival compute as communication).
    pub sent_at: std::time::Instant,
}
