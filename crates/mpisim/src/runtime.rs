//! The rank-per-thread runtime.

use crate::comm::Comm;
use crate::fault::FaultPlan;
use crate::network::Network;
use crate::stats::CommStats;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Result of a simulated run: the per-rank return values (indexed by world
/// rank) and the communication counters accumulated during the run.
#[derive(Debug)]
pub struct SimOutput<R> {
    /// `f`'s return value on each rank, in rank order.
    pub results: Vec<R>,
    /// Communication volume/message counters for the whole run.
    pub stats: CommStats,
    /// Payload deep-clones performed by clone-based collectives during the
    /// run. The `*_shared` collectives never deep-clone, so this is the
    /// clone-counting hook for asserting a run was zero-copy.
    pub payload_clones: u64,
    /// Transient send retries injected by the run's fault plan (0 outside
    /// [`run_with_faults`]).
    pub transient_retries: u64,
}

/// Default stack size per rank thread. Local SpGEMM on skewed graphs can
/// build large temporary rows; 16 MiB is comfortable and still cheap.
const DEFAULT_STACK: usize = 16 << 20;

/// Runs `f` as an SPMD program on `p` simulated MPI ranks and waits for all
/// of them.
///
/// Each rank executes `f(comm)` on its own OS thread with a world
/// communicator. The closure may borrow from the caller's scope (the run is
/// fully scoped). If any rank panics, the network is poisoned so blocked
/// peers fail fast, and the first panic is re-raised on the caller.
///
/// ```
/// let out = dspgemm_mpi::run(4, |comm| comm.rank() * 2);
/// assert_eq!(out.results, vec![0, 2, 4, 6]);
/// ```
pub fn run<R, F>(p: usize, f: F) -> SimOutput<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    run_on(p, DEFAULT_STACK, f)
}

/// Like [`run`] with a deterministic [`FaultPlan`] driving the network:
/// seeded crash/delay/transient-failure injection plus the *recoverable*
/// failure surface (typed [`crate::CommError`]s instead of poison-panic;
/// see [`crate::catch_comm`]). `f` is responsible for catching the errors
/// and running a recovery protocol — an uncaught `CommError` unwinds the
/// rank like any panic and fail-stops the job.
pub fn run_with_faults<R, F>(p: usize, plan: FaultPlan, f: F) -> SimOutput<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    run_inner(p, DEFAULT_STACK, plan, f)
}

/// Like [`run`] with an explicit per-rank stack size in bytes.
pub fn run_on<R, F>(p: usize, stack_bytes: usize, f: F) -> SimOutput<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    run_inner(p, stack_bytes, FaultPlan::default(), f)
}

fn run_inner<R, F>(p: usize, stack_bytes: usize, plan: FaultPlan, f: F) -> SimOutput<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    let mut network = Network::new_with_plan(p, plan);
    let endpoints: Vec<_> = (0..p).map(|r| network.endpoint(r)).collect();

    let mut results: Vec<Option<R>> = Vec::with_capacity(p);
    let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();

    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, endpoint)| {
                let f = &f;
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(stack_bytes)
                    .spawn_scoped(scope, move || {
                        // Attribute every trace span recorded on this
                        // thread to its simulated rank.
                        dspgemm_obs::set_thread_rank(rank);
                        let comm = Comm::world(endpoint, p);
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                        if outcome.is_err() {
                            comm.poison_network();
                        }
                        outcome
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join().expect("rank thread join failed") {
                Ok(r) => results.push(Some(r)),
                Err(e) => {
                    results.push(None);
                    panics.push((rank, e));
                }
            }
        }
    });

    if let Some((rank, payload)) = panics.into_iter().next() {
        eprintln!("mpisim: rank {rank} panicked; re-raising");
        resume_unwind(payload);
    }

    SimOutput {
        results: results.into_iter().map(|o| o.expect("result")).collect(),
        stats: network.stats(),
        payload_clones: network.payload_clones(),
        transient_retries: network.transient_retries(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommCategory;

    #[test]
    fn rank_and_size_visible() {
        let out = run(5, |c| (c.rank(), c.size()));
        for (r, &(rank, size)) in out.results.iter().enumerate() {
            assert_eq!(rank, r);
            assert_eq!(size, 5);
        }
    }

    #[test]
    fn p2p_ping_pong() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, 123u64);
                c.recv::<u64>(1, 8)
            } else {
                let v: u64 = c.recv(0, 7);
                c.send(0, 8, v + 1);
                v
            }
        });
        assert_eq!(out.results, vec![124, 123]);
        assert_eq!(out.stats.bytes_in(CommCategory::P2p), 16);
        assert_eq!(out.stats.msgs_in(CommCategory::P2p), 2);
    }

    #[test]
    fn tag_matching_out_of_order() {
        // Rank 0 sends tags 1 then 2; rank 1 receives tag 2 first.
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, 10u32);
                c.send(1, 2, 20u32);
                0
            } else {
                let b: u32 = c.recv(0, 2);
                let a: u32 = c.recv(0, 1);
                (b - a) as usize
            }
        });
        assert_eq!(out.results[1], 10);
    }

    #[test]
    fn non_overtaking_same_tag() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 3, i);
                }
                vec![]
            } else {
                (0..100).map(|_| c.recv::<u32>(0, 3)).collect::<Vec<u32>>()
            }
        });
        assert_eq!(out.results[1], (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sendrecv_transpose_exchange() {
        // 2x2 grid flattened: rank (i,j) = 2i + j swaps with (j,i).
        let out = run(4, |c| {
            let (i, j) = (c.rank() / 2, c.rank() % 2);
            let peer = 2 * j + i;
            c.sendrecv::<u64, u64>(peer, c.rank() as u64, peer, 0)
        });
        assert_eq!(out.results, vec![0, 2, 1, 3]);
    }

    #[test]
    fn barrier_all_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            let out = run(p, |c| {
                c.barrier();
                c.barrier();
                true
            });
            assert!(out.results.iter().all(|&b| b));
        }
    }

    #[test]
    fn bcast_all_roots_and_sizes() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                let out = run(p, |c| {
                    let v = if c.rank() == root {
                        Some(42u64 + root as u64)
                    } else {
                        None
                    };
                    c.bcast(root, v)
                });
                assert!(out.results.iter().all(|&v| v == 42 + root as u64));
            }
        }
    }

    #[test]
    fn bcast_vector_payload_volume() {
        let out = run(4, |c| {
            let v = if c.rank() == 0 {
                Some(vec![1u32; 1000])
            } else {
                None
            };
            c.bcast(0, v).len()
        });
        assert!(out.results.iter().all(|&l| l == 1000));
        // Binomial tree over 4 ranks sends the payload exactly 3 times.
        assert_eq!(out.stats.msgs_in(CommCategory::Bcast), 3);
        assert_eq!(out.stats.bytes_in(CommCategory::Bcast), 3 * (8 + 4000));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run(6, |c| c.gather(2, c.rank() as u64 * 3));
        for (r, res) in out.results.iter().enumerate() {
            if r == 2 {
                assert_eq!(res.as_ref().unwrap(), &vec![0, 3, 6, 9, 12, 15]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn allgather_ring() {
        for p in [1, 2, 5, 8] {
            let out = run(p, |c| c.allgather((c.rank() as u32, c.rank() as u32 + 100)));
            let expect: Vec<(u32, u32)> = (0..p as u32).map(|r| (r, r + 100)).collect();
            assert!(out.results.iter().all(|v| *v == expect));
        }
    }

    #[test]
    fn alltoallv_routes_chunks() {
        let p = 4;
        let out = run(p, |c| {
            let chunks: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(c.rank() * 10 + dst) as u64; c.rank() + 1])
                .collect();
            c.alltoallv(chunks)
        });
        for (dst, received) in out.results.iter().enumerate() {
            for (src, chunk) in received.iter().enumerate() {
                assert_eq!(chunk, &vec![(src * 10 + dst) as u64; src + 1]);
            }
        }
        // Self-chunks never touch the wire.
        assert_eq!(
            out.stats.msgs_in(CommCategory::Alltoall),
            (p * (p - 1)) as u64
        );
    }

    #[test]
    fn reduce_and_allreduce() {
        for p in [1, 2, 3, 6, 8] {
            let out = run(p, |c| c.reduce(0, c.rank() as u64 + 1, |a, b| a + b));
            let expect: u64 = (1..=p as u64).sum();
            assert_eq!(out.results[0], Some(expect));
            assert!(out.results[1..].iter().all(|r| r.is_none()));

            let out = run(p, |c| c.allreduce(c.rank() as u64 + 1, |a, b| a + b));
            assert!(out.results.iter().all(|&v| v == expect));
        }
    }

    #[test]
    fn reduce_non_zero_root() {
        let out = run(5, |c| c.reduce(3, 1u64, |a, b| a + b));
        assert_eq!(out.results[3], Some(5));
    }

    #[test]
    fn reduce_with_merge_semantics() {
        // Reduce with a set-union op — exercises non-numeric reduction as used
        // by the sparse aggregation.
        let out = run(4, |c| {
            c.allreduce(vec![c.rank() as u32], |mut a, b| {
                a.extend(b);
                a.sort_unstable();
                a
            })
        });
        assert!(out.results.iter().all(|v| *v == vec![0, 1, 2, 3]));
    }

    #[test]
    fn exscan_prefix_sums() {
        let out = run(5, |c| c.exscan(c.rank() as u64 + 1, 0, |a, b| a + b));
        assert_eq!(out.results, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn split_into_rows_and_columns() {
        // 2x2 grid: row comm and col comm.
        let out = run(4, |c| {
            let (i, j) = (c.rank() / 2, c.rank() % 2);
            let row = c.split(i as u64, j as u64);
            let col = c.split(j as u64, i as u64);
            // Sum of world ranks within my row / column.
            let row_sum = row.allreduce(c.rank() as u64, |a, b| a + b);
            let col_sum = col.allreduce(c.rank() as u64, |a, b| a + b);
            (
                row.rank(),
                row.size(),
                row_sum,
                col.rank(),
                col.size(),
                col_sum,
            )
        });
        // Rank layout: 0=(0,0) 1=(0,1) 2=(1,0) 3=(1,1).
        assert_eq!(out.results[0], (0, 2, 1, 0, 2, 2));
        assert_eq!(out.results[1], (1, 2, 1, 0, 2, 4));
        assert_eq!(out.results[2], (0, 2, 5, 1, 2, 2));
        assert_eq!(out.results[3], (1, 2, 5, 1, 2, 4));
    }

    #[test]
    fn split_key_orders_group() {
        // Reverse ordering via key.
        let out = run(4, |c| {
            let g = c.split(0, (10 - c.rank()) as u64);
            g.rank()
        });
        assert_eq!(out.results, vec![3, 2, 1, 0]);
    }

    #[test]
    fn dup_isolates_tags() {
        let out = run(2, |c| {
            let d = c.dup();
            if c.rank() == 0 {
                c.send(1, 5, 1u32);
                d.send(1, 5, 2u32);
                0
            } else {
                // Receive from the dup first: must get the dup's message even
                // though the world message arrived first.
                let from_dup: u32 = d.recv(0, 5);
                let from_world: u32 = c.recv(0, 5);
                (from_dup * 10 + from_world) as usize
            }
        });
        assert_eq!(out.results[1], 21);
    }

    #[test]
    fn concurrent_collectives_on_disjoint_comms() {
        // Rows do broadcasts while columns reduce; no interference.
        let out = run(4, |c| {
            let (i, j) = (c.rank() / 2, c.rank() % 2);
            let row = c.split(i as u64, j as u64);
            let col = c.split(j as u64, i as u64);
            let b = row.bcast(
                0,
                if row.rank() == 0 {
                    Some(i as u64)
                } else {
                    None
                },
            );
            let s = col.allreduce(1u64, |a, x| a + x);
            (b, s)
        });
        assert_eq!(out.results, vec![(0, 2), (0, 2), (1, 2), (1, 2)]);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates_without_deadlock() {
        run(4, |c| {
            if c.rank() == 2 {
                panic!("injected failure");
            }
            // Other ranks block on a message that will never come; poison
            // must wake them.
            let _: u64 = c.recv(2, 9);
        });
    }

    #[test]
    fn stress_many_collectives() {
        let out = run(8, |c| {
            let mut acc = 0u64;
            for round in 0..50 {
                let v = c.allreduce(round + c.rank() as u64, |a, b| a.max(b));
                acc += v;
                c.barrier();
            }
            acc
        });
        let expect: u64 = (0..50).map(|r| r + 7).sum();
        assert!(out.results.iter().all(|&v| v == expect));
    }
}
