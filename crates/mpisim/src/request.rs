//! Nonblocking requests and the per-rank progress engine.
//!
//! The paper's SpGEMM algorithms alternate broadcast/multiply rounds; with
//! only blocking collectives every rank idles through each round's
//! communication before touching its local kernel. This module adds the
//! `MPI_Isend`/`Irecv`/`Ibcast`-shaped layer that lets the execution layer
//! overlap: an operation is *issued* (sends go out, receives are
//! registered), the rank computes, and the operation is *completed* later
//! with [`Request::wait`] (or polled with [`Request::test`]).
//!
//! ## The progress engine
//!
//! Tree-shaped collectives need third-party forwarding: in a binomial
//! broadcast an interior rank must re-send its parent's payload to its
//! children, even if that rank is currently blocked in an unrelated
//! operation. Each rank therefore keeps a [`ProgressTable`] of pending
//! *arrival actions* (keyed by `(source, communicator, tag)`); **every**
//! drain of the inbox — blocking receives, `wait`, `test`, barriers,
//! reductions — routes non-matching envelopes through the table, running
//! forwarding actions as a side effect. This mirrors MPI's guarantee that
//! progress happens inside MPI calls (there is no asynchronous progress
//! thread), and it makes the pipelined schedulers deadlock-free: a rank
//! blocked in a reduction still forwards the broadcast panels of the next
//! round flowing through it.
//!
//! ## Time attribution
//!
//! Every envelope is stamped with its send time — in-process transfer is
//! instantaneous, so that stamp is when the data became *available*. A
//! request's communication window is `availability - issue` (the sender
//! dependency it had to cover), split into *exposed* time (the rank sat
//! blocked in `wait`) and *overlapped* time (the remainder — covered by
//! local compute): `overlapped = max(0, (available - issue) - blocked)`.
//! Post-arrival compute is **not** communication and is never counted.
//! Both sides accumulate per rank in the meter ([`crate::CommStats`]);
//! blocking collectives record pure exposed time (barrier synchronization
//! waits are excluded — skew, not communication), so the delta of two
//! snapshots quantifies exactly how much communication a pipelined schedule
//! hid — the `repro overlap` ablation's metric.
//!
//! ## Completion contract
//!
//! Every request must be completed with `wait` (or driven to readiness with
//! `test`). Dropping an incomplete request first attempts a non-blocking
//! completion and then **panics** — never deadlocks — because an abandoned
//! in-flight collective would leave peers waiting forever.

use crate::fault::CommError;
use crate::message::{Envelope, Payload, Tag};
use crate::network::Endpoint;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One registered arrival action: when an envelope matching the key is
/// drained, the action runs (forwarding tree edges, filling the request's
/// result slot) instead of the envelope being buffered.
pub(crate) struct ProgressEntry {
    pub(crate) src_world: usize,
    pub(crate) comm_id: u64,
    pub(crate) tag: Tag,
    /// Runs on arrival with the payload and its availability stamp.
    pub(crate) action: Box<dyn FnOnce(Box<dyn Any + Send>, Instant)>,
}

/// The per-rank table of pending arrival actions, plus the ledger of
/// posted nonblocking receives. Shared (via `Rc`) by all communicators and
/// requests of one rank, exactly like the endpoint: a blocking drain on the
/// world communicator must advance a row-communicator broadcast.
#[derive(Default)]
pub(crate) struct ProgressTable {
    entries: Vec<ProgressEntry>,
    /// Keys of outstanding posted receives (`irecv`/`ialltoallv` parts).
    /// Lazy buffer matching cannot honor MPI's posted-receive ordering for
    /// two receives with the *same* `(source, comm, tag)` key, so posting a
    /// duplicate — or issuing a blocking receive that would race a posted
    /// one — fails fast instead of silently delivering messages to the
    /// wrong request.
    posted: Vec<(usize, u64, Tag)>,
}

impl ProgressTable {
    fn take_matching(&mut self, src_world: usize, comm_id: u64, tag: Tag) -> Option<ProgressEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.src_world == src_world && e.comm_id == comm_id && e.tag == tag)?;
        Some(self.entries.remove(pos))
    }

    pub(crate) fn register(&mut self, entry: ProgressEntry) {
        self.entries.push(entry);
    }

    fn post_recv(&mut self, key: (usize, u64, Tag)) {
        assert!(
            !self.posted.contains(&key),
            "two outstanding nonblocking receives share (source {}, tag {:?}); matching order              would be wait-order, not post-order — use distinct tags",
            key.0,
            key.2
        );
        self.posted.push(key);
    }

    fn unpost_recv(&mut self, key: (usize, u64, Tag)) {
        if let Some(pos) = self.posted.iter().position(|k| *k == key) {
            self.posted.remove(pos);
        }
    }

    fn is_posted(&self, key: (usize, u64, Tag)) -> bool {
        self.posted.contains(&key)
    }

    /// Drops every pending action and posted-receive key. Part of a
    /// recovery epoch advance: actions registered by the aborted round
    /// must never fire on next-epoch traffic.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.posted.clear();
    }
}

/// One rank's I/O handles: the endpoint plus the progress table. Cloned
/// (refcount) into every communicator and request of the rank.
pub(crate) struct RankIo {
    pub(crate) endpoint: Rc<RefCell<Endpoint>>,
    pub(crate) progress: Rc<RefCell<ProgressTable>>,
}

impl Clone for RankIo {
    fn clone(&self) -> Self {
        Self {
            endpoint: Rc::clone(&self.endpoint),
            progress: Rc::clone(&self.progress),
        }
    }
}

impl RankIo {
    pub(crate) fn new(endpoint: Endpoint) -> Self {
        Self {
            endpoint: Rc::new(RefCell::new(endpoint)),
            progress: Rc::new(RefCell::new(ProgressTable::default())),
        }
    }
}

/// Routes one drained envelope: runs a matching progress action (which may
/// forward tree edges while no endpoint borrow is held), else buffers it
/// for a later direct receive.
pub(crate) fn route_envelope(io: &RankIo, env: Envelope) {
    // Drain screening already dropped stale-epoch traffic; an envelope from
    // a *future* epoch (a peer that finished recovering first) must wait in
    // the buffer — the actions registered here belong to the current epoch.
    if env.epoch != io.endpoint.borrow().recovery_epoch() {
        io.endpoint.borrow_mut().buffer(env);
        return;
    }
    let action = io
        .progress
        .borrow_mut()
        .take_matching(env.src_world, env.comm_id, env.tag);
    match action {
        Some(entry) => match env.payload {
            Payload::Value(v) => (entry.action)(v, env.sent_at),
            // `screen` at the drain sites already handled the markers.
            Payload::Poison | Payload::Failed { .. } => {
                unreachable!("markers are handled at drain")
            }
        },
        None => io.endpoint.borrow_mut().buffer(env),
    }
}

/// Blocking receive matching `(src_world, comm_id, tag)`, advancing the
/// progress engine on every non-matching arrival. Returns the payload, the
/// moment the sender made it available, and the time spent blocked on the
/// inbox. `expose` controls whether blocked time is metered as exposed
/// communication (false for pure-synchronization waits like barriers).
pub(crate) fn recv_match(
    io: &RankIo,
    src_world: usize,
    comm_id: u64,
    tag: Tag,
    expose: bool,
) -> (Box<dyn Any + Send>, Instant, Duration) {
    assert!(
        !io.progress.borrow().is_posted((src_world, comm_id, tag)),
        "blocking receive races a posted nonblocking receive for (source {src_world}, tag          {tag:?}); use distinct tags"
    );
    if let Some((v, sent_at)) = io
        .endpoint
        .borrow_mut()
        .take_pending(src_world, comm_id, tag)
    {
        return (v, sent_at, Duration::ZERO);
    }
    let mut blocked = Duration::ZERO;
    loop {
        let (env, d) = io.endpoint.borrow_mut().blocking_next(expose);
        blocked += d;
        let epoch = io.endpoint.borrow().recovery_epoch();
        if env.src_world == src_world
            && env.comm_id == comm_id
            && env.tag == tag
            && env.epoch == epoch
        {
            match env.payload {
                Payload::Value(v) => return (v, env.sent_at, blocked),
                // `blocking_next` already handles the markers.
                Payload::Poison | Payload::Failed { .. } => {
                    unreachable!("markers are handled at drain")
                }
            }
        }
        route_envelope(io, env);
    }
}

/// Drains every envelope currently in the inbox without blocking, routing
/// each through the progress engine (the non-blocking progress pump behind
/// [`Request::test`]).
pub(crate) fn pump(io: &RankIo) {
    loop {
        let env = io.endpoint.borrow_mut().try_next();
        match env {
            Some(e) => route_envelope(io, e),
            None => return,
        }
    }
}

/// Timing of one completed request: `window` is the communication window
/// issue→data-availability (the sender dependency the request had to
/// cover), `exposed` the part of it the rank spent blocked in *this*
/// request's `wait`, `overlapped` the part genuinely covered by local
/// work — the window minus **all** time the rank spent blocked on the
/// inbox during it (own wait or any other operation's), so blocked time is
/// never double-counted as hidden communication. Post-arrival compute is
/// outside the window and never counted as communication.
#[derive(Debug, Clone, Copy, Default)]
pub struct Overlap {
    /// Wall time from issue until the (last) payload became available.
    pub window: Duration,
    /// Time the rank spent blocked waiting for this request.
    pub exposed: Duration,
    /// The compute-covered portion of the window.
    overlapped: Duration,
}

impl Overlap {
    /// The compute-hidden portion of the communication window.
    pub fn overlapped(&self) -> Duration {
        self.overlapped
    }
}

/// The rank's cumulative inbox-blocked nanoseconds (overlap bookkeeping).
fn io_blocked_ns(io: &RankIo) -> u64 {
    io.endpoint.borrow().blocked_ns_total()
}

/// Assembles a composite request's value from its payloads in part order.
type Finish<T> = Box<dyn FnOnce(Vec<Box<dyn Any + Send>>) -> T>;

/// One pending direct receive of a composite request.
struct PartRecv {
    src_world: usize,
    comm_id: u64,
    tag: Tag,
    got: Option<(Box<dyn Any + Send>, Instant)>,
}

enum State<T> {
    /// Waiting on one or more direct receives; `finish` assembles the value
    /// from the payloads in part order.
    Parts {
        parts: Vec<PartRecv>,
        finish: Option<Finish<T>>,
    },
    /// Waiting on a progress action to fill the slot (tree collectives whose
    /// arrival also forwards to children); the instant is the payload's
    /// availability stamp.
    Slot(Rc<RefCell<Option<(T, Instant)>>>),
}

/// A handle to an in-flight nonblocking operation, returned by
/// [`crate::Comm::isend`], [`crate::Comm::irecv`],
/// [`crate::Comm::ibcast_shared`] and [`crate::Comm::ialltoallv`].
///
/// Complete it with [`Request::wait`] (blocking) or drive it with
/// [`Request::test`] (non-blocking progress). Requests may be waited in any
/// order; out-of-order arrivals are buffered and matched by
/// `(source, communicator, tag)`. Two receives concurrently outstanding
/// under the *same* key would match in wait-order rather than MPI's
/// post-order, so posting one panics at issue — use distinct tags.
///
/// # Panics
/// Dropping a request that has not completed panics (after one final
/// non-blocking progress attempt): an abandoned in-flight collective would
/// otherwise deadlock peers. During unwinding the check is skipped so a
/// failing rank can poison the network cleanly.
pub struct Request<T: 'static> {
    io: RankIo,
    state: Option<State<T>>,
    /// `(value, timing)` once completed and not yet consumed.
    result: Option<(T, Overlap)>,
    issued: Instant,
    /// The rank's cumulative inbox-blocked ns at issue (see
    /// `Endpoint::blocked_ns_total`).
    blocked_ns_at_issue: u64,
    blocked: Duration,
    /// Whether completion should be charged to the overlap meter (false for
    /// requests that were ready at issue, e.g. buffered sends and `p = 1`
    /// short-circuits, which have no communication window).
    metered: bool,
    what: &'static str,
}

impl<T: 'static> Request<T> {
    pub(crate) fn ready(io: RankIo, value: T, what: &'static str) -> Self {
        Self {
            io,
            state: None,
            result: Some((value, Overlap::default())),
            issued: Instant::now(),
            blocked_ns_at_issue: 0,
            blocked: Duration::ZERO,
            metered: false,
            what,
        }
    }

    pub(crate) fn from_parts(
        io: RankIo,
        parts: Vec<(usize, u64, Tag)>,
        finish: Finish<T>,
        what: &'static str,
    ) -> Self {
        let blocked_ns_at_issue = io_blocked_ns(&io);
        {
            let mut progress = io.progress.borrow_mut();
            for &key in &parts {
                progress.post_recv(key);
            }
        }
        Self {
            io,
            state: Some(State::Parts {
                parts: parts
                    .into_iter()
                    .map(|(src_world, comm_id, tag)| PartRecv {
                        src_world,
                        comm_id,
                        tag,
                        got: None,
                    })
                    .collect(),
                finish: Some(Box::new(finish)),
            }),
            result: None,
            issued: Instant::now(),
            blocked_ns_at_issue,
            blocked: Duration::ZERO,
            metered: true,
            what,
        }
    }

    pub(crate) fn from_slot(
        io: RankIo,
        slot: Rc<RefCell<Option<(T, Instant)>>>,
        what: &'static str,
    ) -> Self {
        let blocked_ns_at_issue = io_blocked_ns(&io);
        Self {
            io,
            state: Some(State::Slot(slot)),
            result: None,
            issued: Instant::now(),
            blocked_ns_at_issue,
            blocked: Duration::ZERO,
            metered: true,
            what,
        }
    }

    /// Moves an already-satisfied state into `result`, recording overlap.
    /// `available_at` is when the (last) payload became available; the
    /// communication window ends there, so local work done after arrival is
    /// never misattributed as overlapped communication. The overlapped
    /// share further subtracts *all* time the rank spent blocked on the
    /// inbox since issue (its own wait or any other operation's — blocked
    /// is blocked, not compute); the subtraction is conservative, never
    /// inflating the hidden share.
    fn finalize(&mut self, value: T, available_at: Instant) {
        let window = available_at.saturating_duration_since(self.issued);
        let blocked_since_issue =
            Duration::from_nanos(io_blocked_ns(&self.io).saturating_sub(self.blocked_ns_at_issue));
        let timing = Overlap {
            window,
            exposed: self.blocked,
            overlapped: window.saturating_sub(blocked_since_issue),
        };
        if self.metered {
            self.io
                .endpoint
                .borrow()
                .record_overlapped_ns(timing.overlapped().as_nanos() as u64);
        }
        self.result = Some((value, timing));
    }

    /// Attempts completion without blocking: first consumes any
    /// already-buffered arrivals, then pumps the inbox once.
    fn try_complete(&mut self) -> bool {
        if self.result.is_some() || self.state.is_none() {
            return true;
        }
        pump(&self.io);
        let state = self.state.take().expect("incomplete request has state");
        match state {
            State::Slot(slot) => {
                let filled = slot.borrow_mut().take();
                match filled {
                    Some((v, available_at)) => {
                        self.finalize(v, available_at);
                        true
                    }
                    None => {
                        self.state = Some(State::Slot(slot));
                        false
                    }
                }
            }
            State::Parts { mut parts, finish } => {
                let mut missing = 0usize;
                for part in parts.iter_mut() {
                    if part.got.is_none() {
                        part.got = self.io.endpoint.borrow_mut().take_pending(
                            part.src_world,
                            part.comm_id,
                            part.tag,
                        );
                        if part.got.is_none() {
                            missing += 1;
                        }
                    }
                }
                if missing == 0 {
                    {
                        let mut progress = self.io.progress.borrow_mut();
                        for part in &parts {
                            progress.unpost_recv((part.src_world, part.comm_id, part.tag));
                        }
                    }
                    // The window closes when the *last* payload arrived.
                    let available_at = parts
                        .iter()
                        .map(|p| p.got.as_ref().expect("all parts arrived").1)
                        .max()
                        .expect("composite request has at least one part");
                    let payloads = parts
                        .into_iter()
                        .map(|p| p.got.expect("all parts arrived").0)
                        .collect();
                    let finish = finish.expect("finish not yet consumed");
                    let value = finish(payloads);
                    self.finalize(value, available_at);
                    true
                } else {
                    self.state = Some(State::Parts { parts, finish });
                    false
                }
            }
        }
    }

    /// Blocks until every outstanding part has arrived, then finalizes.
    fn complete_blocking(&mut self) {
        if self.try_complete() {
            return;
        }
        loop {
            // Re-check cheap completion (a routed envelope may have filled
            // the slot / buffered a part).
            if self.try_complete() {
                return;
            }
            let (env, d) = self.io.endpoint.borrow_mut().blocking_next(true);
            self.blocked += d;
            route_envelope(&self.io, env);
        }
    }

    /// Advances the progress engine and reports whether the request has
    /// completed. Never blocks. After `test` returns `true`, [`Request::wait`]
    /// returns immediately.
    pub fn test(&mut self) -> bool {
        self.try_complete()
    }

    /// Blocks until the operation completes and returns its value. Time
    /// spent blocked here is recorded as *exposed* communication time; the
    /// rest of the issue→availability window as *overlapped*.
    pub fn wait(self) -> T {
        self.wait_timed().0
    }

    /// Like [`Request::wait`], additionally returning the request's timing
    /// split (for per-phase attribution in `PhaseTimer`-style breakdowns).
    pub fn wait_timed(mut self) -> (T, Overlap) {
        // The wait span carries the request's full time attribution: how
        // long this wait was exposed, and how much of the communication
        // window local compute covered (from the envelope availability
        // stamps — see "Time attribution" above).
        let mut sp = dspgemm_obs::span("comm", self.what);
        self.complete_blocking();
        let (value, timing) = self.result.take().expect("completed request has a result");
        if dspgemm_obs::enabled() {
            let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            sp.set_attr("window_ns", ns(timing.window));
            sp.set_attr("exposed_ns", ns(timing.exposed));
            sp.set_attr("overlapped_ns", ns(timing.overlapped()));
        }
        (value, timing)
    }

    /// Bounded-blocking completion: waits up to `timeout` for the
    /// operation, returning `Err(CommError::Timeout)` if it is still in
    /// flight when the deadline passes. The request stays alive and armed
    /// across a timeout — call `wait_deadline` again (or [`Request::wait`])
    /// to keep waiting — which is what lets recovery code distinguish a
    /// *slow* peer (later wait succeeds) from a *dead* one (the wait
    /// surfaces [`CommError::PeerFailed`] once the failure marker arrives).
    ///
    /// On success the value is returned and the request is spent; a second
    /// call after `Ok` would find no result, so take `Ok` once.
    pub fn wait_deadline(&mut self, timeout: Duration) -> Result<(T, Overlap), CommError> {
        let mut sp = dspgemm_obs::span("comm", self.what);
        let deadline = Instant::now() + timeout;
        loop {
            if self.try_complete() {
                let (value, timing) = self.result.take().expect("completed request has a result");
                if dspgemm_obs::enabled() {
                    let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                    sp.set_attr("window_ns", ns(timing.window));
                    sp.set_attr("exposed_ns", ns(timing.exposed));
                    sp.set_attr("overlapped_ns", ns(timing.overlapped()));
                }
                return Ok((value, timing));
            }
            let drained = self
                .io
                .endpoint
                .borrow_mut()
                .blocking_next_deadline(true, Some(deadline));
            match drained {
                Ok((env, d)) => {
                    self.blocked += d;
                    route_envelope(&self.io, env);
                }
                Err(err) => {
                    sp.set_attr("timed_out", 1);
                    return Err(err);
                }
            }
        }
    }
}

impl<T: 'static> Drop for Request<T> {
    fn drop(&mut self) {
        // Unwinding (e.g. a peer's poison) must not double-panic.
        if std::thread::panicking() {
            return;
        }
        // Completed (result possibly already consumed by `wait`).
        if self.state.is_none() {
            return;
        }
        // One final deterministic, non-blocking completion attempt: a request
        // whose traffic already arrived completes and is discarded.
        if self.try_complete() {
            return;
        }
        panic!(
            "nonblocking {} request dropped before completion; call wait() (or drive test() to \
             readiness) on every request",
            self.what
        );
    }
}
