//! # dspgemm-mpi — an in-process MPI-like message-passing runtime
//!
//! The paper targets MPI on a 16-node cluster. This crate substitutes a
//! faithful in-process simulator: each *rank* is an OS thread, point-to-point
//! messages and collectives follow MPI semantics (source/tag matching,
//! communicator isolation, `split` for row/column sub-communicators), and
//! every transfer is metered so experiments can report exact communication
//! volume per rank and per category — the quantity the paper's algorithms
//! optimize.
//!
//! ## What is faithful
//! * **Semantics**: blocking `send`/`recv` with source+tag matching and
//!   non-overtaking order per (source, tag); collectives (barrier, bcast,
//!   gather/allgather, alltoallv, reduce/allreduce, merge-reduce) with the
//!   same call-order contract as MPI (SPMD: all ranks of a communicator call
//!   the same collectives in the same order); nonblocking operations
//!   (`isend`/`irecv`/`ibcast_shared`/`ialltoallv` returning [`Request`]
//!   handles with `wait`/`test`) whose progress happens inside blocking and
//!   polling calls, mirroring MPI's no-progress-thread model.
//! * **Cost structure**: message *counts* and *byte volumes* are exactly what
//!   a real MPI run would transfer (computed via [`dspgemm_util::WireSize`]);
//!   collective algorithms use the textbook trees (binomial bcast/reduce, ring
//!   allgather), so latency in units of communication rounds matches the
//!   paper's analysis (`O(sqrt(p) log p)` for the SpGEMM algorithms).
//! * **Failure behaviour**: a panicking rank poisons the network so peers
//!   fail fast instead of deadlocking.
//!
//! ## What is simulated
//! Payloads move by pointer, not by copying through a NIC, so absolute
//! transfer times are optimistic. All performance claims in the reproduction
//! are therefore *relative* (algorithm A vs. algorithm B under identical
//! simulation), mirroring how the paper reports its results, and are
//! accompanied by measured communication volumes.
//!
//! ## Example
//! ```
//! use dspgemm_mpi::{run, CommCategory};
//!
//! let sim = run(4, |comm| {
//!     // Everyone contributes rank*10; allreduce sums it.
//!     comm.allreduce(comm.rank() as u64 * 10, |a, b| a + b)
//! });
//! assert_eq!(sim.results, vec![60, 60, 60, 60]);
//! assert!(sim.stats.total_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm;
mod fault;
mod message;
mod network;
mod request;
mod runtime;
mod stats;
#[cfg(feature = "tcp-transport")]
pub mod tcp;
mod transport;

pub use comm::Comm;
pub use fault::{catch_comm, catch_comm_mut, CommError, DelaySpec, FaultPlan, TransientSpec};
pub use message::Tag;
pub use request::{Overlap, Request};
pub use runtime::{run, run_on, run_with_faults, SimOutput};
pub use stats::{CommCategory, CommStats, RankCommStats, NUM_CATEGORIES};
