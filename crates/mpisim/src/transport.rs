//! The transport seam: how envelopes leave a rank.
//!
//! Everything above this seam — tag/communicator matching, the progress
//! engine, collective trees, epoch screening, metering — is
//! backend-agnostic: an [`crate::network::Endpoint`] always *receives* from
//! a local channel inbox, and a [`Transport`] decides how a sent envelope
//! reaches the destination's inbox. The simulator's transport pushes the
//! envelope straight into the peer thread's channel; the TCP transport
//! (feature `tcp-transport`) writes a length-prefixed frame to the peer
//! process's socket, whose reader thread feeds the remote inbox.
//!
//! The seam also answers one policy question: [`Transport::encodes_to`]
//! tells the communicator layer whether a payload must be packed into
//! [`dspgemm_util::WireBytes`] before delivery. In-process delivery moves
//! the typed value by pointer (the simulator's zero-copy contract); a
//! remote process needs real bytes.

use crate::message::Envelope;
use crossbeam::channel::Sender;

/// Delivery failed because the destination rank is gone.
///
/// On the simulator this is fatal bookkeeping (a peer's inbox only closes
/// after a poison-panic elsewhere); on the TCP backend it is a live failure
/// signal that surfaces as [`crate::CommError::PeerFailed`].
#[derive(Debug)]
pub(crate) struct PeerGone;

/// The outgoing half of a rank's connection to the world.
pub(crate) enum Transport {
    /// In-process channel mesh: one sender handle per peer inbox.
    Local { peers: Vec<Sender<Envelope>> },
    /// Socket mesh to peer rank *processes* (feature `tcp-transport`).
    #[cfg(feature = "tcp-transport")]
    Tcp(crate::tcp::TcpLink),
}

impl Transport {
    /// Number of world ranks this transport can reach (including self).
    pub(crate) fn len(&self) -> usize {
        match self {
            Transport::Local { peers } => peers.len(),
            #[cfg(feature = "tcp-transport")]
            Transport::Tcp(link) => link.world(),
        }
    }

    /// Whether payloads destined for world rank `dst` must be wire-encoded
    /// ([`dspgemm_util::WireBytes`]) before [`Transport::deliver`].
    /// In-process delivery (the whole simulator, and a TCP rank's sends to
    /// itself) moves typed values by pointer and never encodes.
    pub(crate) fn encodes_to(&self, dst: usize) -> bool {
        let _ = dst;
        match self {
            Transport::Local { .. } => false,
            #[cfg(feature = "tcp-transport")]
            Transport::Tcp(link) => !link.is_self(dst),
        }
    }

    /// Delivers `env` to world rank `dst`'s inbox.
    pub(crate) fn deliver(&self, dst: usize, env: Envelope) -> Result<(), PeerGone> {
        match self {
            Transport::Local { peers } => peers[dst].send(env).map_err(|_| PeerGone),
            #[cfg(feature = "tcp-transport")]
            Transport::Tcp(link) => link.deliver(dst, env),
        }
    }
}
