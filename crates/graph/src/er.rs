//! Erdős–Rényi `G(n, m)` graphs: `m` uniformly random edges.
//!
//! Unskewed control workload for ablations (R-MAT's skew is what stresses
//! load balancing; ER isolates effects that are not skew-related).

use crate::Edge;
use dspgemm_util::rng::{Rng, Xoshiro256};

/// Generates `m` uniformly random directed edges on `n` vertices
/// (duplicates and self-loops possible, like the raw R-MAT stream).
pub fn generate(n: u32, m: usize, seed: u64) -> Vec<Edge> {
    assert!(n > 0);
    let mut rng = Xoshiro256::new(seed);
    (0..m)
        .map(|_| {
            (
                rng.gen_range(n as u64) as u32,
                rng.gen_range(n as u64) as u32,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_in_range_and_deterministic() {
        let e = generate(100, 1000, 4);
        assert_eq!(e.len(), 1000);
        assert!(e.iter().all(|&(u, v)| u < 100 && v < 100));
        assert_eq!(e, generate(100, 1000, 4));
    }

    #[test]
    fn roughly_uniform() {
        let n = 64u32;
        let m = 64_000;
        let e = generate(n, m, 5);
        let mut deg = vec![0usize; n as usize];
        for &(u, _) in &e {
            deg[u as usize] += 1;
        }
        let avg = m / n as usize;
        assert!(deg.iter().all(|&d| d > avg / 2 && d < avg * 2));
    }
}
