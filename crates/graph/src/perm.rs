//! Random index permutation for load balance.
//!
//! "The instances we use demonstrate significant imbalance without remapping.
//! To avoid load imbalance, we randomly permute input indices before
//! constructing each matrix." (Section VII-A). The same permutation is used
//! for our algorithms and for the baselines, exactly as in the paper.

use crate::Edge;
use dspgemm_util::rng::{random_permutation, Rng};

/// A bijective relabeling of `0..n`.
#[derive(Debug, Clone)]
pub struct Permutation {
    forward: Vec<u32>,
}

impl Permutation {
    /// The identity permutation.
    pub fn identity(n: usize) -> Self {
        Self {
            forward: (0..n as u32).collect(),
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        Self {
            forward: random_permutation(n, rng),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Image of index `i`.
    #[inline]
    pub fn apply(&self, i: u32) -> u32 {
        self.forward[i as usize]
    }

    /// Relabels both endpoints of every edge in place.
    pub fn apply_edges(&self, edges: &mut [Edge]) {
        for (u, v) in edges.iter_mut() {
            *u = self.forward[*u as usize];
            *v = self.forward[*v as usize];
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.forward.len()];
        for (i, &img) in self.forward.iter().enumerate() {
            inv[img as usize] = i as u32;
        }
        Permutation { forward: inv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_util::rng::SplitMix64;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(10);
        let mut e = vec![(1, 2), (3, 4)];
        p.apply_edges(&mut e);
        assert_eq!(e, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn random_is_bijection_and_invertible() {
        let mut rng = SplitMix64::new(6);
        let p = Permutation::random(1000, &mut rng);
        let inv = p.inverse();
        for i in 0..1000u32 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
    }

    #[test]
    fn apply_edges_relabels() {
        let mut rng = SplitMix64::new(7);
        let p = Permutation::random(50, &mut rng);
        let mut e = vec![(0, 1), (49, 0)];
        p.apply_edges(&mut e);
        assert_eq!(e, vec![(p.apply(0), p.apply(1)), (p.apply(49), p.apply(0))]);
    }
}
