//! The Table-I instance catalog, as scaled-down synthetic proxies.
//!
//! The paper evaluates on 12 real-world graphs between 86 M and 3 612 M
//! non-zeros (SNAP / Network Repository). Those archives are unavailable
//! offline and would not fit this machine, so each instance is substituted by
//! an **R-MAT proxy**: same name, class-appropriate skew, and sizes scaled
//! down by a configurable divisor while preserving the relative ordering and
//! the density (nnz/n) ratios of Table I. Every experiment that the paper
//! runs "on the real-world instances" runs on these proxies — identical code
//! paths (symmetrization, random permutation, batch draws), reduced scale.
//! The substitution is recorded in `DESIGN.md`.

use crate::rmat::{self, RmatParams};
use crate::{symmetrize, Edge};

/// Graph class, controlling the proxy's skew parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphClass {
    /// Online social networks (Graph500-level skew).
    Social,
    /// Web crawls (milder, broader tail).
    Web,
    /// Peer-to-peer networks (low skew).
    PeerToPeer,
}

impl GraphClass {
    /// R-MAT parameters for this class.
    pub fn params(self) -> RmatParams {
        match self {
            GraphClass::Social => RmatParams::GRAPH500,
            GraphClass::Web => RmatParams::WEB,
            GraphClass::PeerToPeer => RmatParams::P2P,
        }
    }
}

/// One catalog instance: a named workload with paper-reported sizes and the
/// derived proxy parameters.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Instance name as in Table I.
    pub name: &'static str,
    /// Source repository named in Table I.
    pub source: &'static str,
    /// Graph class (drives proxy skew).
    pub class: GraphClass,
    /// Paper-reported vertex count.
    pub paper_n: u64,
    /// Paper-reported non-zero count.
    pub paper_nnz: u64,
    /// Proxy vertex count (power of two, ≥ 1024).
    pub n: u32,
    /// Proxy directed edge draws (before symmetrization).
    pub m: usize,
    /// Per-instance generation seed.
    pub seed: u64,
}

impl InstanceSpec {
    /// log2 of the proxy vertex count.
    pub fn scale(&self) -> u32 {
        self.n.trailing_zeros()
    }

    /// Generates the proxy's raw directed edge stream.
    pub fn edges(&self) -> Vec<Edge> {
        rmat::generate(&self.class.params(), self.scale(), self.m, self.seed)
    }

    /// Generates the symmetrized (undirected) non-zero stream, as the paper
    /// constructs adjacency matrices.
    pub fn undirected_edges(&self) -> Vec<Edge> {
        symmetrize(&self.edges())
    }
}

/// Raw Table I rows: `(name, source, class, n, nnz)`.
const TABLE1: [(&str, &str, GraphClass, u64, u64); 12] = [
    (
        "LiveJournal",
        "SNAP",
        GraphClass::Social,
        4_000_000,
        86_000_000,
    ),
    ("orkut", "SNAP", GraphClass::Social, 3_000_000, 234_000_000),
    (
        "tech-p2p",
        "Network Repository",
        GraphClass::PeerToPeer,
        5_000_000,
        295_000_000,
    ),
    (
        "indochina",
        "Network Repository",
        GraphClass::Web,
        7_000_000,
        304_000_000,
    ),
    (
        "sinaweibo",
        "Network Repository",
        GraphClass::Social,
        58_000_000,
        522_000_000,
    ),
    (
        "uk2002",
        "Network Repository",
        GraphClass::Web,
        18_000_000,
        529_000_000,
    ),
    (
        "wikipedia",
        "Network Repository",
        GraphClass::Web,
        27_000_000,
        1_088_000_000,
    ),
    (
        "PayDomain",
        "Network Repository",
        GraphClass::Web,
        42_000_000,
        1_165_000_000,
    ),
    (
        "uk2005",
        "Network Repository",
        GraphClass::Web,
        39_000_000,
        1_581_000_000,
    ),
    (
        "webbase",
        "Network Repository",
        GraphClass::Web,
        118_000_000,
        1_736_000_000,
    ),
    (
        "twitter",
        "Network Repository",
        GraphClass::Social,
        41_000_000,
        2_405_000_000,
    ),
    (
        "friendster",
        "SNAP",
        GraphClass::Social,
        124_000_000,
        3_612_000_000,
    ),
];

/// Builds the catalog with sizes divided by `divisor` (vertex counts rounded
/// up to powers of two, minimum 1024 vertices / 4096 edge draws).
///
/// `divisor = 4096` (the default used by quick benches) yields proxies from
/// ~21 K to ~880 K non-zeros; `divisor = 512` stresses memory and is closer
/// to "large" for this machine.
pub fn instances_scaled(divisor: u64) -> Vec<InstanceSpec> {
    assert!(divisor >= 1);
    TABLE1
        .iter()
        .enumerate()
        .map(|(i, &(name, source, class, paper_n, paper_nnz))| {
            let n = ((paper_n / divisor).max(1024) as u32).next_power_of_two();
            // nnz counts both directions; draws are symmetrized later, so
            // halve. Enforce a floor so tiny proxies stay meaningful.
            let m = ((paper_nnz / divisor / 2).max(4096)) as usize;
            InstanceSpec {
                name,
                source,
                class,
                paper_n,
                paper_nnz,
                n,
                m,
                seed: 0xD5_00 + i as u64,
            }
        })
        .collect()
}

/// The default quick-bench catalog (`divisor = 4096`).
pub fn instances() -> Vec<InstanceSpec> {
    instances_scaled(4096)
}

/// A small sub-catalog (first `k` instances by size) for fast tests.
pub fn small_instances(k: usize) -> Vec<InstanceSpec> {
    instances_scaled(16384).into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_instances_ordered_by_paper_nnz() {
        let cat = instances();
        assert_eq!(cat.len(), 12);
        assert!(cat.windows(2).all(|w| w[0].paper_nnz <= w[1].paper_nnz));
        assert_eq!(cat[0].name, "LiveJournal");
        assert_eq!(cat[11].name, "friendster");
    }

    #[test]
    fn proxy_sizes_scale_with_divisor() {
        let big = instances_scaled(512);
        let small = instances_scaled(8192);
        for (b, s) in big.iter().zip(&small) {
            assert!(b.m >= s.m);
            assert!(b.n >= s.n);
        }
    }

    #[test]
    fn vertex_counts_power_of_two() {
        for spec in instances() {
            assert!(spec.n.is_power_of_two(), "{}: n={}", spec.name, spec.n);
            assert!(spec.n >= 1024);
            assert_eq!(1u32 << spec.scale(), spec.n);
        }
    }

    #[test]
    fn edges_generate_in_range_and_deterministic() {
        let spec = &small_instances(2)[0];
        let e1 = spec.edges();
        let e2 = spec.edges();
        assert_eq!(e1, e2);
        assert!(e1.iter().all(|&(u, v)| u < spec.n && v < spec.n));
        let und = spec.undirected_edges();
        assert!(und.len() >= e1.len() && und.len() <= 2 * e1.len());
    }

    #[test]
    fn distinct_seeds_per_instance() {
        let cat = instances();
        let mut seeds: Vec<u64> = cat.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }
}
