//! Batched update streams following the paper's experiment protocols.
//!
//! Section VII defines three draw protocols, reproduced here:
//!
//! * **Insertions** (Fig. 4): "we insert half of the non-zeros initially …
//!   afterwards, we insert randomly chosen non-zeros from the remaining half
//!   into the already existing matrix", in batches of `batch_size` per rank.
//! * **Updates / deletions** (Fig. 5): "we insert the full adjacency matrix
//!   initially (and only draw non-zeros for the update matrix from existing
//!   non-zeros)".
//! * **Dynamic SpGEMM** (Fig. 9/10): `A'` starts empty and grows by draws
//!   from the adjacency matrix; "each MPI process draws insertions
//!   individually, independently, and uniformly at random" with a shared
//!   seed protocol so every competitor sees identical updates.

use crate::Edge;
use dspgemm_util::rng::{Rng, SplitMix64, Xoshiro256};

/// Splits the non-zero stream into the initial half and the insertion pool
/// (deterministic shuffle, then halving — every rank computes the same
/// split).
pub fn split_for_insertion(mut edges: Vec<Edge>, seed: u64) -> (Vec<Edge>, Vec<Edge>) {
    let mut rng = SplitMix64::new(seed ^ 0x5EED_5711);
    rng.shuffle(&mut edges);
    let rest = edges.split_off(edges.len() / 2);
    (edges, rest)
}

/// Per-rank batched draws *without replacement* from a pool (used for the
/// insertion experiment: each batch inserts fresh non-zeros).
///
/// The pool is partitioned round-robin over ranks, then each rank consumes
/// its share in batch-sized chunks; total insertions are capped by the pool.
#[derive(Debug, Clone)]
pub struct BatchedPool {
    my_items: Vec<Edge>,
    cursor: usize,
    batch_size: usize,
}

impl BatchedPool {
    /// Creates rank `rank`-of-`p`'s view of the pool.
    pub fn new(pool: &[Edge], rank: usize, p: usize, batch_size: usize, seed: u64) -> Self {
        let mut my_items: Vec<Edge> = pool.iter().copied().skip(rank).step_by(p).collect();
        let mut rng = Xoshiro256::derive(seed, rank as u64);
        rng.shuffle(&mut my_items);
        Self {
            my_items,
            cursor: 0,
            batch_size,
        }
    }

    /// Next batch of at most `batch_size` fresh draws; empty when exhausted.
    pub fn next_batch(&mut self) -> Vec<Edge> {
        let end = (self.cursor + self.batch_size).min(self.my_items.len());
        let batch = self.my_items[self.cursor..end].to_vec();
        self.cursor = end;
        batch
    }

    /// Remaining draws.
    pub fn remaining(&self) -> usize {
        self.my_items.len() - self.cursor
    }
}

/// Per-rank batched draws *with replacement* from a pool (used for the
/// update/deletion experiments — draws come from existing non-zeros — and
/// for the dynamic SpGEMM experiments' insertion draws).
#[derive(Debug)]
pub struct ReplacementDraws {
    rng: Xoshiro256,
    batch_size: usize,
}

impl ReplacementDraws {
    /// Creates rank `rank`'s independent draw stream.
    pub fn new(batch_size: usize, seed: u64, rank: usize) -> Self {
        Self {
            rng: Xoshiro256::derive(seed, rank as u64),
            batch_size,
        }
    }

    /// Draws one batch of uniform samples from `pool`.
    pub fn next_batch(&mut self, pool: &[Edge]) -> Vec<Edge> {
        assert!(!pool.is_empty(), "cannot draw from an empty pool");
        (0..self.batch_size)
            .map(|_| pool[self.rng.gen_index(pool.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<Edge> {
        (0..n as u32).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn split_halves_and_covers() {
        let (first, second) = split_for_insertion(pool(101), 3);
        assert_eq!(first.len(), 50);
        assert_eq!(second.len(), 51);
        let mut all: Vec<Edge> = first.iter().chain(&second).copied().collect();
        all.sort_unstable();
        assert_eq!(all, pool(101));
        // Deterministic.
        let (f2, s2) = split_for_insertion(pool(101), 3);
        assert_eq!(first, f2);
        assert_eq!(second, s2);
    }

    #[test]
    fn batched_pool_partitions_without_replacement() {
        let src = pool(100);
        let p = 4;
        let mut seen: Vec<Edge> = Vec::new();
        for rank in 0..p {
            let mut bp = BatchedPool::new(&src, rank, p, 7, 11);
            assert_eq!(bp.remaining(), 25);
            loop {
                let b = bp.next_batch();
                if b.is_empty() {
                    break;
                }
                assert!(b.len() <= 7);
                seen.extend(b);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, src, "ranks jointly cover the pool exactly once");
    }

    #[test]
    fn batched_pool_batches_are_deterministic() {
        let src = pool(50);
        let mut a = BatchedPool::new(&src, 1, 2, 5, 42);
        let mut b = BatchedPool::new(&src, 1, 2, 5, 42);
        assert_eq!(a.next_batch(), b.next_batch());
        assert_eq!(a.next_batch(), b.next_batch());
    }

    #[test]
    fn replacement_draws_from_pool() {
        let src = pool(10);
        let mut d = ReplacementDraws::new(100, 5, 0);
        let batch = d.next_batch(&src);
        assert_eq!(batch.len(), 100);
        assert!(batch.iter().all(|e| src.contains(e)));
        // Independent streams per rank.
        let mut d2 = ReplacementDraws::new(100, 5, 1);
        assert_ne!(d.next_batch(&src), d2.next_batch(&src));
    }
}
