//! # dspgemm-graph — graph generators, the instance catalog, update streams
//!
//! Workload generation for the experiments:
//!
//! * [`rmat`] — the R-MAT recursive matrix generator with Graph500
//!   parameters, used by the paper's synthetic scaling experiments (Fig. 8).
//! * [`er`] — Erdős–Rényi `G(n, m)` graphs (uniform non-zeros), useful as an
//!   unskewed control in ablations.
//! * [`catalog`] — the 12 real-world instances of Table I, substituted by
//!   scaled-down R-MAT proxies with per-class skew (see `DESIGN.md`:
//!   downloading the multi-billion-edge originals is not possible offline;
//!   the proxies preserve the heavy-tailed degree structure and the relative
//!   size ordering).
//! * [`perm`] — the random index permutation the paper applies before
//!   construction to balance load over the 2D grid.
//! * [`stream`] — batched update draws following the experiment protocols of
//!   Section VII (insertion / update / deletion batches, per-rank draws).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod er;
pub mod perm;
pub mod rmat;
pub mod stream;

/// A directed edge / matrix coordinate pair.
pub type Edge = (u32, u32);

/// Symmetrizes a directed edge list: for every `(u, v)` also emit `(v, u)`
/// (the paper reads all graphs as undirected: "for an edge {u,v} in the
/// input data, we add non-zeros (u,v) and (v,u)"). Self-loops are emitted
/// once. No deduplication — matrix construction combines duplicates.
pub fn symmetrize(edges: &[Edge]) -> Vec<Edge> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        out.push((u, v));
        if u != v {
            out.push((v, u));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrize_doubles_non_loops() {
        let e = vec![(0, 1), (2, 2), (3, 4)];
        let s = symmetrize(&e);
        assert_eq!(s.len(), 5);
        assert!(s.contains(&(1, 0)));
        assert!(s.contains(&(4, 3)));
        assert_eq!(s.iter().filter(|&&(u, v)| u == 2 && v == 2).count(), 1);
    }
}
