//! R-MAT recursive matrix graphs.
//!
//! The paper's synthetic scaling experiments (Fig. 8) "use the same R-MAT
//! parameters as the Graph500 benchmark": quadrant probabilities
//! `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` on a `2^scale × 2^scale`
//! adjacency matrix. Each edge is drawn independently by descending `scale`
//! levels of the recursion, choosing a quadrant per level.

use crate::Edge;
use dspgemm_util::rng::{Rng, Xoshiro256};

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 parameters used by the paper.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// A milder skew (closer to uniform) for web-like proxies with broader
    /// but still heavy-tailed degree distributions.
    pub const WEB: RmatParams = RmatParams {
        a: 0.62,
        b: 0.17,
        c: 0.17,
    };

    /// Low skew, for peer-to-peer-like proxies.
    pub const P2P: RmatParams = RmatParams {
        a: 0.45,
        b: 0.22,
        c: 0.22,
    };

    /// The implied bottom-right probability `d = 1 - a - b - c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Draws one R-MAT edge on a `2^scale` vertex domain.
#[inline]
pub fn rmat_edge(params: &RmatParams, scale: u32, rng: &mut impl Rng) -> Edge {
    let mut u = 0u32;
    let mut v = 0u32;
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r = rng.gen_f64();
        if r < params.a {
            // top-left: no bits set
        } else if r < ab {
            v |= 1;
        } else if r < abc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

/// Generates `m` R-MAT edges on `2^scale` vertices (directed, duplicates and
/// self-loops possible — like Graph500's raw edge stream).
pub fn generate(params: &RmatParams, scale: u32, m: usize, seed: u64) -> Vec<Edge> {
    assert!(scale <= 31, "scale too large for u32 vertex ids");
    let mut rng = Xoshiro256::new(seed);
    (0..m).map(|_| rmat_edge(params, scale, &mut rng)).collect()
}

/// Generates the rank-local slice of a distributed R-MAT stream: rank `r` of
/// `p` draws `m_local` edges from an independent, deterministic stream — the
/// protocol of the paper's scaling experiments ("each MPI process generates
/// 2^30/p non-zeros according to the R-MAT model").
pub fn generate_local(
    params: &RmatParams,
    scale: u32,
    m_local: usize,
    seed: u64,
    rank: u64,
) -> Vec<Edge> {
    assert!(scale <= 31, "scale too large for u32 vertex ids");
    let mut rng = Xoshiro256::derive(seed, rank);
    (0..m_local)
        .map(|_| rmat_edge(params, scale, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_in_range() {
        let edges = generate(&RmatParams::GRAPH500, 10, 5000, 1);
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|&(u, v)| u < 1024 && v < 1024));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate(&RmatParams::GRAPH500, 12, 1000, 7);
        let b = generate(&RmatParams::GRAPH500, 12, 1000, 7);
        let c = generate(&RmatParams::GRAPH500, 12, 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_degree_distribution() {
        // Graph500 params concentrate mass on low ids: vertex 0's out-degree
        // should far exceed the average.
        let scale = 12;
        let m = 100_000;
        let edges = generate(&RmatParams::GRAPH500, scale, m, 3);
        let mut deg = vec![0usize; 1 << scale];
        for &(u, _) in &edges {
            deg[u as usize] += 1;
        }
        let avg = m as f64 / (1 << scale) as f64;
        assert!(deg[0] as f64 > 20.0 * avg, "deg[0]={} avg={avg}", deg[0]);
        // And the median vertex should be far below average (heavy tail).
        let mut sorted = deg.clone();
        sorted.sort_unstable();
        assert!(sorted[1 << (scale - 1)] as f64 <= avg);
    }

    #[test]
    fn local_streams_disjoint_and_deterministic() {
        let a0 = generate_local(&RmatParams::GRAPH500, 10, 500, 9, 0);
        let a1 = generate_local(&RmatParams::GRAPH500, 10, 500, 9, 1);
        assert_eq!(a0, generate_local(&RmatParams::GRAPH500, 10, 500, 9, 0));
        assert_ne!(a0, a1);
    }

    #[test]
    fn params_d_complement() {
        assert!((RmatParams::GRAPH500.d() - 0.05).abs() < 1e-12);
    }
}
