//! Distributed masked SpGEMM: evaluate a product only at candidate positions.
//!
//! Computes `(A · B) ∘ M` where `M` is a per-rank output mask over this
//! rank's block of the product. The round structure is sparse SUMMA's
//! (operand blocks still travel — the mask cannot prune *communication*,
//! because a masked entry may draw contributions from every inner block),
//! but the local kernel is [`masked_spgemm_bloom_with`], so *compute* is pruned
//! to `O(flops reaching masked positions)` — the Section VI-B trade
//! rebuilt-hash-table-vs-broadcast observation applies unchanged.
//!
//! The analytics layer uses this to bootstrap candidate-pair views
//! (link-prediction scores over a fixed candidate set) whose per-batch
//! refresh is then served from the maintained product's change feed.

use dspgemm_core::distmat::DistMat;
use dspgemm_core::exec::Exec;
use dspgemm_core::grid::Grid;
use dspgemm_core::phase;
use dspgemm_sparse::masked_mm::{masked_spgemm_bloom_with, MaskSet};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Csr, Dcsr};
use dspgemm_util::stats::PhaseTimer;
use std::sync::Arc;

/// Computes this rank's masked product block `(A · B) ∘ mask` with fused
/// Bloom tracking; entries carry `(value, bits)`. `mask` uses block-local
/// coordinates of this rank's `C` block. Returns the block plus the local
/// flop count. Collective over the grid.
pub fn masked_product<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    mask: &MaskSet,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    masked_product_exec::<S>(grid, a, b, mask, &Exec::new(threads), timer)
}

/// [`masked_product`] under an explicit [`Exec`] — the session's view
/// refreshes run here, so candidate-pair rescans lease the session's pooled
/// workspaces and report their per-thread flop split.
pub fn masked_product_exec<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    mask: &MaskSet,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    assert_eq!(
        a.info().ncols,
        b.info().nrows,
        "global dimension mismatch in masked product"
    );
    let q = grid.q();
    let (i, j) = grid.coords();
    let a_local: Arc<Csr<S::Elem>> = a.block_csr_shared();
    let b_local: Arc<Csr<S::Elem>> = b.block_csr_shared();
    let mut acc: Option<Dcsr<(S::Elem, u64)>> = None;
    let mut flops = 0u64;
    let combine = |x: (S::Elem, u64), y: (S::Elem, u64)| (S::add(x.0, y.0), x.1 | y.1);
    for k in 0..q {
        let a_blk: Arc<Csr<S::Elem>> = timer.time(phase::BCAST, || {
            grid.row_comm().bcast_shared(
                k,
                if j == k {
                    Some(Arc::clone(&a_local))
                } else {
                    None
                },
            )
        });
        let b_blk: Arc<Csr<S::Elem>> = timer.time(phase::BCAST, || {
            grid.col_comm().bcast_shared(
                k,
                if i == k {
                    Some(Arc::clone(&b_local))
                } else {
                    None
                },
            )
        });
        let k_offset = a.info().layout().col_start(k);
        let part = timer.time(phase::LOCAL_MULT, || {
            masked_spgemm_bloom_with::<S, _, _>(&*a_blk, &*b_blk, mask, k_offset, exec.fused())
        });
        timer.add_thread_flops(&part.thread_flops);
        flops += part.flops;
        acc = Some(match acc {
            None => part.result,
            Some(prev) => Dcsr::merge_with(&prev, &part.result, combine),
        });
    }
    let block = acc.unwrap_or_else(|| Dcsr::empty(a.info().local_rows(), b.info().local_cols()));
    (block, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_core::summa::summa;
    use dspgemm_mpi::run;
    use dspgemm_sparse::semiring::U64Plus;
    use dspgemm_sparse::{Index, RowScan, Triple};
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    #[test]
    fn masked_product_matches_summa_at_masked_positions() {
        let n: Index = 26;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = |s: u64| {
                    if comm.rank() == 0 {
                        random_triples(s, n, 130)
                    } else {
                        vec![]
                    }
                };
                let a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
                let b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
                let (c_full, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
                // Mask = every third entry of the full product's local block.
                let mut mask = MaskSet::default();
                let mut picked = Vec::new();
                let mut idx = 0usize;
                c_full.block().scan_rows(|r, cols, vals| {
                    for (&cc, &v) in cols.iter().zip(vals) {
                        if idx.is_multiple_of(3) {
                            mask.insert(r, cc);
                            picked.push((r, cc, v));
                        }
                        idx += 1;
                    }
                });
                // Plus a masked position the product never touches.
                mask.insert(0, 0);
                let empty_probe_in_product = c_full.block().get(0, 0).is_some();
                let (got, flops) = masked_product::<U64Plus>(&grid, &a, &b, &mask, 2, &mut timer);
                // Every picked entry reproduced exactly.
                let mut got_map = std::collections::BTreeMap::new();
                got.scan_rows(|r, cols, vals| {
                    for (&cc, &(v, bits)) in cols.iter().zip(vals) {
                        assert_ne!(bits, 0);
                        got_map.insert((r, cc), v);
                    }
                });
                let all_match = picked
                    .iter()
                    .all(|&(r, cc, v)| got_map.get(&(r, cc)) == Some(&v));
                // Nothing outside the mask is produced.
                let within = got_map.keys().all(|&(r, cc)| mask.contains(r, cc));
                let probe_ok = empty_probe_in_product || !got_map.contains_key(&(0, 0));
                (all_match, within, probe_ok, flops)
            });
            for &(all_match, within, probe_ok, _) in &out.results {
                assert!(all_match && within && probe_ok, "p={p}");
            }
        }
    }
}
