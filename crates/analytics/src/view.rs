//! The maintained-view abstraction.
//!
//! A view is a derived quantity over the session's dynamic graph (triangle
//! counts, link-prediction scores, degree/frontier vectors, …) that must stay
//! fresh as update batches stream in. Views never redistribute updates
//! themselves: the session redistributes each batch **once** into hypersparse
//! update matrices and hands every registered view the same shared artifacts
//! — the update block before application ([`PendingBatch`]) and the product
//! delta after it ([`BatchDelta`]) — so per-view refresh cost is decoupled
//! from per-batch communication cost.
//!
//! ## Collective discipline
//!
//! Sessions are SPMD objects: every rank registers the same views in the
//! same order and applies the same batches. View callbacks may therefore use
//! collectives (and the built-in views do — typically one small allreduce
//! per refresh); the fixed registry order keeps the collective call sequence
//! identical on all ranks.

use dspgemm_core::distmat::DistMat;
use dspgemm_core::dyn_general::PreparedGeneral;
use dspgemm_core::exec::Exec;
use dspgemm_core::grid::Grid;
use dspgemm_core::DistDcsr;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::Dcsr;
use std::any::Any;
use std::sync::Arc;

/// A frozen, immutable reading of one view's state, captured into a
/// published session epoch (see
/// [`SessionSnapshot`](crate::snapshot::SessionSnapshot)). Downcast with
/// [`SessionSnapshot::view_as`](crate::snapshot::SessionSnapshot::view_as)
/// to the view's documented reading type (e.g.
/// [`TriangleReading`](crate::views::triangles::TriangleReading)).
pub type FrozenView = Arc<dyn Any + Send + Sync>;

/// Read access to the session state handed to view callbacks.
pub struct ViewCx<'a, S: Semiring> {
    /// The process grid (for collectives).
    pub grid: &'a Grid,
    /// The adjacency matrix — *old* in `pre_batch`, *new* in `post_batch`.
    pub a: &'a DistMat<S::Elem>,
    /// The maintained product `C = A·A` — old/new like `a`.
    pub c: &'a DistMat<S::Elem>,
    /// The session's local compute configuration: views that multiply
    /// (masked rescans) lease the session's pooled workspaces through it.
    pub exec: &'a Exec<S>,
    /// Intra-rank worker threads (`= exec.threads`; kept for the
    /// vector-shaped views whose `spmv` kernels take a bare thread count).
    pub threads: usize,
}

/// A redistributed-but-unapplied batch: the view's chance to observe state
/// that is about to change (e.g. which update positions are new edges).
pub enum PendingBatch<'a, S: Semiring> {
    /// Algebraic insertions `A' = A + A*`.
    Algebraic {
        /// This rank's block of `A*` (block-local indices).
        star: &'a DistDcsr<S::Elem>,
    },
    /// General sets/deletes.
    General {
        /// This rank's prepared MERGE/MASK/pattern blocks.
        prep: &'a PreparedGeneral<S::Elem>,
    },
}

/// The shared change feed after a batch was applied.
pub enum BatchDelta<'a, S: Semiring> {
    /// Algebraic batch: `C* = A*·A' + A·A*` was *added* into `C`.
    Algebraic {
        /// This rank's `A*` block.
        star: &'a DistDcsr<S::Elem>,
        /// This rank's `C*` block: `(value delta, Bloom bits)` per entry.
        cstar: &'a Dcsr<(S::Elem, u64)>,
    },
    /// General batch: the masked positions of `C` were recomputed/deleted.
    General {
        /// This rank's prepared update blocks.
        prep: &'a PreparedGeneral<S::Elem>,
        /// The recomputed positions (`C*` pattern with Bloom bits).
        cstar_pattern: &'a Dcsr<u64>,
    },
}

/// A maintained analytics view. See the module docs for the callback
/// protocol and collective discipline.
pub trait View<S: Semiring>: 'static {
    /// Human-readable name (diagnostics and reports).
    fn name(&self) -> &str;

    /// Computes the initial state from the current `A` and `C`. Called once
    /// when the view is registered. Collective.
    fn bootstrap(&mut self, cx: &ViewCx<'_, S>);

    /// Observes a redistributed batch *before* it is applied (`cx` still
    /// shows the old state). Collective. Default: no-op.
    fn pre_batch(&mut self, _cx: &ViewCx<'_, S>, _pending: &PendingBatch<'_, S>) {}

    /// Refreshes the view *after* the batch was applied (`cx` shows the new
    /// state, `delta` the shared change feed). Collective.
    fn post_batch(&mut self, cx: &ViewCx<'_, S>, delta: &BatchDelta<'_, S>);

    /// Captures an immutable reading of the current state for epoch
    /// publishing — pinned readers query the frozen reading while the live
    /// view keeps refreshing. Local-only (no collectives): the session
    /// publishes after every batch and a collective here would tax every
    /// batch. Views with non-trivial state should keep the reading behind
    /// an `Arc` cache (invalidated on refresh) so an unchanged view is
    /// re-shared into the next epoch by refcount, like the matrix blocks.
    /// Default: a unit reading (the view is not snapshot-queryable).
    fn freeze(&mut self) -> FrozenView {
        Arc::new(())
    }

    /// Downcast support for typed access through the session registry.
    fn as_any(&self) -> &dyn Any;
}

/// Stable handle to a registered view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewId(pub(crate) u64);
