//! The built-in maintained views.
//!
//! | view | shape | refresh cost per batch |
//! |---|---|---|
//! | [`TriangleCountView`] | scalar | `O(nnz(C*) + batch)` local + 1 allreduce (incremental); `O(nnz(A)/p)` rescan fallback on general batches |
//! | [`CommonNeighborsView`] | candidate map | `O(nnz(C*))` mask probes, no communication |
//! | [`DegreeView`] / [`KHopView`] | vector | one (or `k`) SpMV sweeps |

pub mod common_neighbors;
pub mod triangles;
pub mod vector;

pub use common_neighbors::CommonNeighborsView;
pub use triangles::TriangleCountView;
pub use vector::{DegreeView, KHopView};
