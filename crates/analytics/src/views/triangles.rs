//! Maintained triangle counting.
//!
//! For a simple undirected graph stored as a 0/1 adjacency matrix `A` over
//! `(+, ·)`, the triangle count is `(Σ_{(u,v) ∈ A} c_{u,v}) / 6` with
//! `C = A·A` — the masked sum evaluates `tr(A³)` while every `A` entry and
//! its matching `C` entry live in the *same* local block, so the sum is
//! embarrassingly local and needs one scalar allreduce.
//!
//! The view maintains the masked sum **incrementally**: an algebraic batch
//! changes it by
//!
//! ```text
//! ΔS = Σ_{p ∈ pattern(A_old) ∩ C*} c*_p  +  Σ_{p ∈ new edges} c'_p
//! ```
//!
//! both sums local over the shared `C*` delta and the (hypersparse) batch —
//! `O(nnz(C*) + batch)` work instead of the `O(nnz(A))` full rescan, which
//! is kept as the fallback for general batches (deletions invalidate the
//! additive decomposition because `C* `carries patterns, not value deltas).

use crate::view::{BatchDelta, FrozenView, PendingBatch, View, ViewCx};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Index, RowScan};
use dspgemm_util::FxHashSet;
use std::any::Any;
use std::sync::Arc;

/// The frozen reading of a [`TriangleCountView`] inside a published epoch:
/// the maintained count at publish time, immutable forever after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriangleReading {
    masked_sum: u64,
}

impl TriangleReading {
    /// The triangle count at the pinned epoch.
    #[inline]
    pub fn count(&self) -> u64 {
        self.masked_sum / 6
    }

    /// The raw masked sum at the pinned epoch (each triangle counted 6
    /// times).
    #[inline]
    pub fn masked_sum(&self) -> u64 {
        self.masked_sum
    }
}

#[inline]
fn pack(r: Index, c: Index) -> u64 {
    ((r as u64) << 32) | c as u64
}

/// Maintained global triangle count over a `u64`-valued session (unit edge
/// weights assumed; see the module docs).
#[derive(Debug, Default)]
pub struct TriangleCountView {
    /// Global masked sum `Σ_{(u,v) ∈ A} c_{u,v}` (agreed on all ranks).
    masked_sum: u64,
    /// Block-local positions of the pending batch absent from the old `A`.
    pending_new: FxHashSet<u64>,
    /// Refreshes served by the incremental path.
    pub incremental_refreshes: u64,
    /// Refreshes that fell back to the full local rescan.
    pub full_refreshes: u64,
}

impl TriangleCountView {
    /// A fresh, unregistered view.
    pub fn new() -> Self {
        Self::default()
    }

    /// The maintained triangle count.
    #[inline]
    pub fn count(&self) -> u64 {
        self.masked_sum / 6
    }

    /// The raw maintained masked sum (each triangle counted 6 times).
    #[inline]
    pub fn masked_sum(&self) -> u64 {
        self.masked_sum
    }

    fn full_rescan<S: Semiring<Elem = u64>>(&mut self, cx: &ViewCx<'_, S>) {
        let mut local = 0u64;
        cx.a.block().scan_rows(|r, cols, _| {
            for &cc in cols {
                local = local.wrapping_add(cx.c.block().get(r, cc).unwrap_or(0));
            }
        });
        self.masked_sum = cx.grid.world().allreduce(local, u64::wrapping_add);
        self.full_refreshes += 1;
    }
}

impl<S: Semiring<Elem = u64>> View<S> for TriangleCountView {
    fn name(&self) -> &str {
        "triangle-count"
    }

    fn bootstrap(&mut self, cx: &ViewCx<'_, S>) {
        self.full_rescan(cx);
        // Bootstrap is not a refresh.
        self.full_refreshes -= 1;
    }

    fn pre_batch(&mut self, cx: &ViewCx<'_, S>, pending: &PendingBatch<'_, S>) {
        self.pending_new.clear();
        if let PendingBatch::Algebraic { star } = pending {
            // Record which update positions are brand-new edges while the
            // old A is still observable.
            for (r, cols, _) in star.block().iter_rows() {
                for &cc in cols {
                    if cx.a.block().get(r, cc).is_none() {
                        self.pending_new.insert(pack(r, cc));
                    }
                }
            }
        }
    }

    fn post_batch(&mut self, cx: &ViewCx<'_, S>, delta: &BatchDelta<'_, S>) {
        match delta {
            BatchDelta::Algebraic { cstar, .. } => {
                let mut local = 0u64;
                // Old edges whose product entry moved: add the value delta.
                cstar.scan_rows(|r, cols, vals| {
                    for (&cc, &(dv, _)) in cols.iter().zip(vals) {
                        if !self.pending_new.contains(&pack(r, cc))
                            && cx.a.block().get(r, cc).is_some()
                        {
                            local = local.wrapping_add(dv);
                        }
                    }
                });
                // New edges: their full (post-update) product entry joins
                // the mask.
                for &p in &self.pending_new {
                    let (r, cc) = ((p >> 32) as Index, (p & 0xFFFF_FFFF) as Index);
                    local = local.wrapping_add(cx.c.block().get(r, cc).unwrap_or(0));
                }
                let total = cx.grid.world().allreduce(local, u64::wrapping_add);
                self.masked_sum = self.masked_sum.wrapping_add(total);
                self.incremental_refreshes += 1;
            }
            BatchDelta::General { .. } => {
                // Deletions change the mask *and* replace (rather than
                // increment) product values; recount from scratch — still
                // local work plus one allreduce.
                self.full_rescan(cx);
            }
        }
        self.pending_new.clear();
    }

    fn freeze(&mut self) -> FrozenView {
        // A `Copy` scalar: nothing worth caching.
        Arc::new(TriangleReading {
            masked_sum: self.masked_sum,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
