//! Maintained common-neighbor / link-prediction scores over candidate pairs.
//!
//! For an unweighted undirected graph, `(A·A)_{u,v}` is the number of common
//! neighbors of `u` and `v` — the classic link-prediction score. The view
//! tracks a *fixed candidate set* of `(u, v)` pairs (e.g. non-edges proposed
//! by a recommender): registration evaluates the candidates with one
//! masked product ([`mod@crate::masked_product`], built on the
//! `sparse::masked_mm` kernel, pruning local flops to candidate rows);
//! afterwards each batch refreshes only the candidates that the shared `C*`
//! delta proves changed — `O(nnz(C*))` mask probes and `O(1)` lookups into
//! the maintained product, no extra communication at all.

use crate::masked_product::masked_product_exec;
use crate::view::{BatchDelta, FrozenView, View, ViewCx};
use dspgemm_core::grid::{owner_block, Grid};
use dspgemm_core::Layout;
use dspgemm_sparse::masked_mm::MaskSet;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Index, RowScan};
use dspgemm_util::stats::PhaseTimer;
use dspgemm_util::FxHashMap;
use std::any::Any;
use std::sync::Arc;

#[inline]
fn pack(u: Index, v: Index) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// The frozen reading of a [`CommonNeighborsView`] inside a published
/// epoch: this rank's candidate scores at publish time, behind an `Arc`
/// shared with the view's freeze cache — pinning and querying copy no
/// score data. The merge collectives ([`ScoreReading::top_k`]) work
/// exactly like the live view's, but against the pinned scores.
#[derive(Debug, Clone)]
pub struct ScoreReading<S: Semiring> {
    local: Arc<Vec<(Index, Index, S::Elem)>>,
}

impl<S: Semiring> ScoreReading<S> {
    /// Locally-owned candidates with a structurally non-zero score at the
    /// pinned epoch, as `(u, v, score)`.
    pub fn local_scores(&self) -> &[(Index, Index, S::Elem)] {
        &self.local
    }

    /// The `k` best-scoring candidates at the pinned epoch (same contract
    /// as [`CommonNeighborsView::top_k`]). Collective; all ranks must hold
    /// the same epoch.
    pub fn top_k(
        &self,
        grid: &Grid,
        k: usize,
        rank_of: impl Fn(&S::Elem) -> f64,
    ) -> Vec<(Index, Index, S::Elem)> {
        merge_topk::<S>(grid, Arc::clone(&self.local), k, rank_of)
    }
}

/// The shared zero-copy allgather merge behind live and pinned `top_k`:
/// the ring moves the `Arc` handle, never a copy of the score list.
fn merge_topk<S: Semiring>(
    grid: &Grid,
    mine: Arc<Vec<(Index, Index, S::Elem)>>,
    k: usize,
    rank_of: impl Fn(&S::Elem) -> f64,
) -> Vec<(Index, Index, S::Elem)> {
    let mut all: Vec<(Index, Index, S::Elem)> = grid
        .world()
        .allgather_shared(mine)
        .iter()
        .flat_map(|part| part.iter().copied())
        .collect();
    all.sort_unstable_by(|(ua, va, sa), (ub, vb, sb)| {
        rank_of(sb)
            .partial_cmp(&rank_of(sa))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then((ua, va).cmp(&(ub, vb)))
    });
    all.truncate(k);
    all
}

/// Maintained `(A·A)_{u,v}` scores for a fixed, replicated candidate set.
pub struct CommonNeighborsView<S: Semiring> {
    /// The global candidate pairs (identical on every rank).
    candidates: Vec<(Index, Index)>,
    /// Block-local mask over this rank's owned candidates.
    local_mask: MaskSet,
    /// The product layout the masks and scores were built against (captured
    /// at bootstrap; point lookups route owners by it, so they stay correct
    /// when the session runs under rebalanced cuts).
    layout: Option<Arc<Layout>>,
    /// Packed global pair → current score, for locally-owned candidates
    /// whose product entry is structurally present.
    scores: FxHashMap<u64, S::Elem>,
    /// Cached frozen reading, rebuilt only after the scores change — an
    /// unchanged view is re-shared into the next epoch by refcount.
    frozen: Option<FrozenView>,
    /// Local flops spent by the bootstrap masked product.
    pub bootstrap_flops: u64,
    /// Candidate scores refreshed across all batches (diagnostics).
    pub refreshed_entries: u64,
}

impl<S: Semiring> CommonNeighborsView<S> {
    /// A view over the given candidate pairs. `candidates` must be identical
    /// on every rank (each rank serves the pairs its block owns).
    pub fn new(candidates: Vec<(Index, Index)>) -> Self {
        Self {
            candidates,
            local_mask: MaskSet::default(),
            layout: None,
            scores: FxHashMap::default(),
            frozen: None,
            bootstrap_flops: 0,
            refreshed_entries: 0,
        }
    }

    /// The candidate set.
    pub fn candidates(&self) -> &[(Index, Index)] {
        &self.candidates
    }

    /// Locally-owned candidates with a structurally non-zero score, as
    /// `(u, v, score)` (arbitrary order).
    pub fn local_scores(&self) -> impl Iterator<Item = (Index, Index, S::Elem)> + '_ {
        self.scores
            .iter()
            .map(|(&p, &s)| ((p >> 32) as Index, (p & 0xFFFF_FFFF) as Index, s))
    }

    /// Collective point lookup of one candidate's score (`None`: the pair is
    /// not a candidate or its product entry is structurally zero). Every
    /// rank returns the same value; one single-element broadcast.
    pub fn score(&self, grid: &Grid, n: Index, u: Index, v: Index) -> Option<S::Elem> {
        let (bi, bj) = match &self.layout {
            Some(l) => (l.row_owner(u).0, l.col_owner(v).0),
            None => (owner_block(n, grid.q(), u).0, owner_block(n, grid.q(), v).0),
        };
        let owner = grid.rank_of(bi, bj);
        let mine = if grid.world().rank() == owner {
            Some(self.scores.get(&pack(u, v)).copied())
        } else {
            None
        };
        grid.world().bcast(owner, mine)
    }

    /// The `k` best-scoring candidates under `rank_of` (greater is better,
    /// ties broken by pair order). One allgather of the per-rank score
    /// lists; every rank returns the same list. Candidates with structurally
    /// zero scores never appear. Collective.
    pub fn top_k(
        &self,
        grid: &Grid,
        k: usize,
        rank_of: impl Fn(&S::Elem) -> f64,
    ) -> Vec<(Index, Index, S::Elem)> {
        // Zero-copy merge: the ring moves `Arc` handles of the per-rank
        // score lists, never deep-cloning a list on a forward.
        merge_topk::<S>(grid, Arc::new(self.local_scores().collect()), k, rank_of)
    }

    /// Refreshes one owned candidate from the maintained product.
    fn refresh_at(&mut self, cx: &ViewCx<'_, S>, lr: Index, lc: Index) {
        let info = cx.c.info();
        let (gu, gv) = info.to_global(lr, lc);
        match cx.c.block().get(lr, lc) {
            Some(v) => {
                self.scores.insert(pack(gu, gv), v);
            }
            None => {
                self.scores.remove(&pack(gu, gv));
            }
        }
        self.frozen = None;
        self.refreshed_entries += 1;
    }
}

impl<S: Semiring> View<S> for CommonNeighborsView<S> {
    fn name(&self) -> &str {
        "common-neighbors"
    }

    fn bootstrap(&mut self, cx: &ViewCx<'_, S>) {
        // Which candidates does this rank's product block own?
        let info = cx.c.info();
        self.layout = Some(Arc::clone(info.layout()));
        self.local_mask = MaskSet::from_pairs(
            self.candidates
                .iter()
                .filter(|&&(u, v)| info.row_range.contains(&u) && info.col_range.contains(&v))
                .map(|&(u, v)| info.to_local(u, v)),
        );
        // Evaluate them with one masked product (flops pruned to candidate
        // rows; see crate::masked_product for the communication trade).
        let mut timer = PhaseTimer::new();
        let (block, flops) =
            masked_product_exec::<S>(cx.grid, cx.a, cx.a, &self.local_mask, cx.exec, &mut timer);
        self.bootstrap_flops = flops;
        self.scores.clear();
        self.frozen = None;
        block.scan_rows(|lr, cols, vals| {
            for (&lc, &(v, _)) in cols.iter().zip(vals) {
                let (gu, gv) = info.to_global(lr, lc);
                self.scores.insert(pack(gu, gv), v);
            }
        });
    }

    fn post_batch(&mut self, cx: &ViewCx<'_, S>, delta: &BatchDelta<'_, S>) {
        // The shared C* delta names every product position that changed;
        // probe it against the candidate mask and re-read survivors.
        let mut touched: Vec<(Index, Index)> = Vec::new();
        match delta {
            BatchDelta::Algebraic { cstar, .. } => cstar.scan_rows(|lr, cols, _| {
                for &lc in cols {
                    if self.local_mask.contains(lr, lc) {
                        touched.push((lr, lc));
                    }
                }
            }),
            BatchDelta::General { cstar_pattern, .. } => cstar_pattern.scan_rows(|lr, cols, _| {
                for &lc in cols {
                    if self.local_mask.contains(lr, lc) {
                        touched.push((lr, lc));
                    }
                }
            }),
        }
        for (lr, lc) in touched {
            self.refresh_at(cx, lr, lc);
        }
    }

    fn freeze(&mut self) -> FrozenView {
        // Rebuilt only when a batch actually touched a candidate score;
        // otherwise the cached reading is re-shared by refcount.
        if self.frozen.is_none() {
            let mut local: Vec<(Index, Index, S::Elem)> = self.local_scores().collect();
            local.sort_unstable_by_key(|&(u, v, _)| (u, v));
            self.frozen = Some(Arc::new(ScoreReading::<S> {
                local: Arc::new(local),
            }));
        }
        self.frozen.clone().expect("cache filled above")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
