//! Vector-shaped views: degrees and k-hop frontiers via distributed SpMV.
//!
//! Both views are thin maintained wrappers over
//! [`dspgemm_core::spmv`]: a refresh is one (or `k`) SpMV sweeps —
//! `O(nnz/p)` local work and `O(n/√p · log √p)` communication, independent
//! of the batch — so they stay exact under arbitrary insert/delete batches
//! without any per-view bookkeeping. Compare the static-recompute
//! alternative the benchmarks measure: a full SUMMA product per batch.

use crate::view::{BatchDelta, FrozenView, View, ViewCx};
use dspgemm_core::grid::Grid;
use dspgemm_core::spmv::{spmv, spmv_chain, DistVec};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::Index;
use std::any::Any;
use std::sync::Arc;

/// The frozen reading of a [`DegreeView`] or [`KHopView`] inside a
/// published epoch: the maintained vector at publish time (row- or
/// column-aligned exactly like the live view's). The vector is shared with
/// the live view by refcount — freezing copies no data.
#[derive(Debug, Clone)]
pub struct VectorReading<S: Semiring> {
    y: Option<Arc<DistVec<S::Elem>>>,
}

impl<S: Semiring> VectorReading<S> {
    /// The pinned vector (`None` only if the view was frozen before
    /// bootstrap, which the session registry never does).
    pub fn vector(&self) -> Option<&DistVec<S::Elem>> {
        self.y.as_deref()
    }

    /// The full pinned vector on every rank (one allgather). Collective;
    /// all ranks must hold the same epoch.
    pub fn to_global(&self, grid: &Grid) -> Option<Vec<S::Elem>> {
        self.y.as_deref().map(|y| y.to_global(grid))
    }
}

/// Maintained row-aggregate vector `y = A · x̄` for a constant `x̄` — with
/// unit edge values over `(+, ·)` this is the weighted out-degree of every
/// vertex; over `(min, +)` with `x̄ = 0` it is each vertex's lightest
/// incident edge.
pub struct DegreeView<S: Semiring> {
    one: S::Elem,
    /// Maintained vector, shared by refcount with frozen epoch readings.
    y: Option<Arc<DistVec<S::Elem>>>,
    /// Local flops spent across refreshes.
    pub flops: u64,
}

impl<S: Semiring> DegreeView<S> {
    /// A view multiplying `A` by the constant vector of `one`s.
    pub fn new(one: S::Elem) -> Self {
        Self {
            one,
            y: None,
            flops: 0,
        }
    }

    fn refresh(&mut self, cx: &ViewCx<'_, S>) {
        // Conformal with the (possibly rebalanced) snapshot layout.
        let cuts = Arc::new(cx.a.info().layout().col_cuts().to_vec());
        let x = DistVec::constant_in(cx.grid, cuts, self.one);
        let (y, fl) = spmv::<S>(cx.grid, cx.a, &x, cx.threads);
        self.flops += fl;
        self.y = Some(Arc::new(y));
    }

    /// The maintained vector (row-aligned; `None` before bootstrap).
    pub fn vector(&self) -> Option<&DistVec<S::Elem>> {
        self.y.as_deref()
    }

    /// Collective point lookup of vertex `u`'s aggregate. `None` only
    /// before bootstrap. Every rank returns the same value.
    pub fn degree(&self, grid: &Grid, u: Index) -> Option<S::Elem> {
        let y = self.y.as_ref()?;
        let (b, lo) = y.owner_stripe(u);
        // Row-aligned: every rank of grid row `b` holds the segment; let the
        // row's first member answer.
        let owner = grid.rank_of(b, 0);
        let mine = if grid.world().rank() == owner {
            Some(y.seg()[(u - lo) as usize])
        } else {
            None
        };
        Some(grid.world().bcast(owner, mine))
    }

    /// The full vector on every rank (one allgather). Collective.
    pub fn to_global(&self, grid: &Grid) -> Option<Vec<S::Elem>> {
        self.y.as_deref().map(|y| y.to_global(grid))
    }
}

impl<S: Semiring> View<S> for DegreeView<S> {
    fn name(&self) -> &str {
        "degree"
    }

    fn bootstrap(&mut self, cx: &ViewCx<'_, S>) {
        self.refresh(cx);
    }

    fn post_batch(&mut self, cx: &ViewCx<'_, S>, _delta: &BatchDelta<'_, S>) {
        self.refresh(cx);
    }

    fn freeze(&mut self) -> FrozenView {
        // Refcount clone of the maintained vector — no data copied.
        Arc::new(VectorReading::<S> { y: self.y.clone() })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Maintained `k`-hop sweep `y = Aᵏ · x₀` from a fixed seed vector — walk
/// counts over `(+, ·)`, `k`-step reachability over `(∨, ∧)`, `k`-hop
/// shortest distances over `(min, +)`.
pub struct KHopView<S: Semiring> {
    seeds: Vec<(Index, S::Elem)>,
    hops: usize,
    /// Maintained vector, shared by refcount with frozen epoch readings.
    y: Option<Arc<DistVec<S::Elem>>>,
    /// Local flops spent across refreshes.
    pub flops: u64,
}

impl<S: Semiring> KHopView<S> {
    /// A view sweeping `hops` steps from the given `(vertex, value)` seeds
    /// (identical on every rank; all other entries start at the semiring
    /// zero).
    pub fn new(seeds: Vec<(Index, S::Elem)>, hops: usize) -> Self {
        Self {
            seeds,
            hops,
            y: None,
            flops: 0,
        }
    }

    fn refresh(&mut self, cx: &ViewCx<'_, S>) {
        // Conformal with the (possibly rebalanced) snapshot layout.
        let cuts = Arc::new(cx.a.info().layout().col_cuts().to_vec());
        let x = DistVec::from_entries_in(cx.grid, cuts, &self.seeds, S::zero());
        let (y, fl) = spmv_chain::<S>(cx.grid, cx.a, x, self.hops, cx.threads);
        self.flops += fl;
        self.y = Some(Arc::new(y));
    }

    /// The maintained sweep result (column-aligned; `None` before
    /// bootstrap).
    pub fn vector(&self) -> Option<&DistVec<S::Elem>> {
        self.y.as_deref()
    }

    /// Collective point lookup of vertex `u`'s sweep value. Every rank
    /// returns the same value.
    pub fn value_at(&self, grid: &Grid, u: Index) -> Option<S::Elem> {
        let y = self.y.as_ref()?;
        let (b, lo) = y.owner_stripe(u);
        // Column-aligned: every rank of grid column `b` holds the segment.
        let owner = grid.rank_of(0, b);
        let mine = if grid.world().rank() == owner {
            Some(y.seg()[(u - lo) as usize])
        } else {
            None
        };
        Some(grid.world().bcast(owner, mine))
    }

    /// The full vector on every rank (one allgather). Collective.
    pub fn to_global(&self, grid: &Grid) -> Option<Vec<S::Elem>> {
        self.y.as_deref().map(|y| y.to_global(grid))
    }

    /// Number of vertices whose sweep value is not the semiring zero —
    /// e.g. the size of the `k`-hop reachable set under `(∨, ∧)`.
    /// Collective (assembles the vector once).
    pub fn count_reached(&self, grid: &Grid) -> Option<u64> {
        self.to_global(grid)
            .map(|v| v.iter().filter(|&&x| !S::is_zero(x)).count() as u64)
    }
}

impl<S: Semiring> View<S> for KHopView<S> {
    fn name(&self) -> &str {
        "k-hop"
    }

    fn bootstrap(&mut self, cx: &ViewCx<'_, S>) {
        self.refresh(cx);
    }

    fn post_batch(&mut self, cx: &ViewCx<'_, S>, _delta: &BatchDelta<'_, S>) {
        self.refresh(cx);
    }

    fn freeze(&mut self) -> FrozenView {
        // Refcount clone of the maintained vector — no data copied.
        Arc::new(VectorReading::<S> { y: self.y.clone() })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
