//! # dspgemm-analytics — dynamic graph-analytics views on the SpGEMM engine
//!
//! The paper motivates dynamic SpGEMM with graph-mining kernels that must
//! stay fresh under streaming edge updates. This crate turns the engine into
//! a *serving layer* for that scenario: an [`AnalyticsSession`] owns one
//! distributed dynamic adjacency matrix `A`, keeps the product `C = A·A`
//! maintained through the shared-operand hooks of `dspgemm-core`, and feeds
//! any number of registered [`View`]s from a **single shared update batch**
//! — one redistribution, one dynamic-SpGEMM pass, one change feed, however
//! many views.
//!
//! * [`session`] — the session object: batch application, view registry,
//!   and the query API (point lookups, per-row top-k, global aggregates) —
//!   every query served from the latest published epoch.
//! * [`snapshot`] — pinned epochs ([`SessionSnapshot`]): immutable `{A, C,
//!   views, epoch}` published after every committed batch, so readers query
//!   bit-stable state while batches keep draining.
//! * [`view`] — the [`View`] trait and the shared batch/delta types.
//! * [`views`] — the built-in views: [`TriangleCountView`] (incremental
//!   masked-sum triangle counting), [`CommonNeighborsView`]
//!   (link-prediction scores over a candidate mask, bootstrapped with the
//!   masked SpGEMM kernel), and [`DegreeView`] / [`KHopView`] (vector
//!   analytics over the distributed SpMV kernel).
//! * [`mod@masked_product`] — distributed masked SpGEMM (SUMMA rounds,
//!   local flops pruned to an output mask).
//!
//! ## Quickstart
//!
//! ```
//! use dspgemm_analytics::{AnalyticsSession, TriangleCountView};
//! use dspgemm_sparse::semiring::U64Plus;
//! use dspgemm_sparse::Triple;
//!
//! let out = dspgemm_mpi::run(4, |comm| {
//!     // A 4-vertex graph, fed from rank 0 (any rank may contribute).
//!     let edges = |list: &[(u32, u32)]| -> Vec<Triple<u64>> {
//!         if comm.rank() == 0 {
//!             list.iter().flat_map(|&(u, v)| {
//!                 [Triple::new(u, v, 1), Triple::new(v, u, 1)]
//!             }).collect()
//!         } else {
//!             vec![]
//!         }
//!     };
//!     let mut session = AnalyticsSession::<U64Plus>::from_triples(
//!         comm, 4, 1, edges(&[(0, 1), (1, 2), (0, 2)]));
//!     let tri = session.register(Box::new(TriangleCountView::new()));
//!     // One triangle so far; a second one appears dynamically.
//!     let before = session.view_as::<TriangleCountView>(tri).unwrap().count();
//!     session.insert_edges(edges(&[(2, 3), (0, 3)]));
//!     let after = session.view_as::<TriangleCountView>(tri).unwrap().count();
//!     (before, after)
//! });
//! assert!(out.results.iter().all(|&r| r == (1, 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod masked_product;
pub mod session;
pub mod snapshot;
pub mod view;
pub mod views;

pub use masked_product::masked_product;
pub use session::{observe_query, staleness_bucket, AnalyticsSession};
pub use snapshot::SessionSnapshot;
pub use view::{BatchDelta, FrozenView, PendingBatch, View, ViewCx, ViewId};
pub use views::common_neighbors::ScoreReading;
pub use views::triangles::TriangleReading;
pub use views::vector::VectorReading;
pub use views::{CommonNeighborsView, DegreeView, KHopView, TriangleCountView};
