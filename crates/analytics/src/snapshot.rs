//! Pinned epochs of the serving session.
//!
//! Every committed batch publishes a [`SessionSnapshot`]: the adjacency
//! matrix `A`, the product `C = A·A`, a frozen reading of every registered
//! view, and the epoch number — all immutable, all behind `Arc`s. Epochs
//! number *publishes*: every batch commit publishes one, and so does every
//! view registration, so epoch numbers run ahead of batch counts by the
//! number of registrations (plus one for the initial product at epoch 0).
//! A reader pins an epoch with [`crate::AnalyticsSession::pin`] and then
//! queries it for as long as it likes: queries pinned at epoch `e` are
//! bit-identical to the state at its publish time no matter how many
//! batches commit in the meantime, and queries right after a batch see
//! exactly epoch `e + 1` — the isolation property the snapshot test suite
//! asserts against blocking reruns.
//!
//! The matrices are published block-granular copy-on-write (see
//! [`dspgemm_core::snapshot`]): pinning and publishing move `Arc` handles,
//! never matrix data; a rank whose block a batch did not touch re-shares
//! the previous epoch's block. Retention is reader-driven: the session
//! holds one strong handle (the latest epoch), so an old epoch's unshared
//! blocks are freed the moment its last pin drops.

use crate::view::{FrozenView, ViewId};
use dspgemm_core::grid::Grid;
use dspgemm_core::snapshot::{Snapshot, SnapshotMat};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::Index;

/// One published epoch of an [`crate::AnalyticsSession`]: `{A, C, views,
/// epoch}`, immutable. Clone (or keep the `Arc` from
/// [`crate::AnalyticsSession::pin`]) to hold the epoch alive.
///
/// The `{A, C, epoch}` triple is a core [`Snapshot`] — the matrix surface
/// and the heap accounting delegate to it, so the engine's and the
/// session's epochs can never diverge in semantics.
#[derive(Clone)]
pub struct SessionSnapshot<S: Semiring> {
    inner: Snapshot<S::Elem>,
    views: Vec<(ViewId, String, FrozenView)>,
}

impl<S: Semiring> SessionSnapshot<S> {
    pub(crate) fn new(
        epoch: u64,
        a: SnapshotMat<S::Elem>,
        c: SnapshotMat<S::Elem>,
        views: Vec<(ViewId, String, FrozenView)>,
    ) -> Self {
        Self {
            inner: Snapshot::new(epoch, a, c),
            views,
        }
    }

    /// The epoch number: epoch `e` is the state after the `e`-th publish
    /// (batches and view registrations both publish; epoch 0 is the initial
    /// product).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// The pinned adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &SnapshotMat<S::Elem> {
        self.inner.a()
    }

    /// The pinned product `C = A · A`.
    #[inline]
    pub fn product(&self) -> &SnapshotMat<S::Elem> {
        self.inner.c()
    }

    // ------------------------------------------------------------------
    // Query API — the pinned twins of the session's query surface
    // ------------------------------------------------------------------

    /// Point lookup `c(u, v)` at this epoch. Collective; all ranks must
    /// hold the same epoch and pass the same coordinate.
    pub fn product_entry(&self, grid: &Grid, u: Index, v: Index) -> Option<S::Elem> {
        self.inner.c().get_collective(grid, u, v)
    }

    /// Point lookup `a(u, v)` at this epoch. Collective.
    pub fn adjacency_entry(&self, grid: &Grid, u: Index, v: Index) -> Option<S::Elem> {
        self.inner.a().get_collective(grid, u, v)
    }

    /// The `k` heaviest entries of product row `u` at this epoch (same
    /// contract as the session's live top-k). Collective.
    pub fn product_row_topk(
        &self,
        grid: &Grid,
        u: Index,
        k: usize,
        score: impl Fn(&S::Elem) -> f64,
    ) -> Vec<(Index, S::Elem)> {
        self.inner.c().row_topk(grid, u, k, score)
    }

    /// Global aggregate over the pinned product. Collective.
    pub fn product_aggregate<T>(
        &self,
        grid: &Grid,
        init: T,
        fold: impl FnMut(T, Index, Index, S::Elem) -> T,
        combine: impl FnMut(T, T) -> T,
    ) -> T
    where
        T: Clone + Send + dspgemm_util::WireSize + dspgemm_util::WireDecode + 'static,
    {
        self.inner.c().aggregate(grid, init, fold, combine)
    }

    /// Global non-zero counts `(nnz(A), nnz(C))` at this epoch. Collective.
    pub fn global_nnz(&self, grid: &Grid) -> (u64, u64) {
        (
            self.inner.a().global_nnz(grid),
            self.inner.c().global_nnz(grid),
        )
    }

    // ------------------------------------------------------------------
    // Frozen view readings
    // ------------------------------------------------------------------

    /// The frozen readings captured at this epoch, as
    /// `(view id, view name, reading)`.
    pub fn views(&self) -> &[(ViewId, String, FrozenView)] {
        &self.views
    }

    /// The frozen reading of one view (`None`: the view was registered
    /// after this epoch was published).
    pub fn view_reading(&self, id: ViewId) -> Option<&FrozenView> {
        self.views
            .iter()
            .find(|(vid, _, _)| *vid == id)
            .map(|(_, _, r)| r)
    }

    /// Typed access to a frozen reading (e.g.
    /// `view_as::<TriangleReading>(tri)`).
    pub fn view_as<T: 'static>(&self, id: ViewId) -> Option<&T> {
        self.view_reading(id).and_then(|r| r.downcast_ref::<T>())
    }

    /// Heap bytes of this epoch's matrix blocks (blocks COW-shared with
    /// other epochs count in full; frozen view readings are excluded).
    /// Delegates to [`Snapshot::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }

    /// Heap bytes skipping blocks already counted in `seen` — sum over the
    /// live epochs of a store to charge each COW-shared block once.
    /// Delegates to [`Snapshot::heap_bytes_unshared`].
    pub fn heap_bytes_unshared(&self, seen: &mut Vec<*const ()>) -> usize {
        self.inner.heap_bytes_unshared(seen)
    }
}
