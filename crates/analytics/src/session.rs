//! The analytics serving session.
//!
//! [`AnalyticsSession`] owns one distributed dynamic adjacency matrix `A`,
//! the maintained product `C = A · A` (with its Bloom filter matrix `F`, so
//! deletions are always admissible), and a registry of [`View`]s. One call
//! to [`AnalyticsSession::insert_edges`] / [`AnalyticsSession::apply_general`]
//! drives everything:
//!
//! 1. the batch is redistributed **once** into hypersparse update matrices
//!    (the only all-to-all of the whole step);
//! 2. every view observes the pending batch (`pre_batch`) against the old
//!    state;
//! 3. the shared-operand dynamic SpGEMM hook patches `A`, `C` and `F`
//!    (Algorithm 1 for algebraic inserts, Algorithm 2 for general updates)
//!    and surfaces this rank's product delta `C*`;
//! 4. every view refreshes from the shared delta (`post_batch`);
//! 5. the batch **commits**: the session publishes an immutable
//!    [`SessionSnapshot`] epoch (block-granular copy-on-write over `A` and
//!    `C`, plus a frozen reading of every view).
//!
//! Queries never touch the live matrices: the session's query API reads the
//! latest published epoch, and [`AnalyticsSession::pin`] hands out an epoch
//! handle that stays bit-stable while further batches commit — see
//! [`crate::snapshot`].
//!
//! Sessions are SPMD: construct and drive them identically on every rank of
//! a [`dspgemm_mpi::run`] closure. All public methods marked *collective*
//! must be called by all ranks in the same order.

use crate::snapshot::SessionSnapshot;
use crate::view::{BatchDelta, PendingBatch, View, ViewCx, ViewId};
use dspgemm_core::distmat::DistMat;
use dspgemm_core::dyn_algebraic::apply_shared_algebraic_prebuilt_tracked_exec;
use dspgemm_core::dyn_general::{
    apply_shared_general_prebuilt_exec, prepare_general_update, GeneralUpdates,
};
use dspgemm_core::exec::Exec;
use dspgemm_core::grid::Grid;
use dspgemm_core::snapshot::{SnapshotMat, SnapshotStore};
use dspgemm_core::summa::summa_bloom_exec;
use dspgemm_core::update::{build_update_matrix, Dedup};
use dspgemm_mpi::Comm;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use std::sync::Arc;

/// Epoch-staleness bucket label used in query-latency histogram names:
/// `query.{kind}.stale{bucket}`. Staleness is how many epochs behind the
/// session the answered snapshot was (`0` = served the latest epoch).
pub fn staleness_bucket(stale: u64) -> &'static str {
    match stale {
        0 => "0",
        1 => "1",
        2..=3 => "2-3",
        4..=7 => "4-7",
        _ => "8plus",
    }
}

/// Records one query's latency into the process-global metrics registry
/// under `query.{kind}.stale{bucket}`. No-op while observability is
/// disabled ([`dspgemm_obs::enabled`]), so the serving hot path pays one
/// relaxed atomic load by default. Callers serving a pinned
/// [`SessionSnapshot`] pass `stale = session_epoch - snapshot_epoch`; the
/// session's own query API records staleness `0` (it always answers from
/// the latest epoch).
pub fn observe_query(kind: &str, stale: u64, latency: std::time::Duration) {
    if !dspgemm_obs::enabled() {
        return;
    }
    dspgemm_obs::global().observe_duration(
        &format!("query.{kind}.stale{}", staleness_bucket(stale)),
        latency,
    );
}

/// A serving session: dynamic graph + maintained product + view registry.
pub struct AnalyticsSession<S: Semiring> {
    grid: Grid,
    /// Local compute configuration (threads, row schedule, workspace pools
    /// persisting across every batch and view refresh).
    exec: Exec<S>,
    a: DistMat<S::Elem>,
    c: DistMat<S::Elem>,
    f: DistMat<u64>,
    views: Vec<(ViewId, Box<dyn View<S>>)>,
    next_view: u64,
    /// Published epochs (latest held strongly; older epochs live while
    /// pinned). Every committed batch and every view registration publishes.
    store: SnapshotStore<SessionSnapshot<S>>,
    /// Accumulated phase timings across construction and every batch.
    pub timer: PhaseTimer,
    /// Accumulated local scalar multiplications.
    pub flops: u64,
    /// Update batches applied so far.
    pub batches_applied: u64,
}

impl<S: Semiring> AnalyticsSession<S> {
    /// Creates a session over an empty `n × n` graph. Collective.
    pub fn new(comm: &Comm, n: Index, threads: usize) -> Self {
        Self::from_triples(comm, n, threads, Vec::new())
    }

    /// Creates a session from rank-local, globally-indexed edge triples
    /// (redistributed to their owners) and computes the initial product.
    /// Collective.
    pub fn from_triples(
        comm: &Comm,
        n: Index,
        threads: usize,
        triples: Vec<Triple<S::Elem>>,
    ) -> Self {
        let grid = Grid::new(comm);
        let exec = Exec::new(threads);
        let mut timer = PhaseTimer::new();
        let a = DistMat::from_global_triples(&grid, n, n, triples, threads, &mut timer);
        let (c, f, flops) = summa_bloom_exec::<S>(&grid, &a, &a, &exec, &mut timer);
        let mut session = Self {
            grid,
            exec,
            a,
            c,
            f,
            views: Vec::new(),
            next_view: 0,
            store: SnapshotStore::new(),
            timer,
            flops,
            batches_applied: 0,
        };
        // Epoch 0: the initial product, queryable before any batch.
        session.publish();
        session
    }

    /// The session's process grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The dynamic adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &DistMat<S::Elem> {
        &self.a
    }

    /// The maintained product `C = A · A`.
    #[inline]
    pub fn product(&self) -> &DistMat<S::Elem> {
        &self.c
    }

    /// Number of registered views.
    #[inline]
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    fn cx(&self) -> ViewCx<'_, S> {
        ViewCx {
            grid: &self.grid,
            a: &self.a,
            c: &self.c,
            exec: &self.exec,
            threads: self.exec.threads,
        }
    }

    /// Registers a view, bootstrapping it from the current state, and
    /// returns its handle. Publishes a new epoch (so the view's frozen
    /// reading is pinnable immediately). Collective; all ranks must
    /// register the same views in the same order.
    pub fn register(&mut self, mut view: Box<dyn View<S>>) -> ViewId {
        view.bootstrap(&self.cx());
        let id = ViewId(self.next_view);
        self.next_view += 1;
        self.views.push((id, view));
        self.publish();
        id
    }

    // ------------------------------------------------------------------
    // Epoch publishing & pinning (the serving interface)
    // ------------------------------------------------------------------

    /// Publishes the current `{A, C, views}` as the next epoch. Local-only
    /// (no collectives): the matrices convert copy-on-write — only blocks
    /// the last batch touched are re-encoded, untouched blocks are
    /// re-shared from the previous epoch — and each view freezes its
    /// current reading. SPMD callers publish in lockstep, so epoch numbers
    /// agree on every rank.
    fn publish(&mut self) -> Arc<SessionSnapshot<S>> {
        let a = SnapshotMat::new(self.a.info().clone(), self.a.snapshot_csr());
        let c = SnapshotMat::new(self.c.info().clone(), self.c.snapshot_csr());
        let views: Vec<_> = self
            .views
            .iter_mut()
            .map(|(id, v)| {
                let name = v.name().to_string();
                (*id, name, v.freeze())
            })
            .collect();
        let snap = self
            .store
            .publish_with(|epoch| SessionSnapshot::new(epoch, a, c, views));
        self.record_load(snap.epoch());
        snap
    }

    /// Emits the `epoch_publish` trace instant and refreshes this rank's
    /// per-block load gauges (local nnz of `A` and `C`, accumulated local
    /// flops — the skew signal a rebalancing policy would key on).
    fn record_load(&self, epoch: u64) {
        let nnz_a = self.a.block().nnz() as u64;
        let nnz_c = self.c.block().nnz() as u64;
        dspgemm_obs::instant(
            "engine",
            "epoch_publish",
            &[
                ("epoch", epoch),
                ("nnz_a", nnz_a),
                ("nnz_c", nnz_c),
                ("flops", self.flops),
            ],
        );
        let rank = dspgemm_obs::thread_rank();
        let reg = dspgemm_obs::global();
        reg.gauge_set(&format!("engine.block_nnz.a.rank{rank}"), nnz_a as f64);
        reg.gauge_set(&format!("engine.block_nnz.c.rank{rank}"), nnz_c as f64);
        reg.gauge_set(&format!("engine.block_flops.rank{rank}"), self.flops as f64);
    }

    /// Pins the current epoch: an immutable `{A, C, views, epoch}` the
    /// caller can query bit-stably while further batches commit. A pin is
    /// an `Arc` clone — O(1), no data copied; drop it to release the
    /// epoch's retained blocks.
    pub fn pin(&self) -> Arc<SessionSnapshot<S>> {
        Arc::clone(self.latest())
    }

    /// The current epoch number (0 = initial product; every batch and view
    /// registration increments it).
    pub fn epoch(&self) -> u64 {
        self.latest().epoch()
    }

    /// The snapshot registry (retention diagnostics: how many epochs are
    /// still pinned and their memory footprint).
    pub fn snapshots(&self) -> &SnapshotStore<SessionSnapshot<S>> {
        &self.store
    }

    fn latest(&self) -> &Arc<SessionSnapshot<S>> {
        self.store
            .latest()
            .expect("sessions publish epoch 0 at construction")
    }

    /// Read access to a registered view.
    pub fn view(&self, id: ViewId) -> Option<&dyn View<S>> {
        self.views
            .iter()
            .find(|(vid, _)| *vid == id)
            .map(|(_, v)| v.as_ref())
    }

    /// Typed read access to a registered view.
    pub fn view_as<T: 'static>(&self, id: ViewId) -> Option<&T> {
        self.view(id).and_then(|v| v.as_any().downcast_ref::<T>())
    }

    /// Applies a batch of **algebraic** edge insertions `A' = A + A*`
    /// (semiring addition; tuples carry global indices and may live on any
    /// rank), refreshing the product and every view from one shared
    /// redistribution. Collective.
    pub fn insert_edges(&mut self, tuples: Vec<Triple<S::Elem>>) {
        let _sp =
            dspgemm_obs::span("engine", "apply_algebraic").attr("updates", tuples.len() as u64);
        let star = build_update_matrix::<S>(
            &self.grid,
            self.a.info().nrows,
            self.a.info().ncols,
            tuples,
            Dedup::Add,
            &mut self.timer,
        );
        // Views peek at the old state (registry temporarily detached so the
        // session state can be borrowed immutably alongside it).
        let mut views = std::mem::take(&mut self.views);
        for (_, v) in &mut views {
            v.pre_batch(&self.cx(), &PendingBatch::Algebraic { star: &star });
        }
        let (cstar, flops) = apply_shared_algebraic_prebuilt_tracked_exec::<S>(
            &self.grid,
            &mut self.a,
            &mut self.c,
            &mut self.f,
            &star,
            &self.exec,
            &mut self.timer,
        );
        self.flops += flops;
        self.batches_applied += 1;
        for (_, v) in &mut views {
            v.post_batch(
                &self.cx(),
                &BatchDelta::Algebraic {
                    star: &star,
                    cstar: &cstar,
                },
            );
        }
        self.views = views;
        // Commit: readers pinned at the previous epoch keep it; new queries
        // see this batch exactly.
        self.publish();
    }

    /// Applies a batch of **general** updates (deletions and value writes
    /// incompatible with the semiring addition) via Algorithm 2, refreshing
    /// the product and every view. Collective.
    pub fn apply_general(&mut self, upd: GeneralUpdates<S::Elem>) {
        let _sp = dspgemm_obs::span("engine", "apply_general").attr("updates", upd.len() as u64);
        let prep = prepare_general_update::<S>(
            &self.grid,
            self.a.info().nrows,
            self.a.info().ncols,
            upd,
            &mut self.timer,
        );
        let mut views = std::mem::take(&mut self.views);
        for (_, v) in &mut views {
            v.pre_batch(&self.cx(), &PendingBatch::General { prep: &prep });
        }
        let (cstar_pattern, flops) = apply_shared_general_prebuilt_exec::<S>(
            &self.grid,
            &mut self.a,
            &mut self.c,
            &mut self.f,
            &prep,
            &self.exec,
            &mut self.timer,
        );
        self.flops += flops;
        self.batches_applied += 1;
        for (_, v) in &mut views {
            v.post_batch(
                &self.cx(),
                &BatchDelta::General {
                    prep: &prep,
                    cstar_pattern: &cstar_pattern,
                },
            );
        }
        self.views = views;
        // Commit: readers pinned at the previous epoch keep it; new queries
        // see this batch exactly.
        self.publish();
    }

    /// Deletes the given `(u, v)` positions from the graph (a general
    /// batch). Collective.
    pub fn delete_edges(&mut self, pairs: Vec<(Index, Index)>) {
        let mut upd = GeneralUpdates::new();
        upd.deletes = pairs;
        self.apply_general(upd);
    }

    // ------------------------------------------------------------------
    // Query API — every query runs against the latest *pinned* epoch, not
    // the live matrices: the update path and the query path share no
    // mutable state. Pin an epoch yourself ([`AnalyticsSession::pin`]) for
    // repeatable reads across batches.
    // ------------------------------------------------------------------

    /// Point lookup `c(u, v)` in the maintained product at the current
    /// epoch: owner-local read + one single-element broadcast. Every rank
    /// returns the same value. Collective.
    pub fn product_entry(&self, u: Index, v: Index) -> Option<S::Elem> {
        timed_query("product_entry", || {
            self.latest().product_entry(&self.grid, u, v)
        })
    }

    /// Point lookup `a(u, v)` in the adjacency matrix at the current
    /// epoch. Collective.
    pub fn adjacency_entry(&self, u: Index, v: Index) -> Option<S::Elem> {
        timed_query("adjacency_entry", || {
            self.latest().adjacency_entry(&self.grid, u, v)
        })
    }

    /// The `k` heaviest entries of product row `u` under `score` (greater is
    /// better; ties broken by column for determinism) at the current epoch.
    /// The row's owners contribute their local entries, one zero-copy
    /// allgather merges them, and every rank returns the same list. `score`
    /// must be a pure function agreed on all ranks. Collective.
    pub fn product_row_topk(
        &self,
        u: Index,
        k: usize,
        score: impl Fn(&S::Elem) -> f64,
    ) -> Vec<(Index, S::Elem)> {
        timed_query("product_row_topk", || {
            self.latest().product_row_topk(&self.grid, u, k, score)
        })
    }

    /// Global aggregate over the maintained product at the current epoch:
    /// folds every entry (global coordinates, row-major order) into `init`
    /// and allreduces the per-rank folds with `combine`. Every rank returns
    /// the total. Collective.
    pub fn product_aggregate<T>(
        &self,
        init: T,
        fold: impl FnMut(T, Index, Index, S::Elem) -> T,
        combine: impl FnMut(T, T) -> T,
    ) -> T
    where
        T: Clone + Send + dspgemm_util::WireSize + dspgemm_util::WireDecode + 'static,
    {
        timed_query("product_aggregate", || {
            self.latest()
                .product_aggregate(&self.grid, init, fold, combine)
        })
    }

    /// Global non-zero counts `(nnz(A), nnz(C))` at the current epoch.
    /// Collective.
    pub fn global_nnz(&self) -> (u64, u64) {
        timed_query("global_nnz", || self.latest().global_nnz(&self.grid))
    }
}

/// Runs a session-API query under a `query` trace span and records its
/// latency into `query.{kind}.stale0` (the session API always answers
/// from the latest epoch). Straight call-through while observability is
/// disabled.
fn timed_query<T>(kind: &'static str, f: impl FnOnce() -> T) -> T {
    if !dspgemm_obs::enabled() {
        return f();
    }
    let _sp = dspgemm_obs::span("query", kind).attr("staleness", 0);
    let t0 = std::time::Instant::now();
    let out = f();
    observe_query(kind, 0, t0.elapsed());
    out
}
