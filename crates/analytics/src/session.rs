//! The analytics serving session.
//!
//! [`AnalyticsSession`] owns one distributed dynamic adjacency matrix `A`,
//! the maintained product `C = A · A` (with its Bloom filter matrix `F`, so
//! deletions are always admissible), and a registry of [`View`]s. One call
//! to [`AnalyticsSession::insert_edges`] / [`AnalyticsSession::apply_general`]
//! drives everything:
//!
//! 1. the batch is redistributed **once** into hypersparse update matrices
//!    (the only all-to-all of the whole step);
//! 2. every view observes the pending batch (`pre_batch`) against the old
//!    state;
//! 3. the shared-operand dynamic SpGEMM hook patches `A`, `C` and `F`
//!    (Algorithm 1 for algebraic inserts, Algorithm 2 for general updates)
//!    and surfaces this rank's product delta `C*`;
//! 4. every view refreshes from the shared delta (`post_batch`).
//!
//! Sessions are SPMD: construct and drive them identically on every rank of
//! a [`dspgemm_mpi::run`] closure. All public methods marked *collective*
//! must be called by all ranks in the same order.

use crate::view::{BatchDelta, PendingBatch, View, ViewCx, ViewId};
use dspgemm_core::distmat::DistMat;
use dspgemm_core::dyn_algebraic::apply_shared_algebraic_prebuilt_tracked_exec;
use dspgemm_core::dyn_general::{
    apply_shared_general_prebuilt_exec, prepare_general_update, GeneralUpdates,
};
use dspgemm_core::exec::Exec;
use dspgemm_core::grid::Grid;
use dspgemm_core::summa::summa_bloom_exec;
use dspgemm_core::update::{build_update_matrix, Dedup};
use dspgemm_mpi::Comm;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Index, RowScan, Triple};
use dspgemm_util::stats::PhaseTimer;

/// A serving session: dynamic graph + maintained product + view registry.
pub struct AnalyticsSession<S: Semiring> {
    grid: Grid,
    /// Local compute configuration (threads, row schedule, workspace pools
    /// persisting across every batch and view refresh).
    exec: Exec<S>,
    a: DistMat<S::Elem>,
    c: DistMat<S::Elem>,
    f: DistMat<u64>,
    views: Vec<(ViewId, Box<dyn View<S>>)>,
    next_view: u64,
    /// Accumulated phase timings across construction and every batch.
    pub timer: PhaseTimer,
    /// Accumulated local scalar multiplications.
    pub flops: u64,
    /// Update batches applied so far.
    pub batches_applied: u64,
}

impl<S: Semiring> AnalyticsSession<S> {
    /// Creates a session over an empty `n × n` graph. Collective.
    pub fn new(comm: &Comm, n: Index, threads: usize) -> Self {
        Self::from_triples(comm, n, threads, Vec::new())
    }

    /// Creates a session from rank-local, globally-indexed edge triples
    /// (redistributed to their owners) and computes the initial product.
    /// Collective.
    pub fn from_triples(
        comm: &Comm,
        n: Index,
        threads: usize,
        triples: Vec<Triple<S::Elem>>,
    ) -> Self {
        let grid = Grid::new(comm);
        let exec = Exec::new(threads);
        let mut timer = PhaseTimer::new();
        let a = DistMat::from_global_triples(&grid, n, n, triples, threads, &mut timer);
        let (c, f, flops) = summa_bloom_exec::<S>(&grid, &a, &a, &exec, &mut timer);
        Self {
            grid,
            exec,
            a,
            c,
            f,
            views: Vec::new(),
            next_view: 0,
            timer,
            flops,
            batches_applied: 0,
        }
    }

    /// The session's process grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The dynamic adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &DistMat<S::Elem> {
        &self.a
    }

    /// The maintained product `C = A · A`.
    #[inline]
    pub fn product(&self) -> &DistMat<S::Elem> {
        &self.c
    }

    /// Number of registered views.
    #[inline]
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    fn cx(&self) -> ViewCx<'_, S> {
        ViewCx {
            grid: &self.grid,
            a: &self.a,
            c: &self.c,
            exec: &self.exec,
            threads: self.exec.threads,
        }
    }

    /// Registers a view, bootstrapping it from the current state, and
    /// returns its handle. Collective; all ranks must register the same
    /// views in the same order.
    pub fn register(&mut self, mut view: Box<dyn View<S>>) -> ViewId {
        view.bootstrap(&self.cx());
        let id = ViewId(self.next_view);
        self.next_view += 1;
        self.views.push((id, view));
        id
    }

    /// Read access to a registered view.
    pub fn view(&self, id: ViewId) -> Option<&dyn View<S>> {
        self.views
            .iter()
            .find(|(vid, _)| *vid == id)
            .map(|(_, v)| v.as_ref())
    }

    /// Typed read access to a registered view.
    pub fn view_as<T: 'static>(&self, id: ViewId) -> Option<&T> {
        self.view(id).and_then(|v| v.as_any().downcast_ref::<T>())
    }

    /// Applies a batch of **algebraic** edge insertions `A' = A + A*`
    /// (semiring addition; tuples carry global indices and may live on any
    /// rank), refreshing the product and every view from one shared
    /// redistribution. Collective.
    pub fn insert_edges(&mut self, tuples: Vec<Triple<S::Elem>>) {
        let star = build_update_matrix::<S>(
            &self.grid,
            self.a.info().nrows,
            self.a.info().ncols,
            tuples,
            Dedup::Add,
            &mut self.timer,
        );
        // Views peek at the old state (registry temporarily detached so the
        // session state can be borrowed immutably alongside it).
        let mut views = std::mem::take(&mut self.views);
        for (_, v) in &mut views {
            v.pre_batch(&self.cx(), &PendingBatch::Algebraic { star: &star });
        }
        let (cstar, flops) = apply_shared_algebraic_prebuilt_tracked_exec::<S>(
            &self.grid,
            &mut self.a,
            &mut self.c,
            &mut self.f,
            &star,
            &self.exec,
            &mut self.timer,
        );
        self.flops += flops;
        self.batches_applied += 1;
        for (_, v) in &mut views {
            v.post_batch(
                &self.cx(),
                &BatchDelta::Algebraic {
                    star: &star,
                    cstar: &cstar,
                },
            );
        }
        self.views = views;
    }

    /// Applies a batch of **general** updates (deletions and value writes
    /// incompatible with the semiring addition) via Algorithm 2, refreshing
    /// the product and every view. Collective.
    pub fn apply_general(&mut self, upd: GeneralUpdates<S::Elem>) {
        let prep = prepare_general_update::<S>(
            &self.grid,
            self.a.info().nrows,
            self.a.info().ncols,
            upd,
            &mut self.timer,
        );
        let mut views = std::mem::take(&mut self.views);
        for (_, v) in &mut views {
            v.pre_batch(&self.cx(), &PendingBatch::General { prep: &prep });
        }
        let (cstar_pattern, flops) = apply_shared_general_prebuilt_exec::<S>(
            &self.grid,
            &mut self.a,
            &mut self.c,
            &mut self.f,
            &prep,
            &self.exec,
            &mut self.timer,
        );
        self.flops += flops;
        self.batches_applied += 1;
        for (_, v) in &mut views {
            v.post_batch(
                &self.cx(),
                &BatchDelta::General {
                    prep: &prep,
                    cstar_pattern: &cstar_pattern,
                },
            );
        }
        self.views = views;
    }

    /// Deletes the given `(u, v)` positions from the graph (a general
    /// batch). Collective.
    pub fn delete_edges(&mut self, pairs: Vec<(Index, Index)>) {
        let mut upd = GeneralUpdates::new();
        upd.deletes = pairs;
        self.apply_general(upd);
    }

    // ------------------------------------------------------------------
    // Query API
    // ------------------------------------------------------------------

    /// Point lookup `c(u, v)` in the maintained product: owner-local read +
    /// one single-element broadcast. Every rank returns the same value.
    /// Collective.
    pub fn product_entry(&self, u: Index, v: Index) -> Option<S::Elem> {
        self.c.get_collective(&self.grid, u, v)
    }

    /// Point lookup `a(u, v)` in the adjacency matrix. Collective.
    pub fn adjacency_entry(&self, u: Index, v: Index) -> Option<S::Elem> {
        self.a.get_collective(&self.grid, u, v)
    }

    /// The `k` heaviest entries of product row `u` under `score` (greater is
    /// better; ties broken by column for determinism). The row's owners
    /// contribute their local entries, one allgather merges them, and every
    /// rank returns the same list. `score` must be a pure function agreed on
    /// all ranks. Collective.
    pub fn product_row_topk(
        &self,
        u: Index,
        k: usize,
        score: impl Fn(&S::Elem) -> f64,
    ) -> Vec<(Index, S::Elem)> {
        let info = self.c.info();
        let mine: Vec<(Index, S::Elem)> = if info.row_range.contains(&u) {
            let lr = u - info.row_range.start;
            let (cols, vals) = self.c.block().row_ref(lr).entries();
            cols.iter()
                .zip(vals)
                .map(|(&lc, &val)| (lc + info.col_range.start, val))
                .collect()
        } else {
            Vec::new()
        };
        // Zero-copy merge: the ring moves `Arc` handles of the per-rank
        // entry lists, never deep-cloning a list on a forward.
        let mut all: Vec<(Index, S::Elem)> = self
            .grid
            .world()
            .allgather_shared(std::sync::Arc::new(mine))
            .iter()
            .flat_map(|part| part.iter().copied())
            .collect();
        all.sort_unstable_by(|(ca, va), (cb, vb)| {
            score(vb)
                .partial_cmp(&score(va))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ca.cmp(cb))
        });
        all.truncate(k);
        all
    }

    /// Global aggregate over the maintained product: folds every local
    /// entry (global coordinates) into `init` and allreduces the per-rank
    /// folds with `combine`. Every rank returns the total. Collective.
    pub fn product_aggregate<T>(
        &self,
        init: T,
        mut fold: impl FnMut(T, Index, Index, S::Elem) -> T,
        combine: impl FnMut(T, T) -> T,
    ) -> T
    where
        T: Clone + Send + dspgemm_util::WireSize + 'static,
    {
        let info = self.c.info();
        let mut acc = Some(init);
        self.c.block().scan_rows(|r, cols, vals| {
            for (&lc, &v) in cols.iter().zip(vals) {
                let (gr, gc) = info.to_global(r, lc);
                let cur = acc.take().expect("fold accumulator present");
                acc = Some(fold(cur, gr, gc, v));
            }
        });
        let local = acc.expect("fold accumulator present");
        self.grid.world().allreduce(local, combine)
    }

    /// Global non-zero counts `(nnz(A), nnz(C))`. Collective.
    pub fn global_nnz(&self) -> (u64, u64) {
        (self.a.global_nnz(&self.grid), self.c.global_nnz(&self.grid))
    }
}
