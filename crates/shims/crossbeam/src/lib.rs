//! Offline build shim for the `crossbeam` crate.
//!
//! This workspace builds in environments with no registry access, so the
//! external `crossbeam` dependency is replaced by this minimal drop-in
//! providing exactly the surface `dspgemm-mpi` uses: unbounded MPMC-ish
//! channels with `Sender`/`Receiver` handles. It is backed by
//! `std::sync::mpsc`, which matches the usage pattern (each receiver is
//! owned by exactly one rank thread; senders are cloned per peer).

#![forbid(unsafe_code)]

/// Multi-producer channels (the `crossbeam::channel` subset in use).
pub mod channel {
    /// Sending half of an unbounded channel.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub struct SendError<T>(pub T);

    // Like real crossbeam: `Debug` without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender was dropped and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the allowed window.
        Timeout,
        /// Every sender was dropped and the channel is drained.
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; never blocks (the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking poll: returns immediately whether or not a value is
        /// available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                std::sync::mpsc::TryRecvError::Empty => TryRecvError::Empty,
                std::sync::mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a value arrives, every sender is dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        std::thread::spawn(move || tx.send(1).unwrap());
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
