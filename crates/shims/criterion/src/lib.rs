//! Offline build shim for the `criterion` crate.
//!
//! The workspace builds without registry access, so the bench targets link
//! against this minimal stand-in instead of real criterion. It implements the
//! API subset the benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros) with a plain wall-clock harness: a short
//! warm-up, `sample_size` timed samples, and a mean/min report on stdout.
//! No statistics, plots or baselines — swap the real criterion back in when a
//! registry is reachable; no bench source changes are needed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

/// Per-iteration timing driver passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples after one warm-up pass.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{label}: mean {mean:?}, min {min:?} ({} samples)",
            self.name,
            b.samples.len()
        );
    }

    /// Runs a benchmark under `id`.
    pub fn bench_function<'a, F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) + 'a,
    {
        let id = id.into();
        self.run_one(&id.label, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(self) {}
}

/// The top-level bench context handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Declares a bench group function invoking each target with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("counting", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        // 3 samples + 1 warm-up.
        assert_eq!(runs, 4);
    }
}
