//! Offline build shim for the `parking_lot` crate.
//!
//! Provides the poison-free `Mutex` API that `dspgemm-core` uses for its
//! `(i mod T)` sharded update application, backed by `std::sync::Mutex`.
//! Poisoning is deliberately swallowed: a panicked shard already propagates
//! through `parallel_for_each_shard`, so follow-on lock acquisitions behave
//! like parking_lot's (which has no poisoning at all).

#![forbid(unsafe_code)]

use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// RAII guard for [`Mutex`]; derefs to the protected value.
pub struct MutexGuard<'a, T>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn contended_from_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
