//! # dspgemm-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (Section VII),
//! callable from the `repro` binary (`cargo run -p dspgemm-bench --release
//! --bin repro -- <experiment>`) and from the criterion benches. Each
//! experiment runs our system and the relevant baselines on identical
//! workloads (same seeds, same permutations — as the paper mandates) and
//! returns a printable [`report::Table`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod report;

/// Experiment scale and shape knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Catalog scale-down divisor (see `dspgemm_graph::catalog`); smaller =
    /// bigger proxies.
    pub divisor: u64,
    /// Simulated MPI ranks (must be a perfect square for grid systems).
    pub p: usize,
    /// Intra-rank threads (the paper's OpenMP `T`).
    pub threads: usize,
    /// Batches per instance (the paper uses 10).
    pub batches: usize,
    /// Number of catalog instances to run (1..=12, by Table-I order).
    pub instances: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-rank update batch size for the dynamic arms (`overlap`,
    /// `commavoid`); matches the copy-elim ablation's historical constant
    /// so numbers stay comparable across PRs.
    pub batch_size: usize,
    /// Max/mean per-rank load imbalance above which the adaptive arm of
    /// `repro rebalance` migrates block boundaries.
    pub rebalance_threshold: f64,
    /// Minimum epochs between migrations in the adaptive arm.
    pub rebalance_cooldown: u64,
    /// Batch at which the crash arm of `repro faults` kills a rank
    /// (`>= batches` disables the crash — the CI absence check).
    pub crash_batch: u64,
    /// Committed epochs between copy-on-write recovery anchors in
    /// `repro faults`.
    pub anchor_period: u64,
}

impl Default for Config {
    /// Defaults sized for a small (2-core) machine: 4 simulated ranks and no
    /// intra-rank threading keep the thread count near the core count, so
    /// relative timings between systems stay meaningful. On a bigger box,
    /// raise `--p 16 --threads 2` to mirror the paper's 4-ranks-per-node
    /// configuration more closely.
    fn default() -> Self {
        Self {
            divisor: 4096,
            p: 4,
            threads: 1,
            batches: 10,
            instances: 6,
            seed: 0xD59E_2022,
            batch_size: 4096,
            rebalance_threshold: 1.5,
            rebalance_cooldown: 2,
            crash_batch: 1,
            anchor_period: 2,
        }
    }
}

impl Config {
    /// A reduced configuration for smoke tests.
    pub fn smoke() -> Self {
        Self {
            divisor: 32768,
            p: 4,
            threads: 1,
            batches: 2,
            instances: 2,
            seed: 7,
            batch_size: 4096,
            rebalance_threshold: 1.5,
            rebalance_cooldown: 2,
            crash_batch: 1,
            anchor_period: 2,
        }
    }
}
