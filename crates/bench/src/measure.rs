//! Timing collectives inside the simulator.
//!
//! Wall time of a collective operation is measured on rank 0 between two
//! barriers: the entry barrier aligns all ranks (so set-up skew does not
//! leak in) and the exit barrier waits for the slowest rank (the paper's
//! times are end-to-end batch times, i.e. critical path).

use dspgemm_mpi::{Comm, CommStats};
use dspgemm_obs::Histogram;
use std::time::{Duration, Instant};

/// Modeled interconnect bandwidth: the paper's cluster uses 100 GBit
/// Omni-Path; 12.5 GB/s per link.
pub const MODEL_BANDWIDTH_BYTES_PER_SEC: f64 = 12.5e9;

/// Modeled per-message latency (switched fabric, small messages).
pub const MODEL_LATENCY: Duration = Duration::from_micros(1);

/// A measured batch: local wall time plus the exact traffic it generated.
#[derive(Debug, Clone)]
pub struct BatchCost {
    /// Measured wall time (local computation dominates in the simulator).
    pub wall: Duration,
    /// Critical-path bytes: the maximum sent by any single rank.
    pub crit_bytes: u64,
    /// Total messages.
    pub msgs: u64,
}

impl BatchCost {
    /// Wall time plus a simple α-β network model for the metered traffic.
    ///
    /// The simulator moves payloads by pointer, so measured wall time
    /// excludes network transfer almost entirely; adding
    /// `crit_bytes / bandwidth + msgs·α` restores the cost a real cluster
    /// pays — the cost the paper's dynamic algorithms are designed to avoid.
    pub fn modeled(&self) -> Duration {
        let transfer =
            Duration::from_secs_f64(self.crit_bytes as f64 / MODEL_BANDWIDTH_BYTES_PER_SEC);
        self.wall + transfer + MODEL_LATENCY * self.msgs as u32
    }
}

/// Times `op` as a collective and captures the traffic delta it caused
/// (entry/exit barriers make the snapshot exact; barrier control messages
/// are excluded from the delta by subtracting their category).
pub fn measured_collective<R>(comm: &Comm, op: impl FnOnce() -> R) -> (R, BatchCost) {
    comm.barrier();
    let before: CommStats = comm.comm_stats();
    let t = Instant::now();
    let r = op();
    comm.barrier();
    let wall = t.elapsed();
    let after: CommStats = comm.comm_stats();
    let delta = after.delta_since(&before);
    let barrier_msgs = delta.msgs_in(dspgemm_mpi::CommCategory::Barrier);
    (
        r,
        BatchCost {
            wall,
            crit_bytes: delta.max_rank_bytes(),
            msgs: delta.total_msgs().saturating_sub(barrier_msgs),
        },
    )
}

/// Median of batch costs, component-wise (robust on a noisy host).
pub fn median_cost(costs: &[BatchCost]) -> BatchCost {
    BatchCost {
        wall: median(&costs.iter().map(|c| c.wall).collect::<Vec<_>>()),
        crit_bytes: median_u64(costs.iter().map(|c| c.crit_bytes)),
        msgs: median_u64(costs.iter().map(|c| c.msgs)),
    }
}

/// Median of a `u64` stream via the shared log-bucketed histogram (no
/// sample stored or sorted; ≤ one sub-bucket of error — see
/// [`dspgemm_obs::SUB_BITS`]).
fn median_u64(vals: impl Iterator<Item = u64>) -> u64 {
    let mut h = Histogram::new();
    for v in vals {
        h.record(v);
    }
    h.quantile(0.5)
}

/// Times `op` as a collective: barrier, run, barrier; returns the duration
/// measured on this rank (all ranks observe nearly the same value; use rank
/// 0's).
pub fn timed_collective<R>(comm: &Comm, op: impl FnOnce() -> R) -> (R, Duration) {
    comm.barrier();
    let t = Instant::now();
    let r = op();
    comm.barrier();
    (r, t.elapsed())
}

/// Mean duration of a slice.
pub fn mean(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    durations.iter().sum::<Duration>() / durations.len() as u32
}

/// Median duration of a slice — the robust per-batch aggregate on an
/// oversubscribed host, where a descheduled rank occasionally inflates a
/// single batch by an order of magnitude. Computed through the shared
/// log-bucketed [`Histogram`] (same rank selection as the sort-based
/// estimator it replaced, within one sub-bucket of error).
pub fn median(durations: &[Duration]) -> Duration {
    let mut h = Histogram::new();
    for d in durations {
        h.record_duration(*d);
    }
    h.quantile_duration(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_collective_reports_slowest_rank() {
        let out = dspgemm_mpi::run(4, |comm| {
            let (_, d) = timed_collective(comm, || {
                if comm.rank() == 3 {
                    std::thread::sleep(Duration::from_millis(30));
                }
            });
            d
        });
        // Every rank's measurement includes the slow rank's 30 ms.
        assert!(out.results.iter().all(|d| *d >= Duration::from_millis(25)));
    }

    #[test]
    fn mean_of_durations() {
        assert_eq!(
            mean(&[Duration::from_millis(2), Duration::from_millis(4)]),
            Duration::from_millis(3)
        );
        assert_eq!(mean(&[]), Duration::ZERO);
    }
}
