//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! cargo run -p dspgemm-bench --release --bin repro -- <experiment> [options]
//!
//! experiments:
//!   table1 fig3 fig4 fig5a fig5b fig6 fig7 fig8a fig8b fig9 fig10 fig11 fig12
//!   ablation-redist ablation-bloom ablation-agg analytics copy-elim overlap commavoid balance serve rebalance faults transport
//!   data        (= table1 fig3 fig4 fig5a fig5b fig6 fig7 fig8a fig8b)
//!   spgemm      (= fig9 fig10 fig11 fig12)
//!   ablations   (= the three ablations)
//!   all         (= everything)
//!
//! options:
//!   --divisor N       catalog scale-down divisor      (default 4096)
//!   --p N             simulated MPI ranks             (default 16, square)
//!   --threads N       intra-rank threads              (default 2)
//!   --batches N       batches per instance            (default 10)
//!   --instances N     catalog instances to run        (default 6, max 12)
//!   --seed N          master seed                     (default fixed)
//!   --batch-size N    per-rank dynamic update batch   (default 4096;
//!                     the overlap and commavoid arms)
//!   --rebalance-threshold X   max/mean load imbalance above which the
//!                     adaptive arm of `rebalance` migrates (default 1.5)
//!   --rebalance-cooldown N    min epochs between migrations (default 2)
//!   --crash-batch N   batch at which the crash arm of `faults` kills a
//!                     rank (default 1; >= --batches disables the crash)
//!   --anchor-period N committed epochs between recovery anchors in
//!                     `faults` (default 2)
//!   --smoke           tiny configuration for CI
//!   --trace-out F     enable the span tracer; write a Chrome trace_event
//!                     JSON (chrome://tracing / Perfetto) covering every
//!                     experiment run, then schema-validate it
//!   --metrics-out F   enable observability; write the global metrics
//!                     registry (counters, gauges, histogram percentiles)
//!                     as JSON after the last experiment
//! ```

use dspgemm_bench::experiments::{
    ablations, analytics, balance, commavoid, construction, copy_elim, faults, overlap, rebalance,
    serve, spgemm, table1, transport, updates,
};
use dspgemm_bench::Config;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig3|fig4|fig5a|fig5b|fig6|fig7|fig8a|fig8b|fig9|fig10|fig11|fig12|ablation-redist|ablation-bloom|ablation-agg|analytics|copy-elim|overlap|commavoid|balance|serve|rebalance|faults|transport|data|spgemm|ablations|all> [--divisor N] [--p N] [--threads N] [--batches N] [--instances N] [--seed N] [--batch-size N] [--rebalance-threshold X] [--rebalance-cooldown N] [--smoke] [--trace-out FILE] [--metrics-out FILE]"
    );
    std::process::exit(2);
}

/// True when this process is a re-executed TCP rank child of the
/// `transport` experiment (feature `tcp-transport`): parent-only output is
/// suppressed and only the transport path runs — it routes the child to
/// its rank body, which exits the process.
fn tcp_child() -> bool {
    #[cfg(feature = "tcp-transport")]
    {
        dspgemm_mpi::tcp::is_child()
    }
    #[cfg(not(feature = "tcp-transport"))]
    {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cfg = Config::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--divisor" => {
                cfg.divisor = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--p" => {
                cfg.p = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--threads" => {
                cfg.threads = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--batches" => {
                cfg.batches = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--instances" => {
                cfg.instances = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--batch-size" => {
                cfg.batch_size = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--rebalance-threshold" => {
                cfg.rebalance_threshold = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--rebalance-cooldown" => {
                cfg.rebalance_cooldown = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--crash-batch" => {
                cfg.crash_batch = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--anchor-period" => {
                cfg.anchor_period = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--smoke" => {
                let keep = (
                    cfg.rebalance_threshold,
                    cfg.rebalance_cooldown,
                    cfg.crash_batch,
                    cfg.anchor_period,
                );
                cfg = Config::smoke();
                (
                    cfg.rebalance_threshold,
                    cfg.rebalance_cooldown,
                    cfg.crash_batch,
                    cfg.anchor_period,
                ) = keep;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).map(Into::into).unwrap_or_else(|| usage()));
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(args.get(i + 1).map(Into::into).unwrap_or_else(|| usage()));
                i += 1;
            }
            other if !other.starts_with("--") => experiments.push(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    if experiments.is_empty() {
        usage();
    }
    // Expand groups.
    let mut expanded = Vec::new();
    for e in experiments {
        match e.as_str() {
            "data" => expanded.extend(
                [
                    "table1", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8a", "fig8b",
                ]
                .map(String::from),
            ),
            "spgemm" => expanded.extend(["fig9", "fig10", "fig11", "fig12"].map(String::from)),
            "ablations" => expanded
                .extend(["ablation-redist", "ablation-bloom", "ablation-agg"].map(String::from)),
            "all" => expanded.extend(
                [
                    "table1",
                    "fig3",
                    "fig4",
                    "fig5a",
                    "fig5b",
                    "fig6",
                    "fig7",
                    "fig8a",
                    "fig8b",
                    "fig9",
                    "fig10",
                    "fig11",
                    "fig12",
                    "ablation-redist",
                    "ablation-bloom",
                    "ablation-agg",
                    "analytics",
                ]
                .map(String::from),
            ),
            _ => expanded.push(e),
        }
    }
    if tcp_child() {
        expanded.retain(|e| e == "transport");
    }
    // One switch arms the whole observability layer: spans for the trace
    // export, plus the enabled()-gated metric recordings (query-latency
    // histograms) that feed the registry export.
    if trace_out.is_some() || metrics_out.is_some() {
        dspgemm_obs::set_enabled(true);
    }
    if !tcp_child() {
        println!(
            "# dspgemm repro — divisor={} p={} threads={} batches={} instances={} seed={:#x}",
            cfg.divisor, cfg.p, cfg.threads, cfg.batches, cfg.instances, cfg.seed
        );
    }
    for e in expanded {
        let started = std::time::Instant::now();
        let table = match e.as_str() {
            "table1" => table1::run(&cfg),
            "fig3" => construction::run(&cfg),
            "fig4" => updates::batch_size_sweep(&cfg, updates::Mode::Insert),
            "fig5a" => updates::batch_size_sweep(&cfg, updates::Mode::Update),
            "fig5b" => updates::batch_size_sweep(&cfg, updates::Mode::Delete),
            "fig6" => updates::fig6(&cfg),
            "fig7" => updates::fig7(&cfg),
            "fig8a" => updates::fig8(&cfg, false),
            "fig8b" => updates::fig8(&cfg, true),
            "fig9" => spgemm::fig9(&cfg),
            "fig10" => spgemm::fig10(&cfg),
            "fig11" => spgemm::fig11(&cfg),
            "fig12" => spgemm::fig12(&cfg),
            "analytics" => analytics::run(&cfg),
            "copy-elim" => copy_elim::run(&cfg),
            "overlap" => overlap::run(&cfg),
            "commavoid" => commavoid::run(&cfg),
            "balance" => balance::run(&cfg),
            "rebalance" => rebalance::run(&cfg),
            "faults" => faults::run(&cfg),
            "transport" => transport::run(&cfg),
            "serve" => serve::run(&cfg),
            "ablation-redist" => ablations::redistribution(&cfg),
            "ablation-bloom" => ablations::bloom_filter(&cfg),
            "ablation-agg" => ablations::aggregation(&cfg),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        };
        println!("{table}");
        println!(
            "  (experiment wall time: {:.1} s)\n",
            started.elapsed().as_secs_f64()
        );
    }
    if trace_out.is_some() || metrics_out.is_some() {
        dspgemm_obs::set_enabled(false);
        let events = dspgemm_obs::drain();
        if let Some(path) = &trace_out {
            if let Err(e) = dspgemm_obs::write_chrome_trace(path, &events) {
                eprintln!("error: writing trace to {}: {e}", path.display());
                std::process::exit(1);
            }
            // Self-check the export: well-formed events, monotone
            // timestamps, matched B/E pairs.
            match dspgemm_obs::validate_chrome_trace_file(path) {
                Ok(s) => println!(
                    "# trace: {} events ({} spans, {} instants, {:.1} ms) -> {}",
                    s.events,
                    s.spans,
                    s.instants,
                    s.max_ts_us / 1e3,
                    path.display()
                ),
                Err(e) => {
                    eprintln!("error: emitted trace failed validation: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &metrics_out {
            let json = dspgemm_obs::global().snapshot().to_json();
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error: writing metrics to {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("# metrics: registry snapshot -> {}", path.display());
        }
    }
}
