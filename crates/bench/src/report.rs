//! Result tables and series printing.

use std::fmt::Write as _;

/// A printable result table: named columns, string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (e.g. `Figure 4: mean insertion performance`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (must match `columns` in length).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (e.g. "CTF at least 55× slower").
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.columns);
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a millisecond value.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a ratio (speedup factor).
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("test", &["a", "long-column"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "20000".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== test =="));
        assert!(s.contains("long-column"));
        assert!(s.contains("* a note"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len(), "rows aligned");
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
