//! Fault injection & epoch-anchored recovery: survive a rank failure with
//! deterministic replay, at zero cost to the maintained product's bits.
//!
//! Three arms run the identical update workload through a recovery-enabled
//! [`DynSpGemm`] session (write-ahead logs and buddy-replicated anchors are
//! on everywhere, so the arms' steady-state wire volume is comparable):
//!
//! * **fault-free** — no injected faults; the bit-reference.
//! * **crash at batch k** — one rank is killed at its first send of batch
//!   `--crash-batch`; survivors roll back to the agreed anchor, the dead
//!   rank rebuilds as a replacement from its buddy's replica, and replay +
//!   batch re-submission finish the workload.
//! * **delay storm** — a seeded jitter schedule perturbs every rank's send
//!   timing (no failures); exercises the claim that recovery determinism
//!   does not depend on message interleaving.
//!
//! Hard invariants, asserted per run:
//!
//! * the root-gathered final `C` and every rank's flop counter are
//!   **bit-identical** across all three arms;
//! * every per-batch local `C` observation made by an arm matches the
//!   fault-free arm's observation of the same batch (a survivor
//!   interrupted mid-batch may lack at most one observation per recovery);
//! * the epoch pinned at batch 0 stays bit-stable through crash, rollback
//!   and replay — on every rank that committed batch 0 locally before the
//!   failure interrupted it (the same ≤1-gap-per-recovery contract: a
//!   survivor the asynchronous marker catches inside batch 0 never takes
//!   the pin at all);
//! * the crash arm recovers exactly once on every rank, replays exactly
//!   the rolled-back window, and moves replica-rebuild bytes over the
//!   wire; the delay arm (and a disabled crash) recover zero times;
//! * fault-free and delay-storm arms transfer identical logical bytes
//!   (injected jitter models wasted time, not traffic).
//!
//! Detection latency, rollback depth, replay length and rebuild volume are
//! reported per arm and land in `BENCH_pr9.json`; the `engine/recover`
//! spans appear in an exported trace only from the crash arm (the other
//! arms run tracer-suppressed — the CI trace check asserts presence here
//! and absence when `--crash-batch` is past the last batch).

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::report::{ms, Table};
use crate::Config;
use dspgemm_core::dyn_algebraic::TransposeMode;
use dspgemm_core::recovery::RecoveryConfig;
use dspgemm_core::{DistMat, DynSpGemm, Exec, Grid, RecoveryReport};
use dspgemm_mpi::{run_with_faults, Comm, CommError, FaultPlan};
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::Triple;
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::stats::PhaseTimer;
use std::time::{Duration, Instant};

/// Rank-local update feed for one batch — a pure function of
/// `(seed, batch, rank)`, so a replayed or re-submitted batch regenerates
/// bit-identical inputs. Unit values keep `C` integer-valued in `f64`, so
/// cross-arm bit-identity is exact despite reordered accumulation.
pub(crate) fn batch_updates(
    n: u32,
    size: usize,
    seed: u64,
    batch: u64,
    rank: usize,
) -> (Vec<Triple<f64>>, Vec<Triple<f64>>) {
    let draw = |salt: u64| -> Vec<Triple<f64>> {
        let mut rng = SplitMix64::new(
            seed ^ salt ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((rank as u64) << 17),
        );
        (0..size)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as u32,
                    rng.gen_range(n as u64) as u32,
                    1.0,
                )
            })
            .collect()
    };
    (draw(0xA), draw(0xB))
}

/// What one rank observed over a full driven run.
type ArmOutcome = (
    Vec<(u64, Vec<Triple<f64>>)>, // (batch, local C block) at each local commit
    Option<Vec<Triple<f64>>>,     // root-gathered final C
    u64,                          // final local flop counter
    u64,                          // final latest epoch number
    Option<Vec<Triple<f64>>>,     // pinned batch-0 snapshot's local C at run end
    //                               (None: interrupted before the pin)
    u64,                    // recoveries this rank performed
    Option<RecoveryReport>, // report of the (single) recovery, if any
);

/// One arm of the ablation.
#[derive(Debug, Clone)]
pub struct FaultArm {
    /// Wall time of the whole driven run (includes any recovery).
    pub wall: Duration,
    /// Network-wide logical wire bytes of the arm.
    pub total_bytes: u64,
    /// Per-rank outcomes.
    pub outcomes: Vec<ArmOutcome>,
}

/// Drives `batches` update batches through the fault-tolerant engine path,
/// optionally arming a crash of rank `crash.0` at batch `crash.1`,
/// recovering (survivors roll back + replay, the victim rebuilds as the
/// replacement) and re-submitting uncommitted batches until all commit.
pub fn fault_arm(
    cfg: &Config,
    inst: &Prepared,
    p: usize,
    crash: Option<(usize, u64)>,
    plan: FaultPlan,
) -> FaultArm {
    let n = inst.n;
    let threads = cfg.threads;
    let batches = cfg.batches.max(2) as u64;
    let batch_size = cfg.batch_size.min(512);
    let seed = cfg.seed;
    let rcfg = RecoveryConfig {
        anchor_period: cfg.anchor_period.max(1),
        max_log: 64,
    };
    let edges = &inst.edges;
    let started = Instant::now();
    let out = run_with_faults(p, plan, move |comm: &Comm| {
        let grid = Grid::new(comm);
        let me = comm.rank();
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, me, p));
        let a = DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        let mut session = DynSpGemm::<F64Plus>::new(&grid, a, b, threads, false);
        session.enable_recovery(&grid, rcfg);
        let mut eng = Some(session);

        let mut per_batch = Vec::new();
        let mut pinned = None;
        let mut armed = false;
        let mut recoveries = 0u64;
        let mut report = None;
        let mut b_idx = 0u64;
        while b_idx < batches {
            if let Some((crank, cbatch)) = crash {
                if me == crank && b_idx == cbatch && !armed {
                    comm.arm_crash(1);
                    armed = true;
                }
            }
            let (a_ups, b_ups) = batch_updates(n, batch_size, seed, b_idx, me);
            let mut e = eng.take().expect("engine present between batches");
            match e.try_apply_algebraic(&grid, a_ups, b_ups) {
                Ok(()) => {
                    e.publish();
                    // Observe the committed batch locally from the published
                    // snapshot (bit-stable; a cross-rank gather here would
                    // race the asynchronous failure notification).
                    let snap = e.snapshot();
                    per_batch.push((b_idx, snap.c().block().to_triples()));
                    if b_idx == 0 {
                        pinned = Some(snap);
                    }
                    eng = Some(e);
                    b_idx += 1;
                }
                Err(CommError::PeerFailed { .. }) => {
                    let r = e.recover(&grid);
                    recoveries += 1;
                    b_idx = r.committed_publishes - 1;
                    report = Some(r);
                    eng = Some(e);
                }
                Err(CommError::Crashed { .. }) => {
                    drop(e); // the crashed session is unrecoverable state
                    let (e2, r) = DynSpGemm::<F64Plus>::recover_as_replacement(
                        &grid,
                        Exec::new(threads),
                        TransposeMode::default(),
                        rcfg,
                    );
                    recoveries += 1;
                    b_idx = r.committed_publishes - 1;
                    report = Some(r);
                    eng = Some(e2);
                }
                Err(other) => panic!("unexpected comm error: {other}"),
            }
        }
        let e = eng.take().expect("engine present at end");
        let final_c = e.c.gather_to_root(comm);
        // A survivor the failure marker catches inside batch 0 never took
        // the pin: its absence is the one observation the gap contract
        // allows per recovery.
        let pin_content = pinned.map(|pin| pin.c().block().to_triples());
        (
            per_batch,
            final_c,
            e.flops,
            e.epoch().expect("published"),
            pin_content,
            recoveries,
            report,
        )
    });
    FaultArm {
        wall: started.elapsed(),
        total_bytes: out.stats.total_bytes(),
        outcomes: out.results,
    }
}

/// Cross-checks one arm against the fault-free reference and returns the
/// recovery totals `(recoveries, report)` of its rank 0.
fn check_arm(
    name: &str,
    batches: u64,
    reference: &FaultArm,
    arm: &FaultArm,
    expected_recoveries: u64,
) -> Option<RecoveryReport> {
    for (rank, ((pb_r, fc_r, fl_r, ep_r, pin_r, _, _), (pb_a, fc_a, fl_a, ep_a, pin_a, rec, _))) in
        reference.outcomes.iter().zip(&arm.outcomes).enumerate()
    {
        assert_eq!(fc_r, fc_a, "{name} rank={rank}: final C diverged");
        assert_eq!(fl_r, fl_a, "{name} rank={rank}: flop counters diverged");
        // The fault-free reference always pins; this arm may only lack the
        // pin when a recovery interrupted the rank inside batch 0.
        assert!(
            pin_r.is_some(),
            "{name} rank={rank}: reference arm lost its pin"
        );
        match pin_a {
            Some(_) => assert_eq!(
                pin_r, pin_a,
                "{name} rank={rank}: pinned batch-0 epoch diverged"
            ),
            None => assert!(
                expected_recoveries > 0,
                "{name} rank={rank}: pin missing without a recovery"
            ),
        }
        // Each recovery inserts exactly one uniform extra epoch.
        assert_eq!(*ep_a, ep_r + expected_recoveries, "{name} rank={rank}");
        assert_eq!(*rec, expected_recoveries, "{name} rank={rank}");
        // The reference observed every batch; this arm may lack at most one
        // observation per recovery (a survivor interrupted mid-batch never
        // locally publishes that epoch), and every observation it did make
        // must match bit-for-bit.
        assert_eq!(pb_r.len() as u64, batches);
        assert!(
            pb_a.len() as u64 >= batches - expected_recoveries,
            "{name} rank={rank}: more than one observation lost per recovery"
        );
        for (b, c_a) in pb_a {
            let (_, c_r) = &pb_r[*b as usize];
            assert_eq!(
                c_r, c_a,
                "{name} rank={rank} batch={b}: per-batch C diverged"
            );
        }
        assert_eq!(pb_a.last().map(|(b, _)| *b), Some(batches - 1));
    }
    arm.outcomes[0].6.clone()
}

/// The `repro faults` table.
pub fn run(cfg: &Config) -> Table {
    let p = cfg.p;
    let batches = cfg.batches.max(2) as u64;
    let crash_enabled = cfg.crash_batch >= 1 && cfg.crash_batch < batches;
    let crash_rank = p / 2;
    let mut t = Table::new(
        format!(
            "Fault injection & epoch-anchored recovery: crash rank {crash_rank} at batch {} of \
             {batches}, p={p}, anchor period {}",
            cfg.crash_batch, cfg.anchor_period
        ),
        &[
            "benchmark",
            "wall",
            "recoveries",
            "rollback epochs",
            "replayed batches",
            "rebuild bytes",
            "detect latency",
            "final C",
        ],
    );
    let inst = &prepare_instances(cfg)[0];

    // Only the crash arm runs with the tracer live: an exported trace of
    // this experiment documents the recovery schedule, where the
    // `engine/recover` spans must appear — and must be absent when the
    // crash batch is past the end (the CI presence/absence checks).
    let was = dspgemm_obs::enabled();
    dspgemm_obs::set_enabled(false);
    let fault_free = fault_arm(cfg, inst, p, None, FaultPlan::new(cfg.seed));
    let delay = fault_arm(
        cfg,
        inst,
        p,
        None,
        FaultPlan::new(cfg.seed).delay_storm(3, 40),
    );
    dspgemm_obs::set_enabled(was);
    let crash = fault_arm(
        cfg,
        inst,
        p,
        crash_enabled.then_some((crash_rank, cfg.crash_batch)),
        FaultPlan::new(cfg.seed),
    );

    let expected = if crash_enabled { 1 } else { 0 };
    check_arm("delay-storm", batches, &fault_free, &delay, 0);
    let report = check_arm("crash", batches, &fault_free, &crash, expected);
    // Jitter models wasted time, never traffic: logical bytes match.
    assert_eq!(
        fault_free.total_bytes, delay.total_bytes,
        "delay storm must not change logical wire volume"
    );
    if let Some(r) = &report {
        assert_eq!(r.failed_ranks, vec![crash_rank]);
        assert_eq!(
            r.replayed_batches, r.rollback_epochs,
            "replay must re-apply exactly the rolled-back window"
        );
        assert!(r.rebuild_bytes > 0, "replacement rebuild must move bytes");
    } else {
        assert!(
            !crash_enabled,
            "an enabled crash must produce a recovery report"
        );
    }

    for (name, arm, rep) in [
        ("fault-free (reference)", &fault_free, &None),
        ("crash + rollback/replay", &crash, &report),
        ("delay storm (seeded jitter)", &delay, &None),
    ] {
        let (rollback, replayed, rebuild, detect) = rep
            .as_ref()
            .map(|r| {
                (
                    r.rollback_epochs.to_string(),
                    r.replayed_batches.to_string(),
                    dspgemm_util::stats::format_bytes(r.rebuild_bytes),
                    format!("{:.1} us", r.detect_ns as f64 / 1e3),
                )
            })
            .unwrap_or_else(|| ("0".into(), "0".into(), "-".into(), "-".into()));
        t.push_row(vec![
            name.to_string(),
            ms(arm.wall),
            arm.outcomes[0].5.to_string(),
            rollback,
            replayed,
            rebuild,
            detect,
            "bit-identical".to_string(),
        ]);
    }

    t.note(
        "all arms run with write-ahead logging and buddy-replicated anchors enabled; final C, \
         per-rank flops, every common per-batch observation and the pinned batch-0 epoch (on \
         every rank that committed batch 0 before being interrupted) are asserted bit-identical \
         across arms",
    );
    t.note(
        "the crash arm recovers exactly once per rank: survivors roll back to the agreed anchor \
         and replay their logs, the victim rebuilds as a replacement from its buddy's replica",
    );
    t.note(
        "detect latency = marker-to-detection time of the failure, max over ranks; rebuild bytes \
         = wire volume of the replica bundle shipped to the replacement",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_smoke() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 3;
        cfg.crash_batch = 1;
        // The run itself asserts cross-arm bit-identity, single recovery,
        // replay-window equality and rebuild traffic.
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn faults_at_p9() {
        let mut cfg = Config::smoke();
        cfg.p = 9;
        cfg.instances = 1;
        cfg.batches = 3;
        cfg.crash_batch = 1;
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn faults_disabled_crash_recovers_zero_times() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 2;
        cfg.crash_batch = 99; // past the last batch: the absence arm
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
    }
}
