//! Fig. 9–12: dynamic SpGEMM performance.
//!
//! Protocol of Section VII-C: `C' = A'·B` where `B` is the full (static)
//! adjacency matrix and `A'` starts empty and grows by per-rank uniform
//! draws from the adjacency matrix, in batches. Our algorithms update `C`
//! dynamically; the competitors compute `A*·B` with their static SpGEMM and
//! fold it into `C` (algebraic case, Fig. 9), or recompute `A'·B` from
//! scratch (general case under `(min, +)`, Fig. 10).
//!
//! ## Reporting
//!
//! The simulator moves message payloads by pointer, so *measured* wall time
//! is local computation only — it misses exactly the cost the paper's
//! algorithms optimize (broadcasting the full operands over a real
//! interconnect). Every batch therefore reports both the measured time and a
//! **modeled** time = measured + critical-path bytes / 12.5 GB/s + 1 µs per
//! message (the paper's 100 GBit Omni-Path). Comparisons quote the modeled
//! numbers; tables include the raw components so nothing is hidden.

use crate::experiments::{
    edges_to_triples, edges_to_weighted, prepare_instances, rank_slice, Prepared,
};
use crate::measure::{measured_collective, median_cost, BatchCost};
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_baselines::{
    combblas, combblas::CombBlasMatrix, ctf, ctf::CtfMatrix, petsc, petsc::PetscMatrix,
};
use dspgemm_core::dyn_algebraic::apply_algebraic_updates;
use dspgemm_core::dyn_general::{apply_general_updates, GeneralUpdates};
use dspgemm_core::summa::summa_bloom;
use dspgemm_core::{DistMat, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_sparse::semiring::{F64Plus, MinPlus};
use dspgemm_sparse::Triple;
use dspgemm_util::hash::mix_pair;
use dspgemm_util::stats::{format_bytes, PhaseTimer};

/// Per-rank batch sizes. The paper uses 1024…8192 on graphs of 86 M – 3.6 B
/// non-zeros; keeping the paper's nnz(C*) ≪ nnz(B) regime at proxy scale
/// requires proportionally smaller batches.
pub const SPGEMM_BATCHES: [usize; 3] = [16, 64, 256];

fn unit_batch(draws: &mut ReplacementDraws, edges: &[(u32, u32)]) -> Vec<Triple<f64>> {
    draws
        .next_batch(edges)
        .into_iter()
        .map(|(u, v)| Triple::new(u, v, 1.0))
        .collect()
}

fn weighted_batch(
    draws: &mut ReplacementDraws,
    edges: &[(u32, u32)],
    round: u64,
) -> Vec<Triple<f64>> {
    draws
        .next_batch(edges)
        .into_iter()
        .map(|(u, v)| Triple::new(u, v, 1.0 + ((mix_pair(u, v) ^ round) % 97) as f64))
        .collect()
}

/// Median per-batch cost of our algebraic dynamic SpGEMM (Fig. 9 protocol),
/// plus the critical-path phase breakdown for Fig. 12 (exposed wall time
/// per phase, with the pipelined schedule's compute-hidden communication
/// carried in the timer's overlapped component so `comm_total` stays
/// reconstructible).
pub fn ours_algebraic(
    cfg: &Config,
    inst: &Prepared,
    batch_size: usize,
    p: usize,
) -> (BatchCost, PhaseTimer) {
    let n = inst.n;
    let (threads, batches, seed) = (cfg.threads, cfg.batches, cfg.seed);
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let mut b = DistMat::from_global_triples(&grid, n, n, b_mine, threads, &mut timer);
        let mut a: DistMat<f64> = DistMat::empty(&grid, n, n);
        let mut c: DistMat<f64> = DistMat::empty(&grid, n, n);
        let mut timer = PhaseTimer::new();
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut costs = Vec::new();
        for _ in 0..batches {
            let batch = unit_batch(&mut draws, edges);
            let (_, cost) = measured_collective(comm, || {
                apply_algebraic_updates::<F64Plus>(
                    &grid,
                    &mut a,
                    &mut b,
                    &mut c,
                    batch.clone(),
                    vec![],
                    threads,
                    &mut timer,
                )
            });
            costs.push(cost);
        }
        (median_cost(&costs), timer)
    });
    let mut merged = PhaseTimer::new();
    for (_, pt) in &out.results {
        merged.merge_max(pt);
    }
    (out.results[0].0.clone(), merged)
}

fn combblas_algebraic(cfg: &Config, inst: &Prepared, batch_size: usize) -> BatchCost {
    let n = inst.n;
    let (p, threads, batches, seed) = (cfg.p, cfg.threads, cfg.batches, cfg.seed);
    let edges = &inst.edges;
    dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let b = CombBlasMatrix::construct::<F64Plus>(&grid, n, n, b_mine, &mut timer);
        let mut c = CombBlasMatrix::<f64>::empty(&grid, n, n);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut costs = Vec::new();
        for _ in 0..batches {
            let batch = unit_batch(&mut draws, edges);
            let (_, cost) = measured_collective(comm, || {
                // Competitor protocol: build A*, compute A*·B statically
                // (full B broadcast), fold into C.
                let a_star =
                    CombBlasMatrix::construct::<F64Plus>(&grid, n, n, batch.clone(), &mut timer);
                let (delta, _) =
                    combblas::spgemm::<F64Plus>(&grid, &a_star, &b, threads, &mut timer);
                c.merge_add_local::<F64Plus>(&delta);
            });
            costs.push(cost);
        }
        median_cost(&costs)
    })
    .results
    .remove(0)
}

fn ctf_algebraic(cfg: &Config, inst: &Prepared, batch_size: usize) -> BatchCost {
    let n = inst.n;
    let (p, threads, batches, seed) = (cfg.p, cfg.threads, cfg.batches, cfg.seed);
    let edges = &inst.edges;
    dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let b = CtfMatrix::construct::<F64Plus>(&grid, n, n, b_mine, &mut timer);
        let mut c = CombBlasMatrix::<f64>::empty(&grid, n, n);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut costs = Vec::new();
        for _ in 0..batches {
            let batch = unit_batch(&mut draws, edges);
            let (_, cost) = measured_collective(comm, || {
                let a_star =
                    CtfMatrix::construct::<F64Plus>(&grid, n, n, batch.clone(), &mut timer);
                let (delta, _) = ctf::spgemm::<F64Plus>(&grid, &a_star, &b, threads, &mut timer);
                c.merge_add_local::<F64Plus>(&delta);
            });
            costs.push(cost);
        }
        median_cost(&costs)
    })
    .results
    .remove(0)
}

fn petsc_algebraic(cfg: &Config, inst: &Prepared, batch_size: usize) -> BatchCost {
    let n = inst.n;
    let (p, threads, batches, seed) = (cfg.p, cfg.threads, cfg.batches, cfg.seed);
    let edges = &inst.edges;
    dspgemm_mpi::run(p, |comm| {
        let mut timer = PhaseTimer::new();
        let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let b = PetscMatrix::construct::<F64Plus>(comm, n, n, b_mine, &mut timer);
        let mut c = PetscMatrix::<f64>::empty(comm, n, n);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut costs = Vec::new();
        for _ in 0..batches {
            let batch = unit_batch(&mut draws, edges);
            let (_, cost) = measured_collective(comm, || {
                let a_star =
                    PetscMatrix::construct::<F64Plus>(comm, n, n, batch.clone(), &mut timer);
                let (delta, _) = petsc::spgemm::<F64Plus>(comm, &a_star, &b, threads, &mut timer);
                c.merge_add_local::<F64Plus>(&delta);
            });
            costs.push(cost);
        }
        median_cost(&costs)
    })
    .results
    .remove(0)
}

fn spgemm_table(
    title: String,
    rows: Vec<(usize, BatchCost, BatchCost, BatchCost, BatchCost)>,
) -> Table {
    let mut t = Table::new(
        title,
        &[
            "batch/rank",
            "ours local",
            "ours vol",
            "CB local",
            "CB vol",
            "ours model",
            "CB model",
            "CTF model",
            "PETSc model",
            "vs CB",
            "vs CTF",
            "vs PETSc",
        ],
    );
    for (bs, o, cb, ct, pe) in rows {
        let om = o.modeled();
        let cbm = cb.modeled();
        let ctm = ct.modeled();
        let pem = pe.modeled();
        t.push_row(vec![
            bs.to_string(),
            ms(o.wall),
            format_bytes(o.crit_bytes),
            ms(cb.wall),
            format_bytes(cb.crit_bytes),
            ms(om),
            ms(cbm),
            ms(ctm),
            ms(pem),
            ratio(cbm.as_secs_f64() / om.as_secs_f64()),
            ratio(ctm.as_secs_f64() / om.as_secs_f64()),
            ratio(pem.as_secs_f64() / om.as_secs_f64()),
        ]);
    }
    t.note("vol = critical-path bytes per batch (max over ranks)");
    t.note("model = local time + vol / 12.5 GB/s + 1 us per message (paper's 100 GBit fabric)");
    t
}

/// Fig. 9: dynamic SpGEMM, algebraic case, `(+,·)`.
pub fn fig9(cfg: &Config) -> Table {
    let instances = prepare_instances(cfg);
    let mut rows = Vec::new();
    for &bs in &SPGEMM_BATCHES {
        let mut o_all = Vec::new();
        let mut cb_all = Vec::new();
        let mut ct_all = Vec::new();
        let mut pe_all = Vec::new();
        for inst in &instances {
            o_all.push(ours_algebraic(cfg, inst, bs, cfg.p).0);
            cb_all.push(combblas_algebraic(cfg, inst, bs));
            ct_all.push(ctf_algebraic(cfg, inst, bs));
            pe_all.push(petsc_algebraic(cfg, inst, bs));
        }
        rows.push((
            bs,
            median_cost(&o_all),
            median_cost(&cb_all),
            median_cost(&ct_all),
            median_cost(&pe_all),
        ));
    }
    let mut t = spgemm_table(
        format!("Figure 9: dynamic SpGEMM (algebraic, (+,*)), p={}", cfg.p),
        rows,
    );
    t.note("paper: 3.41x-6.18x vs CombBLAS, >=11.73x vs CTF, >=5.2x vs PETSc; speedup shrinks with batch size");
    t
}

/// Median per-batch cost of our general dynamic SpGEMM under `(min,+)`
/// (Fig. 10 protocol: value writes drawn from the adjacency, replacement
/// semantics → general updates).
pub fn ours_general(cfg: &Config, inst: &Prepared, batch_size: usize, p: usize) -> BatchCost {
    let n = inst.n;
    let (threads, batches, seed) = (cfg.threads, cfg.batches, cfg.seed);
    let edges = &inst.edges;
    dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let b_mine = edges_to_weighted(&rank_slice(edges, comm.rank(), p));
        let mut b = DistMat::from_global_triples(&grid, n, n, b_mine, threads, &mut timer);
        let mut a: DistMat<f64> = DistMat::empty(&grid, n, n);
        let (mut c, mut f, _) = summa_bloom::<MinPlus>(&grid, &a, &b, threads, &mut timer);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut costs = Vec::new();
        for round in 0..batches as u64 {
            let mut upd = GeneralUpdates::new();
            upd.sets = weighted_batch(&mut draws, edges, round);
            let (_, cost) = measured_collective(comm, || {
                apply_general_updates::<MinPlus>(
                    &grid,
                    &mut a,
                    &mut b,
                    &mut c,
                    &mut f,
                    upd.clone(),
                    GeneralUpdates::new(),
                    threads,
                    &mut timer,
                )
            });
            costs.push(cost);
        }
        median_cost(&costs)
    })
    .results
    .remove(0)
}

fn static_recompute_general(
    cfg: &Config,
    inst: &Prepared,
    batch_size: usize,
    which: &str,
) -> BatchCost {
    let n = inst.n;
    let (p, threads, batches, seed) = (cfg.p, cfg.threads, cfg.batches, cfg.seed);
    let edges = &inst.edges;
    let which = which.to_string();
    dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let b_mine = edges_to_weighted(&rank_slice(edges, comm.rank(), p));
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut costs = Vec::new();
        match which.as_str() {
            "combblas" => {
                let b = CombBlasMatrix::construct::<MinPlus>(&grid, n, n, b_mine, &mut timer);
                let mut a = CombBlasMatrix::<f64>::empty(&grid, n, n);
                for round in 0..batches as u64 {
                    let batch = weighted_batch(&mut draws, edges, round);
                    let (_, cost) = measured_collective(comm, || {
                        a.update_batch::<MinPlus>(&grid, batch.clone(), &mut timer);
                        // General case: recompute A'·B from scratch.
                        let _ = combblas::spgemm::<MinPlus>(&grid, &a, &b, threads, &mut timer);
                    });
                    costs.push(cost);
                }
            }
            "ctf" => {
                let b = CtfMatrix::construct::<MinPlus>(&grid, n, n, b_mine, &mut timer);
                let mut a = CtfMatrix::construct::<MinPlus>(&grid, n, n, vec![], &mut timer);
                for round in 0..batches as u64 {
                    let batch = weighted_batch(&mut draws, edges, round);
                    let (_, cost) = measured_collective(comm, || {
                        a.write::<MinPlus>(&grid, batch.clone(), &mut timer);
                        let _ = ctf::spgemm::<MinPlus>(&grid, &a, &b, threads, &mut timer);
                    });
                    costs.push(cost);
                }
            }
            _ => {
                // PETSc keeps (+,·) — it has no general semirings (paper).
                let b = PetscMatrix::construct::<F64Plus>(comm, n, n, b_mine, &mut timer);
                let mut a = PetscMatrix::<f64>::empty(comm, n, n);
                for round in 0..batches as u64 {
                    let batch = weighted_batch(&mut draws, edges, round);
                    let (_, cost) = measured_collective(comm, || {
                        a.set_values_insert(comm, batch.clone(), &mut timer);
                        let _ = petsc::spgemm::<F64Plus>(comm, &a, &b, threads, &mut timer);
                    });
                    costs.push(cost);
                }
            }
        }
        median_cost(&costs)
    })
    .results
    .remove(0)
}

/// Fig. 10: dynamic SpGEMM, general case, `(min,+)`.
pub fn fig10(cfg: &Config) -> Table {
    let instances = prepare_instances(cfg);
    let mut rows = Vec::new();
    for &bs in &SPGEMM_BATCHES {
        let mut o_all = Vec::new();
        let mut cb_all = Vec::new();
        let mut ct_all = Vec::new();
        let mut pe_all = Vec::new();
        for inst in &instances {
            o_all.push(ours_general(cfg, inst, bs, cfg.p));
            cb_all.push(static_recompute_general(cfg, inst, bs, "combblas"));
            ct_all.push(static_recompute_general(cfg, inst, bs, "ctf"));
            pe_all.push(static_recompute_general(cfg, inst, bs, "petsc"));
        }
        rows.push((
            bs,
            median_cost(&o_all),
            median_cost(&cb_all),
            median_cost(&ct_all),
            median_cost(&pe_all),
        ));
    }
    let mut t = spgemm_table(
        format!("Figure 10: dynamic SpGEMM (general, (min,+)), p={}", cfg.p),
        rows,
    );
    t.note(
        "paper: 2.39x-4.57x vs CombBLAS, >=14.58x vs CTF, >=6.9x vs PETSc (PETSc stays on (+,*))",
    );
    t
}

/// Fig. 11: weak scalability of dynamic SpGEMM (algebraic), modeled time per
/// inserted non-zero for p ∈ {1, 4, 16}.
pub fn fig11(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Figure 11: weak scalability of dynamic SpGEMM (algebraic)",
        &["p", "us/nnz (model)", "batch local (ms)", "batch vol"],
    );
    // The paper excludes the largest instances at small node counts; use the
    // smaller half of the catalog.
    let mut cfg2 = cfg.clone();
    cfg2.instances = cfg.instances.min(3);
    let instances = prepare_instances(&cfg2);
    let bs = *SPGEMM_BATCHES.last().unwrap();
    for p in [1usize, 4, 16] {
        let mut costs = Vec::new();
        for inst in &instances {
            costs.push(ours_algebraic(cfg, inst, bs, p).0);
        }
        let m = median_cost(&costs);
        let per_nnz = m.modeled().as_nanos() as f64 / 1e3 / (bs * p) as f64;
        t.push_row(vec![
            p.to_string(),
            format!("{per_nnz:.2}"),
            ms(m.wall),
            format_bytes(m.crit_bytes),
        ]);
    }
    t.note("time per non-zero should fall with p (paper Fig. 11); on a 2-core host the local component saturates — see EXPERIMENTS.md");
    t
}

/// Fig. 12: breakdown of dynamic SpGEMM (algebraic) by phase.
pub fn fig12(cfg: &Config) -> Table {
    use dspgemm_core::phase;
    let phases = [
        phase::SEND_RECV,
        phase::BCAST,
        phase::LOCAL_MULT,
        phase::SCATTER,
        phase::REDUCE_SCATTER,
        phase::LOCAL_UPDATE,
    ];
    let mut t = Table::new(
        "Figure 12: dynamic SpGEMM time breakdown (critical path, ms over all batches)",
        &["phase", "p=1", "p=4", "p=16"],
    );
    let mut cfg2 = cfg.clone();
    cfg2.instances = cfg.instances.min(3);
    let instances = prepare_instances(&cfg2);
    let bs = *SPGEMM_BATCHES.last().unwrap();
    let mut per_p: Vec<PhaseTimer> = Vec::new();
    for p in [1usize, 4, 16] {
        let mut acc = PhaseTimer::new();
        for inst in &instances {
            let (_, pt) = ours_algebraic(cfg, inst, bs, p);
            acc.merge(&pt);
        }
        per_p.push(acc);
    }
    for ph in phases {
        // Communication phases report their full cost (exposed + the part
        // the pipelined schedule hid under compute); the overlap ratio makes
        // the split explicit. Compute phases have no overlapped component.
        let cell = |pt: &PhaseTimer| {
            let total = pt.comm_total(ph);
            let ratio = pt.overlap_ratio(ph);
            if ratio > 0.0 {
                format!("{} ({:.0}% hidden)", ms(total), ratio * 100.0)
            } else {
                ms(total)
            }
        };
        t.push_row(vec![
            ph.to_string(),
            cell(&per_p[0]),
            cell(&per_p[1]),
            cell(&per_p[2]),
        ]);
    }
    // Thread-level load balance of the local kernels, alongside the comm
    // columns: max/mean over the per-thread flop counters.
    t.push_row(vec![
        "flop imbalance (max/mean)".to_string(),
        format!("{:.2}", per_p[0].flop_imbalance()),
        format!("{:.2}", per_p[1].flop_imbalance()),
        format!("{:.2}", per_p[2].flop_imbalance()),
    ]);
    t.note("bcast grows with p; local mult / reduce-scatter scale down (paper Fig. 12)");
    t.note("comm phases show comm_total = exposed + overlapped; '% hidden' = overlap ratio");
    t.note("flop imbalance = max/mean over per-thread kernel flop counters (1.00 = even split)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn algebraic_smoke() {
        let cfg = Config::smoke();
        let inst = &prepare_instances(&cfg)[0];
        let (cost, phases) = ours_algebraic(&cfg, inst, 16, cfg.p);
        assert!(cost.wall > Duration::ZERO);
        assert!(cost.modeled() >= cost.wall);
        assert!(!phases.entries().is_empty());
        let cb = combblas_algebraic(&cfg, inst, 16);
        assert!(cb.wall > Duration::ZERO);
        // The headline claim holds in volume even at smoke scale: CombBLAS
        // broadcasts the full B, we broadcast the hypersparse updates.
        assert!(
            cost.crit_bytes < cb.crit_bytes,
            "ours {} vs CombBLAS {}",
            cost.crit_bytes,
            cb.crit_bytes
        );
    }

    #[test]
    fn general_smoke() {
        let cfg = Config::smoke();
        let inst = &prepare_instances(&cfg)[0];
        let o = ours_general(&cfg, inst, 8, cfg.p);
        let cb = static_recompute_general(&cfg, inst, 8, "combblas");
        assert!(o.wall > Duration::ZERO);
        assert!(cb.wall > Duration::ZERO);
        assert!(o.crit_bytes > 0 && o.msgs > 0);
        // The volume advantage of the general algorithm needs realistic
        // proxy sizes (at smoke scale the C*/A^R/filter fixed costs rival a
        // tiny B); the full-scale claim is exercised by `repro fig10` and
        // the comm_volume integration tests.
    }
}
