//! Overlap ablation: pipelined (nonblocking, double-buffered) schedules vs.
//! the blocking round schedules.
//!
//! The pipelined scheduler changes *when* communication happens, never what
//! is communicated: wire volume must stay byte-identical and the result
//! bit-identical, while the *exposed* communication time (ranks blocked
//! waiting) drops because round `k + 1`'s panels are in flight under round
//! `k`'s multiply. This experiment measures exactly that split using the
//! meter's exposed/overlapped counters ([`dspgemm_mpi::CommStats`]) and
//! asserts the invariants; the numbers land in `BENCH_pr3.json`.

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::measure::{median, timed_collective};
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_core::summa::{summa, summa_blocking};
use dspgemm_core::{DistMat, DynSpGemm, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::Triple;
use dspgemm_util::stats::PhaseTimer;
use std::time::Duration;

/// Outcome of one schedule arm.
#[derive(Debug, Clone)]
pub struct OverlapArm {
    /// Median wall time of the measured collective.
    pub wall: Duration,
    /// Total metered wire bytes of the measured region (must be invariant
    /// across schedules).
    pub bytes: u64,
    /// Total messages of the measured region.
    pub msgs: u64,
    /// Total ns all ranks spent blocked waiting for communication.
    pub exposed_ns: u64,
    /// Total ns of request lifetime hidden under compute.
    pub overlapped_ns: u64,
    /// Root gather of the result (identity check across arms).
    pub result: Vec<Triple<f64>>,
}

impl OverlapArm {
    /// `overlapped / (exposed + overlapped)` of the measured region.
    pub fn overlap_ratio(&self) -> f64 {
        let total = (self.exposed_ns + self.overlapped_ns) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.overlapped_ns as f64 / total
        }
    }
}

/// One SUMMA arm at `p` ranks: full-adjacency `A·A` on the given schedule,
/// `reps` repetitions (median wall; stats of the *first* rep region so the
/// byte-parity assertion is exact).
pub fn summa_arm(cfg: &Config, inst: &Prepared, p: usize, pipelined: bool) -> OverlapArm {
    let n = inst.n;
    let threads = cfg.threads;
    let edges = &inst.edges;
    let reps = 3usize;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let a = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        let mut walls = Vec::new();
        let mut region = None;
        let mut c_gathered = None;
        for rep in 0..reps {
            comm.barrier();
            let before = comm.comm_stats();
            let (c, d) = timed_collective(comm, || {
                if pipelined {
                    summa::<F64Plus>(&grid, &a, &a, threads, &mut timer).0
                } else {
                    summa_blocking::<F64Plus>(&grid, &a, &a, threads, &mut timer).0
                }
            });
            walls.push(d);
            if rep == 0 {
                region = Some(comm.comm_stats().delta_since(&before));
                // Fence before gathering: a fast rank's gather sends must
                // not leak into a slow rank's region snapshot.
                comm.barrier();
                c_gathered = c.gather_to_root(comm);
            }
        }
        (median(&walls), region.expect("one rep ran"), c_gathered)
    });
    let (wall, region, c) = &out.results[0];
    OverlapArm {
        wall: *wall,
        bytes: region.total_bytes(),
        // Zero-byte barrier control messages are excluded: dissemination
        // rounds of the fencing barriers straddle the snapshots
        // nondeterministically (cf. `measure::measured_collective`).
        msgs: region
            .total_msgs()
            .saturating_sub(region.msgs_in(dspgemm_mpi::CommCategory::Barrier)),
        // Exposed/overlapped are summed across ranks from the region delta
        // of rank 0's snapshot (the snapshot covers the whole network).
        exposed_ns: region.total_exposed_ns(),
        overlapped_ns: region.total_overlapped_ns(),
        result: c.clone().unwrap_or_default(),
    }
}

/// The dynamic-update arm (pipelined engine only — the dynamic paths have
/// no blocking twin; reported for its achieved overlap ratio). Runs
/// through the [`DynSpGemm`] session and snapshots after every batch, so
/// a traced run carries the full batch lifecycle: redistribute and
/// apply-batch spans plus one `epoch_publish` instant per batch.
pub fn dynamic_arm(cfg: &Config, inst: &Prepared, p: usize) -> OverlapArm {
    let n = inst.n;
    let (threads, batches, seed) = (cfg.threads, cfg.batches.max(1), cfg.seed);
    let batch_size = cfg.batch_size;
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let a = DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        let mut eng = DynSpGemm::<F64Plus>::new(&grid, a, b, threads, false);
        let mut a_draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut b_draws = ReplacementDraws::new(batch_size, seed ^ 0x9e37, comm.rank());
        comm.barrier();
        let before = comm.comm_stats();
        let mut times = Vec::new();
        for _ in 0..batches {
            let a_batch: Vec<Triple<f64>> = a_draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            let b_batch: Vec<Triple<f64>> = b_draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            let (_, d) = timed_collective(comm, || {
                eng.apply_algebraic(&grid, a_batch, b_batch);
                // Commit the batch as the next epoch (local-only) — the
                // serving pattern, and the source of `epoch_publish`
                // events in a traced run.
                eng.snapshot();
            });
            times.push(d);
        }
        let region = comm.comm_stats().delta_since(&before);
        (median(&times), region)
    });
    let (wall, region) = &out.results[0];
    OverlapArm {
        wall: *wall,
        bytes: region.total_bytes(),
        msgs: region.total_msgs(),
        exposed_ns: region.total_exposed_ns(),
        overlapped_ns: region.total_overlapped_ns(),
        result: Vec::new(),
    }
}

fn ns_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// The `repro overlap` table.
pub fn run(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation: communication/compute overlap (pipelined vs. blocking schedules), p={}",
            cfg.p
        ),
        &[
            "benchmark",
            "wall",
            "wire bytes",
            "exposed comm (ms)",
            "overlapped comm (ms)",
            "overlap ratio",
        ],
    );
    let inst = &prepare_instances(cfg)[0];

    let blocking = summa_arm(cfg, inst, cfg.p, false);
    let pipelined = summa_arm(cfg, inst, cfg.p, true);
    // The hard invariants of the refactor: same bytes, same C.
    assert_eq!(
        blocking.bytes, pipelined.bytes,
        "pipelining must leave wire volume byte-identical"
    );
    assert_eq!(
        blocking.msgs, pipelined.msgs,
        "pipelining must leave message count identical"
    );
    assert_eq!(
        blocking.result, pipelined.result,
        "pipelined SUMMA must be bit-identical to blocking SUMMA"
    );
    t.push_row(vec![
        "static SUMMA, blocking schedule (before)".to_string(),
        ms(blocking.wall),
        dspgemm_util::stats::format_bytes(blocking.bytes),
        ns_ms(blocking.exposed_ns),
        ns_ms(blocking.overlapped_ns),
        ratio(blocking.overlap_ratio()),
    ]);
    let exposed_reduction = if pipelined.exposed_ns > 0 {
        blocking.exposed_ns as f64 / pipelined.exposed_ns as f64
    } else {
        f64::INFINITY
    };
    t.push_row(vec![
        format!(
            "static SUMMA, pipelined schedule (after, {} less exposed)",
            ratio(exposed_reduction)
        ),
        ms(pipelined.wall),
        dspgemm_util::stats::format_bytes(pipelined.bytes),
        ns_ms(pipelined.exposed_ns),
        ns_ms(pipelined.overlapped_ns),
        ratio(pipelined.overlap_ratio()),
    ]);

    let dynamic = dynamic_arm(cfg, inst, cfg.p);
    t.push_row(vec![
        format!("dynamic updates, pipelined ({} / rank)", cfg.batch_size),
        ms(dynamic.wall),
        dspgemm_util::stats::format_bytes(dynamic.bytes),
        ns_ms(dynamic.exposed_ns),
        ns_ms(dynamic.overlapped_ns),
        ratio(dynamic.overlap_ratio()),
    ]);

    // Observability ablation: rerun the pipelined arm with the tracer
    // forced off and forced on. Tracing must be purely observational —
    // bit-identical C and byte-identical wire volume across the pair.
    let was = dspgemm_obs::enabled();
    dspgemm_obs::set_enabled(false);
    let untraced = summa_arm(cfg, inst, cfg.p, true);
    dspgemm_obs::set_enabled(true);
    let traced = summa_arm(cfg, inst, cfg.p, true);
    dspgemm_obs::set_enabled(was);
    if !was {
        // Nothing will export this run's events; drop them.
        let _ = dspgemm_obs::drain();
    }
    assert_eq!(
        untraced.bytes, traced.bytes,
        "tracing must leave wire volume byte-identical"
    );
    assert_eq!(
        untraced.msgs, traced.msgs,
        "tracing must leave message count identical"
    );
    assert_eq!(
        untraced.result, traced.result,
        "traced SUMMA must be bit-identical to the untraced run"
    );
    t.push_row(vec![
        "static SUMMA, pipelined + tracer on (parity-checked vs. tracer off)".to_string(),
        ms(traced.wall),
        dspgemm_util::stats::format_bytes(traced.bytes),
        ns_ms(traced.exposed_ns),
        ns_ms(traced.overlapped_ns),
        ratio(traced.overlap_ratio()),
    ]);

    t.note("wire bytes and result C are asserted identical across schedules (bytes move, never values)");
    t.note(
        "exposed = ranks blocked waiting; overlapped = issue-to-availability window covered by \
         compute",
    );
    t.note(
        "tracer ablation: the tracer-on rerun is asserted bit-identical (result) and \
         byte-identical (wire volume, message count) to a tracer-off run of the same arm",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_smoke() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 1;
        // The run itself asserts byte-parity and bit-identical C, plus
        // the tracer-on/off parity pair.
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn pipelined_summa_timing_is_consistent_at_p9() {
        // Whether a given run records *nonzero* overlap depends on OS
        // scheduling (the availability-based metric only credits panels
        // that arrived while a rank computed), so asserting overlap > 0
        // here would flake on a loaded CI runner — the deterministic
        // overlap property lives in tests/overlap.rs. This test pins the
        // deterministic facts of the p=9 pipelined arm: traffic was
        // measured and the timing split is well-formed.
        let mut cfg = Config::smoke();
        cfg.p = 9;
        cfg.instances = 1;
        let inst = &prepare_instances(&cfg)[0];
        let pipelined = summa_arm(&cfg, inst, 9, true);
        assert!(pipelined.bytes > 0 && pipelined.msgs > 0);
        let ratio = pipelined.overlap_ratio();
        assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} out of range");
    }
}
