//! Metrics-driven dynamic inter-rank rebalancing: adaptive 2D block cuts
//! with stripe migration, against the static uniform layout.
//!
//! Two arms run the identical workload through [`DynSpGemm`]: a roughly
//! uniform initial matrix (the permuted catalog proxy), then a *clustered,
//! non-permuted* update stream whose endpoints all land in a hot vertex
//! window `[0, n/8)`. Under the static uniform cuts that skew piles onto
//! the top-left corner of the grid; the adaptive arm reads the per-rank
//! nnz gauges after each epoch publish ([`DynSpGemm::maybe_rebalance`])
//! and migrates boundary stripes when max/mean imbalance crosses
//! `--rebalance-threshold`.
//!
//! The hard invariants are asserted here, per batch:
//!
//! * **bit-identical `C`** — the root-gathered product after every batch
//!   matches the static rerun exactly (all values are small integers in
//!   `f64`, so accumulation order — which a migration *does* change —
//!   cannot perturb bits);
//! * **pinned snapshots stay bit-stable** — an epoch pinned before the
//!   first migration gathers to the same triples after the run;
//! * **the skew actually moves** — the adaptive arm migrates at least
//!   once, its migration wire bytes are metered and non-zero, and both
//!   its final nnz imbalance and its whole-run max/mean per-rank *flop*
//!   imbalance land below the static arm's.
//!
//! Wall time and the imbalance trajectory are reported (never asserted)
//! and land in `BENCH_pr8.json`.

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::measure::timed_collective;
use crate::report::{ms, Table};
use crate::Config;
use dspgemm_core::rebalance::{imbalance, read_rank_load_gauges};
use dspgemm_core::{DistMat, DynSpGemm, Grid, RebalanceConfig};
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::Triple;
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::stats::PhaseTimer;
use std::time::Duration;

/// One batch of the clustered stream: the `A` and `B` update triples.
type Batch = (Vec<Triple<f64>>, Vec<Triple<f64>>);

/// Outcome of one layout arm (one full batch loop).
#[derive(Debug, Clone)]
pub struct RebalanceArm {
    /// Summed wall time of the measured batch steps (apply + policy).
    pub wall: Duration,
    /// Migrations the adaptive policy committed (0 for the static arm).
    pub migrations: u64,
    /// Network-wide wire bytes of those migrations.
    pub migrated_bytes: u64,
    /// Max/mean per-rank nnz imbalance after each batch (post-policy).
    pub trajectory: Vec<f64>,
    /// Max/mean per-rank SpGEMM flops over the whole measured region.
    pub flop_imbalance: f64,
    /// Root gather of `C` after every batch (identity check across arms).
    pub per_batch_c: Vec<Vec<Triple<f64>>>,
    /// Whether the epoch pinned before any update gathered to the same
    /// triples after the full run (root verdict).
    pub pinned_stable: bool,
}

/// Runs one arm: the clustered update-batch loop through a [`DynSpGemm`]
/// session, with (`adaptive`) or without the rebalancing policy enabled.
/// Streams are drawn identically in both arms.
pub fn rebalance_arm(cfg: &Config, inst: &Prepared, p: usize, adaptive: bool) -> RebalanceArm {
    let n = inst.n;
    let (threads, batches, seed) = (cfg.threads, cfg.batches.max(1), cfg.seed);
    let batch_size = cfg.batch_size;
    let (threshold, cooldown) = (cfg.rebalance_threshold, cfg.rebalance_cooldown);
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let a = DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        let mut eng = DynSpGemm::<F64Plus>::new(&grid, a, b, threads, false);
        if adaptive {
            eng.enable_rebalancing(RebalanceConfig {
                threshold,
                cooldown,
            });
        }
        // The clustered, non-permuted stream: every endpoint in the hot
        // window. Unit values keep C integer-valued, so the cross-layout
        // bit-identity assert is exact despite reordered accumulation.
        let hot = (n / 8).max(1);
        let mut rng = SplitMix64::new(seed ^ 0x5EBA ^ comm.rank() as u64);
        let mut draw = |size: usize| -> Vec<Triple<f64>> {
            (0..size)
                .map(|_| {
                    Triple::new(
                        rng.gen_range(hot as u64) as u32,
                        rng.gen_range(hot as u64) as u32,
                        1.0,
                    )
                })
                .collect()
        };
        let stream: Vec<Batch> = (0..batches)
            .map(|_| (draw(batch_size), draw(batch_size)))
            .collect();
        // Pin the bootstrap epoch before any update: it must stay readable
        // and bit-stable across every later migration.
        let pinned = eng.snapshot();
        let pinned_c0 = pinned.c().gather_to_root(comm);
        let flops0 = eng.flops;
        let mut wall = Duration::ZERO;
        let mut trajectory = Vec::with_capacity(batches);
        let mut per_batch_c = Vec::with_capacity(batches);
        for (a_batch, b_batch) in stream {
            let (_, d) = timed_collective(comm, || {
                eng.apply_algebraic(&grid, a_batch, b_batch);
                if adaptive {
                    eng.maybe_rebalance(&grid);
                } else {
                    // Publish on the same cadence as the adaptive arm so
                    // the gauges (and snapshot epochs) stay comparable.
                    eng.snapshot();
                }
            });
            wall += d;
            // The closing barrier of `timed_collective` ordered every
            // rank's publish before this read of the global registry.
            trajectory.push(imbalance(&read_rank_load_gauges(p)));
            per_batch_c.push(eng.c.gather_to_root(comm));
        }
        let flops_mine = eng.flops - flops0;
        let flops_all = comm.gather(0, flops_mine);
        // Re-gather the pinned epoch: bit-stability across migrations.
        let pinned_c1 = pinned.c().gather_to_root(comm);
        let pinned_stable = pinned_c0 == pinned_c1;
        let (migrations, migrated_bytes) = eng
            .rebalancer()
            .map(|r| (r.migrations(), r.migrated_bytes()))
            .unwrap_or((0, 0));
        (
            wall,
            trajectory,
            per_batch_c,
            flops_all,
            pinned_stable,
            migrations,
            migrated_bytes,
        )
    });
    let (wall, trajectory, per_batch_c, flops_all, pinned_stable, migrations, migrated_bytes) =
        &out.results[0];
    let loads: Vec<u64> = flops_all.clone().expect("rank 0 gathers");
    RebalanceArm {
        wall: *wall,
        migrations: *migrations,
        migrated_bytes: *migrated_bytes,
        trajectory: trajectory.clone(),
        flop_imbalance: imbalance(&loads),
        per_batch_c: per_batch_c
            .iter()
            .map(|c| c.clone().unwrap_or_default())
            .collect(),
        pinned_stable: *pinned_stable,
    }
}

fn imb(x: f64) -> String {
    format!("{x:.3}")
}

/// The `repro rebalance` table.
pub fn run(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Dynamic inter-rank rebalancing: adaptive 2D cuts vs. static uniform layout, p={}, \
             batch={}, threshold={}, cooldown={}",
            cfg.p, cfg.batch_size, cfg.rebalance_threshold, cfg.rebalance_cooldown
        ),
        &[
            "benchmark",
            "wall",
            "migrations",
            "migration bytes",
            "nnz imbalance (start -> end)",
            "flop imbalance",
        ],
    );
    let inst = &prepare_instances(cfg)[0];

    // The static baseline runs with the tracer suppressed: an exported
    // trace of this experiment documents the adaptive schedule, where
    // `engine/migrate` spans must appear — the CI trace check asserts
    // exactly that (and their absence when the threshold is unreachable).
    let was = dspgemm_obs::enabled();
    dspgemm_obs::set_enabled(false);
    let static_ = rebalance_arm(cfg, inst, cfg.p, false);
    dspgemm_obs::set_enabled(was);
    let adaptive = rebalance_arm(cfg, inst, cfg.p, true);

    // Hard invariant: migration never changes the maintained product.
    assert_eq!(static_.per_batch_c.len(), adaptive.per_batch_c.len());
    for (i, (s, a)) in static_
        .per_batch_c
        .iter()
        .zip(&adaptive.per_batch_c)
        .enumerate()
    {
        assert_eq!(
            s, a,
            "C after batch {i} must be bit-identical across static and adaptive arms"
        );
    }
    // Hard invariant: pinned pre-migration epochs stay bit-stable.
    assert!(
        adaptive.pinned_stable && static_.pinned_stable,
        "epochs pinned before a migration must gather bit-identically after it"
    );
    // Hard invariants of the policy itself, when the threshold is
    // reachable (the CI absence check runs with threshold 1e9).
    let reachable =
        cfg.rebalance_threshold <= static_.trajectory.iter().copied().fold(0.0f64, f64::max);
    if reachable {
        assert!(
            adaptive.migrations >= 1,
            "clustered skew above threshold must trigger a migration"
        );
        assert!(
            adaptive.migrated_bytes > 0,
            "stripe migration must move bytes over the wire"
        );
        assert!(
            adaptive.trajectory.last() < static_.trajectory.last(),
            "adaptive arm must end below the static arm's nnz imbalance \
             (adaptive {:?} vs static {:?})",
            adaptive.trajectory,
            static_.trajectory
        );
        assert!(
            adaptive.flop_imbalance < static_.flop_imbalance,
            "adaptive arm must beat the static arm's flop imbalance \
             (adaptive {} vs static {})",
            adaptive.flop_imbalance,
            static_.flop_imbalance
        );
    }

    for (name, arm) in [
        ("static uniform cuts (before)", &static_),
        ("adaptive cuts + stripe migration (after)", &adaptive),
    ] {
        t.push_row(vec![
            name.to_string(),
            ms(arm.wall),
            arm.migrations.to_string(),
            dspgemm_util::stats::format_bytes(arm.migrated_bytes),
            format!(
                "{} -> {}",
                imb(arm.trajectory.first().copied().unwrap_or(f64::NAN)),
                imb(arm.trajectory.last().copied().unwrap_or(f64::NAN))
            ),
            imb(arm.flop_imbalance),
        ]);
    }

    t.note(
        "C is asserted bit-identical across both arms after every batch, and the epoch pinned \
         before the first migration is asserted bit-stable after the run",
    );
    t.note(
        "when the clustered stream pushes the static arm over the threshold, the adaptive arm is \
         asserted to migrate (bytes > 0) and to finish below the static arm's nnz and flop \
         imbalance",
    );
    t.note(
        "nnz imbalance = max/mean of the per-rank `engine.block_nnz.{a,c}` gauges after each \
         epoch publish; flop imbalance = max/mean of per-rank SpGEMM flops over the whole run",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalance_smoke() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 3;
        // The run itself asserts bit-identical C, pinned-snapshot
        // stability, and (skew permitting) migration + imbalance wins.
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn rebalance_at_p9() {
        let mut cfg = Config::smoke();
        cfg.p = 9;
        cfg.instances = 1;
        cfg.batches = 3;
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn rebalance_unreachable_threshold_never_migrates() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 2;
        cfg.rebalance_threshold = 1e9;
        let inst = &prepare_instances(&cfg)[0];
        let arm = rebalance_arm(&cfg, inst, cfg.p, true);
        assert_eq!(arm.migrations, 0);
        assert_eq!(arm.migrated_bytes, 0);
    }
}
