//! Fig. 4–8: dynamic-update performance of the distributed data structure.

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::measure::{mean, median, timed_collective};
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_baselines::{combblas::CombBlasMatrix, ctf::CtfMatrix, petsc::PetscMatrix};
use dspgemm_core::redistribute::phase as rphase;
use dspgemm_core::update::{apply_mask, apply_merge, build_update_matrix, Dedup};
use dspgemm_core::{DistMat, Grid};
use dspgemm_graph::rmat::{generate_local, RmatParams};
use dspgemm_graph::stream::{split_for_insertion, BatchedPool, ReplacementDraws};
use dspgemm_graph::Edge;
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::Triple;
use dspgemm_util::hash::mix_pair;
use dspgemm_util::stats::{geometric_mean, PhaseTimer};
use std::time::Duration;

/// Per-batch-size defaults (per rank), scaled down from the paper's
/// 1024…131072 to match the proxy sizes.
pub const BATCH_SIZES: [usize; 4] = [64, 256, 1024, 4096];

/// The three update kinds of Section VII-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fresh non-zeros from the withheld half (Fig. 4).
    Insert,
    /// New values for existing non-zeros (Fig. 5a).
    Update,
    /// Removal of existing non-zeros (Fig. 5b).
    Delete,
}

fn weighted(e: Edge, round: u64) -> Triple<f64> {
    Triple::new(e.0, e.1, 1.0 + (mix_pair(e.0, e.1) ^ round) as f64 % 97.0)
}

/// Draws rank-local update batches for `mode`, round by round.
fn draw_batch(
    mode: Mode,
    pool: &mut BatchedPool,
    existing: &[Edge],
    draws: &mut ReplacementDraws,
    round: u64,
) -> Vec<Triple<f64>> {
    match mode {
        Mode::Insert => pool
            .next_batch()
            .into_iter()
            .map(|e| Triple::new(e.0, e.1, 1.0))
            .collect(),
        Mode::Update => draws
            .next_batch(existing)
            .into_iter()
            .map(|e| weighted(e, round))
            .collect(),
        Mode::Delete => draws
            .next_batch(existing)
            .into_iter()
            .map(|e| Triple::new(e.0, e.1, 0.0))
            .collect(),
    }
}

/// Mean per-batch time of our dynamic structure, plus the per-rank phase
/// breakdown (for Fig. 7).
pub fn ours_mean_batch(
    cfg: &Config,
    inst: &Prepared,
    mode: Mode,
    batch_size: usize,
    p: usize,
) -> (Duration, Vec<(String, Duration)>) {
    let (initial, rest) = match mode {
        Mode::Insert => split_for_insertion(inst.edges.clone(), cfg.seed),
        _ => (inst.edges.clone(), inst.edges.clone()),
    };
    let n = inst.n;
    let threads = cfg.threads;
    let batches = cfg.batches;
    let seed = cfg.seed;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(&initial, comm.rank(), p));
        let mut mat = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        // Fresh timer: measure only the update batches.
        let mut timer = PhaseTimer::new();
        let mut pool = BatchedPool::new(&rest, comm.rank(), p, batch_size, seed);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut times = Vec::new();
        for round in 0..batches as u64 {
            let batch = draw_batch(mode, &mut pool, &rest, &mut draws, round);
            let (_, d) = timed_collective(comm, || {
                let upd = build_update_matrix::<F64Plus>(
                    &grid,
                    n,
                    n,
                    batch.clone(),
                    Dedup::LastWins,
                    &mut timer,
                );
                timer.time(rphase::LOCAL_ADDITION, || match mode {
                    Mode::Delete => apply_mask::<F64Plus>(&mut mat, &upd, threads),
                    _ => apply_merge::<F64Plus>(&mut mat, &upd, threads),
                });
            });
            times.push(d);
        }
        let phases: Vec<(String, Duration)> = timer.entries().to_vec();
        (median(&times), phases)
    });
    // Critical-path phase view: per-phase maximum across ranks.
    let mut merged = PhaseTimer::new();
    for (_, phases) in &out.results {
        let mut pt = PhaseTimer::new();
        for (name, d) in phases {
            pt.add(name, *d);
        }
        merged.merge_max(&pt);
    }
    (out.results[0].0, merged.entries().to_vec())
}

fn combblas_mean_batch(cfg: &Config, inst: &Prepared, mode: Mode, batch_size: usize) -> Duration {
    let (initial, rest) = match mode {
        Mode::Insert => split_for_insertion(inst.edges.clone(), cfg.seed),
        _ => (inst.edges.clone(), inst.edges.clone()),
    };
    let (n, p, batches, seed) = (inst.n, cfg.p, cfg.batches, cfg.seed);
    dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(&initial, comm.rank(), p));
        let mut mat = CombBlasMatrix::construct::<F64Plus>(&grid, n, n, mine, &mut timer);
        let mut pool = BatchedPool::new(&rest, comm.rank(), p, batch_size, seed);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut times = Vec::new();
        for round in 0..batches as u64 {
            let batch = draw_batch(mode, &mut pool, &rest, &mut draws, round);
            let (_, d) = timed_collective(comm, || match mode {
                Mode::Insert => mat.insert_batch::<F64Plus>(&grid, batch.clone(), &mut timer),
                Mode::Update => mat.update_batch::<F64Plus>(&grid, batch.clone(), &mut timer),
                Mode::Delete => mat.delete_batch(&grid, batch.clone(), &mut timer),
            });
            times.push(d);
        }
        median(&times)
    })
    .results[0]
}

fn ctf_mean_batch(cfg: &Config, inst: &Prepared, mode: Mode, batch_size: usize) -> Duration {
    let (initial, rest) = match mode {
        Mode::Insert => split_for_insertion(inst.edges.clone(), cfg.seed),
        _ => (inst.edges.clone(), inst.edges.clone()),
    };
    let (n, p, batches, seed) = (inst.n, cfg.p, cfg.batches, cfg.seed);
    dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(&initial, comm.rank(), p));
        let mut mat = CtfMatrix::construct::<F64Plus>(&grid, n, n, mine, &mut timer);
        let mut pool = BatchedPool::new(&rest, comm.rank(), p, batch_size, seed);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut times = Vec::new();
        for round in 0..batches as u64 {
            let batch = draw_batch(mode, &mut pool, &rest, &mut draws, round);
            let (_, d) = timed_collective(comm, || match mode {
                Mode::Delete => mat.delete::<F64Plus>(&grid, batch.clone(), &mut timer),
                _ => mat.write::<F64Plus>(&grid, batch.clone(), &mut timer),
            });
            times.push(d);
        }
        median(&times)
    })
    .results[0]
}

fn petsc_mean_batch(cfg: &Config, inst: &Prepared, mode: Mode, batch_size: usize) -> Duration {
    assert_ne!(mode, Mode::Delete, "PETSc has no deletion path");
    let (initial, rest) = match mode {
        Mode::Insert => split_for_insertion(inst.edges.clone(), cfg.seed),
        _ => (inst.edges.clone(), inst.edges.clone()),
    };
    let (n, p, batches, seed) = (inst.n, cfg.p, cfg.batches, cfg.seed);
    dspgemm_mpi::run(p, |comm| {
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(&initial, comm.rank(), p));
        let mut mat = PetscMatrix::construct::<F64Plus>(comm, n, n, mine, &mut timer);
        let mut pool = BatchedPool::new(&rest, comm.rank(), p, batch_size, seed);
        let mut draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut times = Vec::new();
        for round in 0..batches as u64 {
            let batch = draw_batch(mode, &mut pool, &rest, &mut draws, round);
            let (_, d) = timed_collective(comm, || {
                mat.set_values_insert(comm, batch.clone(), &mut timer)
            });
            times.push(d);
        }
        median(&times)
    })
    .results[0]
}

/// Figs. 4 / 5a / 5b: mean batch time vs batch size, ours vs CombBLAS, with
/// CTF/PETSc slowdown footnotes (as in the paper, which plots only the two
/// contenders and reports the others as lower bounds).
pub fn batch_size_sweep(cfg: &Config, mode: Mode) -> Table {
    let (fig, what) = match mode {
        Mode::Insert => ("Figure 4", "insertion"),
        Mode::Update => ("Figure 5a", "update"),
        Mode::Delete => ("Figure 5b", "deletion"),
    };
    let mut t = Table::new(
        format!("{fig}: mean {what} time per batch, p={}", cfg.p),
        &["batch/rank", "ours (ms)", "CombBLAS (ms)", "speedup"],
    );
    let instances = prepare_instances(cfg);
    for &bs in &BATCH_SIZES {
        let mut ours_all = Vec::new();
        let mut cb_all = Vec::new();
        for inst in &instances {
            ours_all.push(ours_mean_batch(cfg, inst, mode, bs, cfg.p).0);
            cb_all.push(combblas_mean_batch(cfg, inst, mode, bs));
        }
        let o = mean(&ours_all);
        let c = mean(&cb_all);
        t.push_row(vec![
            bs.to_string(),
            ms(o),
            ms(c),
            ratio(c.as_secs_f64() / o.as_secs_f64()),
        ]);
    }
    // CTF / PETSc lower bounds at the largest batch size, first instance.
    let bs = *BATCH_SIZES.last().unwrap();
    let inst = &instances[0];
    let ours = ours_mean_batch(cfg, inst, mode, bs, cfg.p).0;
    let ctf = ctf_mean_batch(cfg, inst, mode, bs);
    t.note(format!(
        "CTF at least {} slower than ours ({}; paper: >=55x ins / >=59.8x upd / >=101x del)",
        ratio(ctf.as_secs_f64() / ours.as_secs_f64()),
        inst.name
    ));
    if mode != Mode::Delete {
        let petsc = petsc_mean_batch(cfg, inst, mode, bs);
        t.note(format!(
            "PETSc at least {} slower than ours ({}; paper: >=460x ins / >=477x upd)",
            ratio(petsc.as_secs_f64() / ours.as_secs_f64()),
            inst.name
        ));
    } else {
        t.note("PETSc does not support efficient deletions (excluded, as in the paper)");
    }
    t
}

/// Fig. 6: weak scalability of insertions — time per inserted non-zero for
/// p ∈ {1, 4, 16} (the paper's 1×4 / 4×4 / 16×4 node configurations).
pub fn fig6(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Figure 6: weak scalability of insertions (time per non-zero)",
        &["p", "ns/nnz", "mean batch (ms)"],
    );
    let instances = prepare_instances(cfg);
    let bs = *BATCH_SIZES.last().unwrap();
    for p in [1usize, 4, 16] {
        let mut times = Vec::new();
        for inst in &instances {
            times.push(ours_mean_batch(cfg, inst, Mode::Insert, bs, p).0);
        }
        let m = mean(&times);
        let per_nnz = m.as_nanos() as f64 / (bs * p) as f64;
        t.push_row(vec![p.to_string(), format!("{per_nnz:.1}"), ms(m)]);
    }
    t.note("batch size fixed per rank; nnz/p constant = weak scaling (paper Fig. 6)");
    t
}

/// Fig. 7: breakdown of insertion time by phase, per rank count.
pub fn fig7(cfg: &Config) -> Table {
    let phases = [
        rphase::REDIST_SORT,
        rphase::REDIST_COMM,
        rphase::MEM_MANAGEMENT,
        rphase::LOCAL_CONSTRUCT,
        rphase::LOCAL_ADDITION,
    ];
    let mut t = Table::new(
        "Figure 7: insertion time breakdown (critical path, ms over all batches)",
        &["phase", "p=1", "p=4", "p=16"],
    );
    let instances = prepare_instances(cfg);
    let bs = *BATCH_SIZES.last().unwrap();
    let mut per_p: Vec<PhaseTimer> = Vec::new();
    for p in [1usize, 4, 16] {
        let mut acc = PhaseTimer::new();
        for inst in &instances {
            let (_, phases) = ours_mean_batch(cfg, inst, Mode::Insert, bs, p);
            let mut pt = PhaseTimer::new();
            for (name, d) in phases {
                pt.add(&name, d);
            }
            acc.merge(&pt);
        }
        per_p.push(acc);
    }
    for phase in phases {
        t.push_row(vec![
            phase.to_string(),
            ms(per_p[0].get(phase)),
            ms(per_p[1].get(phase)),
            ms(per_p[2].get(phase)),
        ]);
    }
    t.note("local operations dominate communication, as in the paper's Fig. 7");
    t
}

/// Fig. 8a/8b: parallel scalability of insertions on synthetic R-MAT graphs
/// (Graph500 parameters). Strong: fixed total insertions; weak: fixed
/// insertions per rank.
pub fn fig8(cfg: &Config, weak: bool) -> Table {
    // Paper: 2^30 total (strong) / 2^28 per rank (weak); scaled to this
    // machine: 2^20 total / 2^16 per rank.
    let scale = 16u32; // 65 536 vertices
    let total: usize = 1 << 20;
    let per_rank_weak: usize = 1 << 16;
    let batch = *BATCH_SIZES.last().unwrap();
    let title = if weak {
        format!("Figure 8b: weak scaling, R-MAT, {per_rank_weak} insertions/rank")
    } else {
        format!("Figure 8a: strong scaling, R-MAT, {total} insertions total")
    };
    let mut t = Table::new(title, &["p", "total (ms)", "ns/nnz", "speedup vs p=1"]);
    let threads = cfg.threads;
    let seed = cfg.seed;
    let mut t1 = None;
    for p in [1usize, 4, 16] {
        let m_local = if weak { per_rank_weak } else { total / p };
        let out = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mut mat: DistMat<f64> = DistMat::empty(&grid, 1 << scale, 1 << scale);
            let edges = generate_local(
                &RmatParams::GRAPH500,
                scale,
                m_local,
                seed,
                comm.rank() as u64,
            );
            let (_, d) = timed_collective(comm, || {
                for chunk in edges.chunks(batch) {
                    let triples: Vec<Triple<f64>> =
                        chunk.iter().map(|&(u, v)| Triple::new(u, v, 1.0)).collect();
                    let upd = build_update_matrix::<F64Plus>(
                        &grid,
                        1 << scale,
                        1 << scale,
                        triples,
                        Dedup::LastWins,
                        &mut timer,
                    );
                    apply_merge::<F64Plus>(&mut mat, &upd, threads);
                }
            });
            d
        });
        let d = out.results[0];
        let inserted = m_local * p;
        let per_nnz = d.as_nanos() as f64 / inserted as f64;
        let speedup = match t1 {
            None => {
                t1 = Some(d);
                1.0
            }
            Some(base) => {
                if weak {
                    f64::NAN
                } else {
                    base.as_secs_f64() / d.as_secs_f64()
                }
            }
        };
        let speedup_s = if speedup.is_nan() {
            "-".to_string()
        } else {
            ratio(speedup)
        };
        t.push_row(vec![
            p.to_string(),
            ms(d),
            format!("{per_nnz:.1}"),
            speedup_s,
        ]);
    }
    if weak {
        t.note("time per non-zero should stay flat or fall (paper Fig. 8b)");
    } else {
        t.note("paper reaches 10.85x on 16 nodes (Fig. 8a)");
    }
    t
}

/// Geometric-mean speedup of ours vs CombBLAS across instances at one batch
/// size (helper for EXPERIMENTS.md summaries).
pub fn speedup_summary(cfg: &Config, mode: Mode, batch_size: usize) -> f64 {
    let instances = prepare_instances(cfg);
    let rels: Vec<f64> = instances
        .iter()
        .map(|inst| {
            let o = ours_mean_batch(cfg, inst, mode, batch_size, cfg.p).0;
            let c = combblas_mean_batch(cfg, inst, mode, batch_size);
            c.as_secs_f64() / o.as_secs_f64()
        })
        .collect();
    geometric_mean(&rels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_sweep_smoke() {
        let cfg = Config::smoke();
        let inst = &prepare_instances(&cfg)[0];
        let (d, phases) = ours_mean_batch(&cfg, inst, Mode::Insert, 32, cfg.p);
        assert!(d > Duration::ZERO);
        assert!(!phases.is_empty());
        let c = combblas_mean_batch(&cfg, inst, Mode::Insert, 32);
        assert!(c > Duration::ZERO);
    }

    #[test]
    fn update_and_delete_smoke() {
        let cfg = Config::smoke();
        let inst = &prepare_instances(&cfg)[0];
        assert!(ours_mean_batch(&cfg, inst, Mode::Update, 16, cfg.p).0 > Duration::ZERO);
        assert!(ours_mean_batch(&cfg, inst, Mode::Delete, 16, cfg.p).0 > Duration::ZERO);
        assert!(ctf_mean_batch(&cfg, inst, Mode::Update, 16) > Duration::ZERO);
        assert!(petsc_mean_batch(&cfg, inst, Mode::Update, 16) > Duration::ZERO);
    }
}
