//! Transport backend parity: the dynamic-SpGEMM batch stream on the
//! in-process simulator vs. real OS processes over the TCP mesh.
//!
//! The same SPMD program — construct `A`/`B` from an instance's edge
//! stream, run the initial SUMMA multiply, then drive a deterministic
//! sequence of algebraic update batches through [`DynSpGemm`], publishing
//! each epoch — runs once per backend at p ∈ {1, 4}:
//!
//! * **sim** — ranks are threads, messages move by pointer through
//!   channels (`dspgemm_mpi::run`); wire volume is metered logically.
//! * **tcp** — ranks are child processes of this binary (re-executed with
//!   the same argv) connected by a socket mesh; every remote payload
//!   round-trips through the length-prefixed wire codec.
//!
//! Hard invariants, asserted per world size:
//!
//! * the root-gathered final `C`, every rank's flop counter and the final
//!   epoch number are **bit-identical** across backends (updates use unit
//!   values, so `C` stays integer-valued in `f64` and the comparison is
//!   exact, not approximate);
//! * the logical wire volume (bytes and message counts, per rank per
//!   category) matches exactly — the TCP backend meters the same
//!   sender-side `WireSize` accounting as the simulator, so a divergence
//!   is a transport bug, not measurement noise;
//! * at p = 1 the TCP job writes **zero** socket frames: self-sends
//!   short-circuit through the local inbox exactly like the simulator.
//!
//! Without `--features tcp-transport` only the sim arm runs and the table
//! says how to enable the comparison.

use crate::experiments::faults::batch_updates;
use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::report::{ms, Table};
use crate::Config;
use dspgemm_core::{DistMat, DynSpGemm, Grid};
use dspgemm_graph::Edge;
use dspgemm_mpi::{Comm, CommStats};
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::stats::{format_bytes, PhaseTimer};
use std::time::{Duration, Instant};

/// What one rank reports from a driven run: the root-gathered final `C`
/// (`Some` on rank 0), the local flop counter, and the final epoch. On the
/// TCP backend this tuple travels back over the control socket, so it must
/// round-trip through the wire codec — which it shares with the data mesh.
type TransportOutcome = (Option<Vec<Triple<f64>>>, u64, u64);

/// The knobs both arms must agree on, derived from `cfg` once.
fn params(cfg: &Config, inst: &Prepared) -> (Index, usize, u64, usize, u64) {
    (
        inst.n,
        cfg.threads,
        cfg.batches.max(2) as u64,
        cfg.batch_size.min(512),
        cfg.seed,
    )
}

/// The SPMD body, identical on both backends: build, multiply, stream
/// update batches, publish, gather.
fn drive(
    n: Index,
    threads: usize,
    batches: u64,
    batch_size: usize,
    seed: u64,
    edges: &[Edge],
    comm: &Comm,
) -> TransportOutcome {
    let grid = Grid::new(comm);
    let me = comm.rank();
    let p = comm.size();
    let mut timer = PhaseTimer::new();
    let mine = edges_to_triples(&rank_slice(edges, me, p));
    let a = DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut timer);
    let b = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
    let mut e = DynSpGemm::<F64Plus>::new(&grid, a, b, threads, false);
    for batch in 0..batches {
        let (a_ups, b_ups) = batch_updates(n, batch_size, seed, batch, me);
        e.apply_algebraic(&grid, a_ups, b_ups);
        e.publish();
    }
    let final_c = e.c.gather_to_root(comm);
    (
        final_c,
        e.flops,
        e.epoch().expect("published at least once"),
    )
}

/// The simulator arm.
fn sim_arm(
    cfg: &Config,
    inst: &Prepared,
    p: usize,
) -> (Vec<TransportOutcome>, CommStats, Duration) {
    let (n, threads, batches, batch_size, seed) = params(cfg, inst);
    let edges = &inst.edges;
    let started = Instant::now();
    let out = dspgemm_mpi::run(p, move |comm| {
        drive(n, threads, batches, batch_size, seed, edges, comm)
    });
    (out.results, out.stats, started.elapsed())
}

/// The TCP arm: each rank is a re-executed child of this binary. In a
/// child process `run_tcp` never returns — the rank reports its outcome
/// over the control socket and exits inside the call.
#[cfg(feature = "tcp-transport")]
fn tcp_arm(
    cfg: &Config,
    inst: &Prepared,
    p: usize,
    reexec: dspgemm_mpi::tcp::Reexec,
) -> (Vec<Option<TransportOutcome>>, CommStats, u64, Duration) {
    use dspgemm_mpi::tcp::{run_tcp, TcpConfig};
    let (n, threads, batches, batch_size, seed) = params(cfg, inst);
    let edges = inst.edges.clone();
    let started = Instant::now();
    let out = run_tcp(reexec, TcpConfig::new(p), move |comm| {
        drive(n, threads, batches, batch_size, seed, &edges, comm)
    });
    (out.results, out.stats, out.frames, started.elapsed())
}

/// Runs the TCP arm and asserts every cross-backend invariant against an
/// already-computed sim arm. Shared between [`run`] (re-entry via
/// [`Reexec::SameArgv`](dspgemm_mpi::tcp::Reexec)) and the test harness
/// (re-entry via a libtest `--exact` filter).
#[cfg(feature = "tcp-transport")]
fn tcp_parity(
    cfg: &Config,
    inst: &Prepared,
    p: usize,
    reexec: dspgemm_mpi::tcp::Reexec,
    sim_results: &[TransportOutcome],
    sim_stats: &CommStats,
) -> (CommStats, u64, Duration) {
    let (tcp_results, tcp_stats, frames, tcp_wall) = tcp_arm(cfg, inst, p, reexec);
    let tcp_results: Vec<TransportOutcome> = tcp_results
        .into_iter()
        .map(|r| r.expect("every rank reports"))
        .collect();
    assert_eq!(
        tcp_results, sim_results,
        "p={p}: final C / flops / epoch diverged across backends"
    );
    assert_eq!(
        tcp_stats.volume(),
        sim_stats.volume(),
        "p={p}: logical wire volume diverged across backends"
    );
    if p == 1 {
        assert_eq!(frames, 0, "p=1 wrote socket frames (loopback regression)");
    } else {
        assert!(frames > 0, "p={p} ran without touching a socket");
    }
    (tcp_stats, frames, tcp_wall)
}

/// The `repro transport` table.
pub fn run(cfg: &Config) -> Table {
    let inst = &prepare_instances(cfg)[0];

    // A TCP rank process (this binary re-executed with the same argv)
    // routes straight to the one job it was spawned for; `run_tcp` exits
    // the process after reporting.
    #[cfg(feature = "tcp-transport")]
    if let Some(world) = dspgemm_mpi::tcp::child_world() {
        tcp_arm(cfg, inst, world, dspgemm_mpi::tcp::Reexec::SameArgv);
        unreachable!("run_tcp never returns in a child process");
    }

    let batches = cfg.batches.max(2);
    let mut t = Table::new(
        format!(
            "Transport backend parity: {} batches of dynamic updates on '{}', \
             sim threads vs. TCP processes, p in {{1, 4}}",
            batches, inst.name
        ),
        &[
            "backend",
            "p",
            "wall",
            "bytes",
            "messages",
            "socket frames",
            "final C",
        ],
    );

    for p in [1usize, 4] {
        let (sim_results, sim_stats, sim_wall) = sim_arm(cfg, inst, p);
        assert!(
            sim_results[0].0.is_some() && sim_results.iter().skip(1).all(|r| r.0.is_none()),
            "final C must be gathered to rank 0 only"
        );
        t.push_row(vec![
            "sim (threads + channels)".into(),
            p.to_string(),
            ms(sim_wall),
            format_bytes(sim_stats.total_bytes()),
            sim_stats.total_msgs().to_string(),
            "-".into(),
            "reference".into(),
        ]);

        #[cfg(feature = "tcp-transport")]
        {
            let (tcp_stats, frames, tcp_wall) = tcp_parity(
                cfg,
                inst,
                p,
                dspgemm_mpi::tcp::Reexec::SameArgv,
                &sim_results,
                &sim_stats,
            );
            t.push_row(vec![
                "tcp (processes + sockets)".into(),
                p.to_string(),
                ms(tcp_wall),
                format_bytes(tcp_stats.total_bytes()),
                tcp_stats.total_msgs().to_string(),
                frames.to_string(),
                "bit-identical".into(),
            ]);
        }
    }

    #[cfg(feature = "tcp-transport")]
    {
        t.note(
            "per world size, the root-gathered final C, per-rank flop counters and final epoch \
             are asserted bit-identical across backends, and the logical wire volume (bytes and \
             message counts per rank per category) matches exactly — the TCP mesh meters the \
             same sender-side WireSize accounting as the simulator",
        );
        t.note(
            "p=1 is asserted to write zero socket frames: self-sends short-circuit through the \
             local inbox on both backends, without touching the wire codec",
        );
    }
    #[cfg(not(feature = "tcp-transport"))]
    t.note(
        "TCP arm skipped: rebuild with `--features tcp-transport` to run the same program on \
         real OS processes over a socket mesh and assert cross-backend parity",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> Config {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 2;
        cfg
    }

    /// The sim arms at smoke scale. Gated off under `tcp-transport`:
    /// [`run`] re-executes with the same argv, which inside a libtest
    /// binary would re-run the whole suite — the feature build covers the
    /// full table via `repro transport --smoke` instead, and the parity
    /// assertions via [`tcp_parity_at_smoke_scale`].
    #[cfg(not(feature = "tcp-transport"))]
    #[test]
    fn transport_smoke() {
        let t = run(&smoke_cfg());
        assert_eq!(t.rows.len(), 2);
    }

    /// Full cross-backend parity on the real workload, re-entering the
    /// child processes through a libtest `--exact` filter.
    #[cfg(feature = "tcp-transport")]
    #[test]
    fn tcp_parity_at_smoke_scale() {
        use dspgemm_mpi::tcp::{test_path, Reexec};
        let cfg = smoke_cfg();
        let inst = &prepare_instances(&cfg)[0];
        for p in [1usize, 4] {
            // run_tcp first: in a child process it never returns. The
            // closure is p-independent, so a child entering through the
            // p=1 call site still runs its env-assigned world correctly.
            let reexec = Reexec::Test(test_path(module_path!(), "tcp_parity_at_smoke_scale"));
            let (tcp_results, tcp_stats, frames, _) = tcp_arm(&cfg, inst, p, reexec);
            let (sim_results, sim_stats, _) = sim_arm(&cfg, inst, p);
            let tcp_results: Vec<TransportOutcome> = tcp_results
                .into_iter()
                .map(|r| r.expect("every rank reports"))
                .collect();
            assert_eq!(tcp_results, sim_results, "p={p}: results diverged");
            assert_eq!(
                tcp_stats.volume(),
                sim_stats.volume(),
                "p={p}: volume diverged"
            );
            assert_eq!(
                frames == 0,
                p == 1,
                "p={p}: unexpected socket frame count {frames}"
            );
        }
    }
}
