//! Maintained-view serving vs. static recomputation.
//!
//! The analytics subsystem's claim: once `C = A·A` is maintained
//! dynamically, a whole registry of views (triangle count, link-prediction
//! candidates, degree vector) refreshes from one shared hypersparse batch —
//! so per-batch latency tracks the *batch*, not the graph. The static
//! strategy the baselines are forced into pays a full SUMMA product per
//! batch before it can re-derive any view.
//!
//! Both sides run identical workloads: the same alternating insert/delete
//! batch sequence, the same three maintained quantities, the same query
//! surface. Reported times are modeled end-to-end batch latencies (see
//! [`crate::measure::BatchCost::modeled`]); communication volume is exact.

use crate::experiments::{prepare_instances, rank_slice, Prepared};
use crate::measure::{measured_collective, median_cost, BatchCost};
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_analytics::{AnalyticsSession, CommonNeighborsView, DegreeView, TriangleCountView};
use dspgemm_core::dyn_general::GeneralUpdates;
use dspgemm_core::spmv::{spmv, DistVec};
use dspgemm_core::summa::summa_bloom;
use dspgemm_core::update::{apply_add, build_update_matrix, Dedup};
use dspgemm_core::{DistMat, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_graph::Edge;
use dspgemm_sparse::semiring::U64Plus;
use dspgemm_sparse::{Index, RowScan, Triple};
use dspgemm_util::stats::{format_bytes, PhaseTimer};

/// Candidate pairs for the link-prediction view: a fixed slice of the
/// instance's own edge list (realistic: "will these interactions recur?").
fn instance_candidates(inst: &Prepared) -> Vec<(Index, Index)> {
    let mut cands: Vec<(Index, Index)> = inst.edges.iter().take(64).copied().collect();
    cands.sort_unstable();
    cands.dedup();
    cands
}

/// Per-round work items: `(algebraic inserts, positions to delete)`.
type Plan = Vec<(Vec<Triple<u64>>, Vec<(Index, Index)>)>;

/// The shared batch schedule: per round, either an insert batch (per-rank
/// uniform draws) or the deletion of the batch inserted two rounds earlier.
fn schedule(edges: &[Edge], rank: usize, batch_size: usize, rounds: usize, seed: u64) -> Plan {
    let mut draws = ReplacementDraws::new(batch_size, seed, rank);
    let mut inserted: Vec<Vec<Edge>> = Vec::new();
    let mut plan = Vec::new();
    for round in 0..rounds {
        if round % 2 == 0 {
            let batch = draws.next_batch(edges);
            inserted.push(batch.clone());
            plan.push((
                batch
                    .into_iter()
                    .map(|(u, v)| Triple::new(u, v, 1))
                    .collect(),
                Vec::new(),
            ));
        } else {
            // Expire the batch inserted in the previous insert round.
            let expiring = inserted[round / 2].clone();
            plan.push((Vec::new(), expiring));
        }
    }
    plan
}

/// One batch step of the *static* strategy: apply the updates to `A`, then
/// recompute the product and every view quantity from scratch.
#[allow(clippy::too_many_arguments)]
fn static_step(
    grid: &Grid,
    a: &mut DistMat<u64>,
    inserts: Vec<Triple<u64>>,
    deletes: &[(Index, Index)],
    cands: &[(Index, Index)],
    threads: usize,
    timer: &mut PhaseTimer,
) -> (u64, u64) {
    let n = a.info().nrows;
    // Apply the updates (same redistribution machinery as the dynamic side).
    let star = build_update_matrix::<U64Plus>(grid, n, n, inserts, Dedup::Add, timer);
    apply_add::<U64Plus>(a, &star, threads);
    let del_tuples: Vec<Triple<u64>> = deletes.iter().map(|&(r, c)| Triple::new(r, c, 0)).collect();
    let del = build_update_matrix::<U64Plus>(grid, n, n, del_tuples, Dedup::LastWins, timer);
    dspgemm_core::update::apply_mask::<U64Plus>(a, &del, threads);
    // Full product recomputation — the cost the dynamic engine avoids.
    let (c, _f, _) = summa_bloom::<U64Plus>(grid, a, a, threads, timer);
    // Re-derive the three view quantities.
    let mut masked = 0u64;
    a.block().scan_rows(|r, cols, _| {
        for &cc in cols {
            masked = masked.wrapping_add(c.block().get(r, cc).unwrap_or(0));
        }
    });
    let triangles = grid.world().allreduce(masked, u64::wrapping_add) / 6;
    let info = c.info();
    let mut cand_sum = 0u64;
    for &(u, v) in cands {
        if info.row_range.contains(&u) && info.col_range.contains(&v) {
            let (lr, lc) = info.to_local(u, v);
            cand_sum = cand_sum.wrapping_add(c.block().get(lr, lc).unwrap_or(0));
        }
    }
    let cand_sum = grid.world().allreduce(cand_sum, u64::wrapping_add);
    let x = DistVec::constant(grid, n, 1u64);
    let (_degrees, _) = spmv::<U64Plus>(grid, a, &x, threads);
    (triangles, cand_sum)
}

/// Per-rank batch sizes, matching [`crate::experiments::spgemm`]'s choice:
/// the paper's hypersparse regime (`nnz(A*) ≪ nnz(A)`) at proxy scale.
pub const ANALYTICS_BATCHES: [usize; 3] = [16, 64, 256];

/// Per-batch view-refresh latency: maintained session vs. static
/// recomputation, per instance and batch size. Insert (Algorithm 1) and
/// expire (Algorithm 2) rounds are reported separately — they exercise
/// different machinery with different costs.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Analytics: maintained views vs. static recomputation (per batch)",
        &[
            "instance",
            "|batch|/rank",
            "insert (model)",
            "expire (model)",
            "static (model)",
            "speedup ins",
            "speedup exp",
            "insert bytes",
            "static bytes",
        ],
    );
    let instances = prepare_instances(cfg);
    for inst in &instances {
        for &batch_size in &ANALYTICS_BATCHES {
            let (ins, exp) = dynamic_cost(cfg, inst, batch_size);
            let (stat_ins, stat_exp) = static_cost(cfg, inst, batch_size);
            let stat = median_cost(&[stat_ins.clone(), stat_exp.clone()]);
            table.push_row(vec![
                inst.name.into(),
                batch_size.to_string(),
                ms(ins.modeled()),
                ms(exp.modeled()),
                ms(stat.modeled()),
                ratio(stat.modeled().as_secs_f64() / ins.modeled().as_secs_f64().max(1e-9)),
                ratio(stat.modeled().as_secs_f64() / exp.modeled().as_secs_f64().max(1e-9)),
                format_bytes(ins.crit_bytes),
                format_bytes(stat.crit_bytes),
            ]);
        }
    }
    table.note(format!(
        "p = {}, T = {}, {} alternating insert/expire batches; three maintained \
         views (triangles, 64-pair link prediction, degrees) refreshed every batch",
        cfg.p,
        cfg.threads,
        cfg.batches.max(2)
    ));
    table.note(
        "modeled = wall + critical-path bytes / 12.5 GB/s + 1 us/message \
         (see measure.rs); bytes are exact metered volume (critical path)",
    );
    table.note(
        "the dynamic advantage needs the hypersparse regime nnz(A*) << nnz(A); \
         at proxy scale large batches approach the static crossover, as in Fig. 9",
    );
    table
}

/// Splits per-round costs into (insert-round median, expire-round median);
/// the schedule alternates, starting with an insert.
fn split_medians(costs: &[BatchCost]) -> (BatchCost, BatchCost) {
    let ins: Vec<BatchCost> = costs.iter().step_by(2).cloned().collect();
    let exp: Vec<BatchCost> = costs.iter().skip(1).step_by(2).cloned().collect();
    (
        median_cost(&ins),
        if exp.is_empty() {
            median_cost(&ins)
        } else {
            median_cost(&exp)
        },
    )
}

fn dynamic_cost(cfg: &Config, inst: &Prepared, batch_size: usize) -> (BatchCost, BatchCost) {
    let n = inst.n;
    let (p, threads, rounds, seed) = (cfg.p, cfg.threads, cfg.batches.max(2), cfg.seed);
    let edges = &inst.edges;
    let cands = instance_candidates(inst);
    let out = dspgemm_mpi::run(p, |comm| {
        let base = rank_slice(edges, comm.rank(), p)
            .into_iter()
            .map(|(u, v)| Triple::new(u, v, 1u64))
            .collect();
        let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, threads, base);
        session.register(Box::new(TriangleCountView::new()));
        session.register(Box::new(CommonNeighborsView::new(cands.clone())));
        session.register(Box::new(DegreeView::new(1u64)));
        let plan = schedule(edges, comm.rank(), batch_size, rounds, seed);
        let mut costs = Vec::new();
        for (inserts, deletes) in plan {
            let (_, cost) = measured_collective(comm, || {
                if deletes.is_empty() {
                    session.insert_edges(inserts);
                } else {
                    let mut upd = GeneralUpdates::new();
                    upd.deletes = deletes;
                    session.apply_general(upd);
                }
            });
            costs.push(cost);
        }
        split_medians(&costs)
    });
    out.results[0].clone()
}

fn static_cost(cfg: &Config, inst: &Prepared, batch_size: usize) -> (BatchCost, BatchCost) {
    let n = inst.n;
    let (p, threads, rounds, seed) = (cfg.p, cfg.threads, cfg.batches.max(2), cfg.seed);
    let edges = &inst.edges;
    let cands = instance_candidates(inst);
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let base: Vec<Triple<u64>> = rank_slice(edges, comm.rank(), p)
            .into_iter()
            .map(|(u, v)| Triple::new(u, v, 1u64))
            .collect();
        let mut a = DistMat::from_global_triples(&grid, n, n, base, threads, &mut timer);
        let plan = schedule(edges, comm.rank(), batch_size, rounds, seed);
        let mut costs = Vec::new();
        for (inserts, deletes) in plan {
            let (_, cost) = measured_collective(comm, || {
                static_step(
                    &grid, &mut a, inserts, &deletes, &cands, threads, &mut timer,
                )
            });
            costs.push(cost);
        }
        split_medians(&costs)
    });
    out.results[0].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two strategies must agree on every derived quantity — the bench
    /// compares equal work.
    #[test]
    fn static_step_agrees_with_maintained_views() {
        let cfg = Config::smoke();
        let inst = &prepare_instances(&cfg)[0];
        let n = inst.n;
        let cands = instance_candidates(inst);
        let edges = &inst.edges;
        let cands_in = cands.clone();
        let out = dspgemm_mpi::run(4, |comm| {
            let base: Vec<Triple<u64>> = rank_slice(edges, comm.rank(), 4)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1u64))
                .collect();
            let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, 1, base.clone());
            let tri = session.register(Box::new(TriangleCountView::new()));
            let cn = session.register(Box::new(CommonNeighborsView::new(cands_in.clone())));
            session.register(Box::new(DegreeView::new(1u64)));

            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mut a_static = DistMat::from_global_triples(&grid, n, n, base, 1, &mut timer);

            let plan = schedule(edges, comm.rank(), 16, 4, cfg.seed);
            let mut agreed = true;
            for (inserts, deletes) in plan {
                if deletes.is_empty() {
                    session.insert_edges(inserts.clone());
                } else {
                    let mut upd = GeneralUpdates::new();
                    upd.deletes = deletes.clone();
                    session.apply_general(upd);
                }
                let (tri_static, cand_static) = static_step(
                    &grid,
                    &mut a_static,
                    inserts,
                    &deletes,
                    &cands_in,
                    1,
                    &mut timer,
                );
                let tri_dyn = session.view_as::<TriangleCountView>(tri).unwrap().count();
                let cand_dyn = session
                    .view_as::<CommonNeighborsView<U64Plus>>(cn)
                    .unwrap()
                    .local_scores()
                    .fold(0u64, |acc, (_, _, s)| acc.wrapping_add(s));
                let cand_dyn = grid.world().allreduce(cand_dyn, u64::wrapping_add);
                agreed &= tri_dyn == tri_static && cand_dyn == cand_static;
            }
            agreed
        });
        assert!(out.results.iter().all(|&ok| ok));
    }
}
