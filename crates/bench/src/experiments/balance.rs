//! Balance ablation: skew-aware local-kernel scheduling (contiguous vs.
//! flop-balanced vs. work-stealing row assignment).
//!
//! The catalog's social/web proxies are power-law graphs, so equal-count
//! contiguous row ranges put wildly unequal flops on the intra-rank worker
//! threads; the flop-balanced and work-stealing schedules redistribute the
//! *work* while leaving the *output* bit-identical (per-range outputs are
//! concatenated in row order regardless of which worker produced them).
//! This experiment runs the same SUMMA (and a dynamic-update arm) under all
//! three [`RowSchedule`]s, asserts bit-identical `C` across arms, and
//! reports the per-thread flop imbalance (max/mean) plus the median
//! local-multiply wall-clock. The numbers land in `BENCH_pr4.json`.

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::measure::{median, timed_collective};
use crate::report::{ms, Table};
use crate::Config;
use dspgemm_core::dyn_algebraic::apply_algebraic_updates_exec;
use dspgemm_core::summa::summa_exec;
use dspgemm_core::{DistMat, Exec, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::Triple;
use dspgemm_util::par::RowSchedule;
use dspgemm_util::stats::{flop_imbalance, PhaseTimer};
use std::time::Duration;

/// Per-rank update batch size of the dynamic arm (matches the copy-elim and
/// overlap ablations so numbers are comparable across PRs).
const BALANCE_BATCH: usize = 4096;

/// The three schedules under test, with display names.
pub const ARMS: [(RowSchedule, &str); 3] = [
    (RowSchedule::Contiguous, "contiguous (before)"),
    (RowSchedule::FlopBalanced, "flop-balanced (after)"),
    (RowSchedule::WorkStealing, "work-stealing (after)"),
];

/// Outcome of one schedule arm.
#[derive(Debug, Clone)]
pub struct BalanceArm {
    /// Median wall time of the measured collective (rank 0's view).
    pub wall: Duration,
    /// Slowest rank's median local-multiply time (critical path).
    pub local_mult: Duration,
    /// Worst per-rank thread-flop imbalance (max/mean over the rank's
    /// worker threads, maximized over ranks).
    pub imbalance: f64,
    /// Total flops over all ranks and threads (schedule-invariant).
    pub total_flops: u64,
    /// Root gather of the result (identity check across arms).
    pub result: Vec<Triple<f64>>,
}

/// One static-SUMMA arm: full-adjacency `A·A` at `cfg.p` ranks ×
/// `cfg.threads` threads under `schedule`, 3 reps, median wall.
pub fn summa_arm(cfg: &Config, inst: &Prepared, schedule: RowSchedule) -> BalanceArm {
    let n = inst.n;
    let (p, threads) = (cfg.p, cfg.threads);
    let edges = &inst.edges;
    let reps = 3usize;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut build_t = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let a = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut build_t);
        let exec = Exec::<F64Plus>::with_schedule(threads, schedule);
        let mut walls = Vec::new();
        let mut mults = Vec::new();
        let mut thread_flops: Vec<u64> = Vec::new();
        let mut c_gathered = None;
        for rep in 0..reps {
            let mut timer = PhaseTimer::new();
            let (c, d) = timed_collective(comm, || {
                summa_exec::<F64Plus>(&grid, &a, &a, &exec, &mut timer).0
            });
            walls.push(d);
            mults.push(timer.get(dspgemm_core::phase::LOCAL_MULT));
            if rep == 0 {
                thread_flops = timer.thread_flops().to_vec();
                comm.barrier();
                c_gathered = c.gather_to_root(comm);
            }
        }
        (median(&walls), median(&mults), thread_flops, c_gathered)
    });
    summarize(out, threads)
}

/// The dynamic arm: Algorithm-1 update batches through a session [`Exec`]
/// under `schedule` (same seeds in every arm, so gathered `C` must match
/// across schedules here too).
pub fn dynamic_arm(cfg: &Config, inst: &Prepared, schedule: RowSchedule) -> BalanceArm {
    let n = inst.n;
    let (p, threads, batches, seed) = (cfg.p, cfg.threads, cfg.batches.max(1), cfg.seed);
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut build_t = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let mut a = DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut build_t);
        let mut b = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut build_t);
        let exec = Exec::<F64Plus>::with_schedule(threads, schedule);
        let (mut c, _) = summa_exec::<F64Plus>(&grid, &a, &b, &exec, &mut build_t);
        let mut a_draws = ReplacementDraws::new(BALANCE_BATCH, seed, comm.rank());
        let mut b_draws = ReplacementDraws::new(BALANCE_BATCH, seed ^ 0x9e37, comm.rank());
        let mut timer = PhaseTimer::new();
        let mut walls = Vec::new();
        for _ in 0..batches {
            let a_batch: Vec<Triple<f64>> = a_draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            let b_batch: Vec<Triple<f64>> = b_draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            let (_, d) = timed_collective(comm, || {
                apply_algebraic_updates_exec::<F64Plus>(
                    &grid, &mut a, &mut b, &mut c, a_batch, b_batch, &exec, &mut timer,
                )
            });
            walls.push(d);
        }
        let thread_flops = timer.thread_flops().to_vec();
        let mult = timer.get(dspgemm_core::phase::LOCAL_MULT);
        comm.barrier();
        let c_gathered = c.gather_to_root(comm);
        (median(&walls), mult, thread_flops, c_gathered)
    });
    summarize(out, threads)
}

type RankResult = (Duration, Duration, Vec<u64>, Option<Vec<Triple<f64>>>);

fn summarize(out: dspgemm_mpi::SimOutput<RankResult>, threads: usize) -> BalanceArm {
    let wall = out.results[0].0;
    let local_mult = out
        .results
        .iter()
        .map(|r| r.1)
        .max()
        .unwrap_or(Duration::ZERO);
    let imbalance = out
        .results
        .iter()
        .map(|r| {
            // A rank whose kernels all ran single-threaded reports a bare
            // total; pad to the configured width so idle threads count.
            let mut tf = r.2.clone();
            tf.resize(tf.len().max(threads), 0);
            flop_imbalance(&tf)
        })
        .fold(1.0f64, f64::max);
    let total_flops = out.results.iter().map(|r| r.2.iter().sum::<u64>()).sum();
    BalanceArm {
        wall,
        local_mult,
        imbalance,
        total_flops,
        result: out.results[0].3.clone().unwrap_or_default(),
    }
}

/// The `repro balance` table.
pub fn run(cfg: &Config) -> Table {
    // The schedules only differ with ≥ 2 workers; keep the configured value
    // otherwise so `--threads` drives scaling studies.
    let mut cfg = cfg.clone();
    cfg.threads = cfg.threads.max(2);
    let mut t = Table::new(
        format!(
            "Ablation: skew-aware local kernels (row schedules), p={} threads={}",
            cfg.p, cfg.threads
        ),
        &[
            "benchmark",
            "wall",
            "local mult (ms)",
            "flop imbalance (max/mean)",
            "flops",
        ],
    );
    // Instance 0 is the most skewed social proxy of the catalog slice
    // (Table-I order starts with LiveJournal).
    let inst = &prepare_instances(&cfg)[0];

    let static_arms: Vec<(&str, BalanceArm)> = ARMS
        .iter()
        .map(|&(schedule, name)| (name, summa_arm(&cfg, inst, schedule)))
        .collect();
    for (name, arm) in &static_arms {
        // Hard invariants: the schedule moves work between threads, never
        // values between entries.
        assert_eq!(
            arm.result, static_arms[0].1.result,
            "{name}: C must be bit-identical across schedules"
        );
        assert_eq!(
            arm.total_flops, static_arms[0].1.total_flops,
            "{name}: total flops are schedule-invariant"
        );
        t.push_row(vec![
            format!("static SUMMA, {name}"),
            ms(arm.wall),
            ms(arm.local_mult),
            format!("{:.2}", arm.imbalance),
            arm.total_flops.to_string(),
        ]);
    }

    let dynamic_arms: Vec<(&str, BalanceArm)> = ARMS
        .iter()
        .map(|&(schedule, name)| (name, dynamic_arm(&cfg, inst, schedule)))
        .collect();
    for (name, arm) in &dynamic_arms {
        assert_eq!(
            arm.result, dynamic_arms[0].1.result,
            "{name}: dynamic C must be bit-identical across schedules"
        );
        assert_eq!(
            arm.total_flops, dynamic_arms[0].1.total_flops,
            "{name}: dynamic total flops are schedule-invariant"
        );
        t.push_row(vec![
            format!("dynamic updates ({BALANCE_BATCH} / rank), {name}"),
            ms(arm.wall),
            ms(arm.local_mult),
            format!("{:.2}", arm.imbalance),
            arm.total_flops.to_string(),
        ]);
    }

    t.note("C and total flops are asserted identical across schedules (work moves, never values)");
    t.note(
        "flop imbalance = max/mean over per-thread flop counters, worst rank; \
         1.00 is a perfect split",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_smoke() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 1;
        cfg.threads = 2;
        // The run itself asserts bit-identical C and flop parity per arm.
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 6);
    }

    #[test]
    fn balanced_schedules_reduce_imbalance_on_skew() {
        // Deterministic at any host load: imbalance is a flop-count
        // property, not a timing property.
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.threads = 4;
        let inst = &prepare_instances(&cfg)[0];
        let contiguous = summa_arm(&cfg, inst, RowSchedule::Contiguous);
        let balanced = summa_arm(&cfg, inst, RowSchedule::FlopBalanced);
        assert_eq!(contiguous.result, balanced.result);
        assert!(
            balanced.imbalance <= contiguous.imbalance,
            "flop-balanced {} vs contiguous {}",
            balanced.imbalance,
            contiguous.imbalance
        );
    }
}
