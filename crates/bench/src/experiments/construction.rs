//! Fig. 2/3: matrix construction performance, relative to CombBLAS.

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice};
use crate::measure::timed_collective;
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_baselines::{combblas::CombBlasMatrix, ctf::CtfMatrix, petsc::PetscMatrix};
use dspgemm_core::{DistMat, Grid};
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_util::stats::{geometric_mean, PhaseTimer};
use std::time::Duration;

/// Times each system's full construction of an instance's adjacency matrix.
/// Best-of-`REPS` timing: on a small oversubscribed host a descheduled rank
/// inflates one-shot wall times by an order of magnitude; the minimum is the
/// robust estimator for a deterministic computation.
const REPS: usize = 3;

fn best_of<F: FnMut() -> Duration>(mut f: F) -> Duration {
    (0..REPS).map(|_| f()).min().unwrap()
}

fn construct_times(cfg: &Config, n: u32, edges: &[(u32, u32)]) -> [Duration; 4] {
    let p = cfg.p;
    let threads = cfg.threads;
    let ours = best_of(|| {
        dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            let (_, d) = timed_collective(comm, || {
                let mut timer = PhaseTimer::new();
                DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut timer)
            });
            d
        })
        .results[0]
    });
    let cb = best_of(|| {
        dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            let (_, d) = timed_collective(comm, || {
                let mut timer = PhaseTimer::new();
                CombBlasMatrix::construct::<F64Plus>(&grid, n, n, mine.clone(), &mut timer)
            });
            d
        })
        .results[0]
    });
    let ctf = best_of(|| {
        dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            let (_, d) = timed_collective(comm, || {
                let mut timer = PhaseTimer::new();
                CtfMatrix::construct::<F64Plus>(&grid, n, n, mine.clone(), &mut timer)
            });
            d
        })
        .results[0]
    });
    let petsc = best_of(|| {
        dspgemm_mpi::run(p, |comm| {
            let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            let (_, d) = timed_collective(comm, || {
                let mut timer = PhaseTimer::new();
                PetscMatrix::construct::<F64Plus>(comm, n, n, mine.clone(), &mut timer)
            });
            d
        })
        .results[0]
    });
    [ours, cb, ctf, petsc]
}

/// Runs the construction experiment over the configured catalog subset.
pub fn run(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!("Figure 3: construction, p={}, relative to CombBLAS", cfg.p),
        &[
            "instance",
            "ours (ms)",
            "CombBLAS",
            "CTF",
            "PETSc",
            "ours rel",
            "CTF rel",
            "PETSc rel",
        ],
    );
    let mut rels = Vec::new();
    for inst in prepare_instances(cfg) {
        let [ours, cb, ctf, petsc] = construct_times(cfg, inst.n, &inst.edges);
        let rel = cb.as_secs_f64() / ours.as_secs_f64();
        rels.push(rel);
        t.push_row(vec![
            inst.name.to_string(),
            ms(ours),
            ms(cb),
            ms(ctf),
            ms(petsc),
            ratio(rel),
            ratio(cb.as_secs_f64() / ctf.as_secs_f64()),
            ratio(cb.as_secs_f64() / petsc.as_secs_f64()),
        ]);
    }
    t.note(format!(
        "geo-mean speedup over CombBLAS: {} (paper: 1.68x-2.59x)",
        ratio(geometric_mean(&rels))
    ));
    t.note("relative performance >1 means faster than CombBLAS");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let t = super::run(&crate::Config::smoke());
        assert_eq!(t.rows.len(), 2);
    }
}
