//! Ablations backing the paper's design-choice claims.
//!
//! * **redistribution** (§IV-B): two-phase √p counting-sort route vs the
//!   competitors' comparison-sort + single global alltoall;
//! * **bloom** (§V-B): how many non-zeros of `A'` the Bloom filter excludes
//!   from communication in the general algorithm;
//! * **aggregation** (§V-A): communication volume of Algorithm 1 vs a
//!   static SUMMA of the same product, as the update density grows — the
//!   crossover the paper predicts ("for large batch sizes … our algorithm
//!   is expected to perform worse than SUMMA").

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice};
use crate::measure::timed_collective;
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_baselines::combblas::{self, CombBlasMatrix};
use dspgemm_core::dyn_algebraic::apply_algebraic_updates;
use dspgemm_core::redistribute::redistribute;
use dspgemm_core::{DistMat, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_sparse::bloom::row_or_reduce;
use dspgemm_sparse::local_mm::{spgemm_bloom, spgemm_pattern};
use dspgemm_sparse::ops::extract_filtered;
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::{Csr, Dcsr, Index, RowScan, Triple};
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::stats::{format_bytes, PhaseTimer};

/// §IV-B ablation: our two-phase counting-sort redistribution vs the global
/// comparison-sort route, on identical tuple streams.
pub fn redistribution(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!("Ablation: update redistribution, p={}", cfg.p),
        &[
            "tuples/rank",
            "two-phase (ms)",
            "global (ms)",
            "speedup",
            "msgs 2ph",
            "msgs glob",
        ],
    );
    let n: Index = 1 << 16;
    for &per_rank in &[10_000usize, 100_000, 400_000] {
        let seed = cfg.seed;
        let p = cfg.p;
        let two = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut rng = SplitMix64::derive(seed, comm.rank() as u64);
            let mine: Vec<Triple<f64>> = (0..per_rank)
                .map(|_| {
                    Triple::new(
                        rng.gen_range(n as u64) as Index,
                        rng.gen_range(n as u64) as Index,
                        1.0,
                    )
                })
                .collect();
            let mut timer = PhaseTimer::new();
            let (_, d) =
                timed_collective(comm, || redistribute(&grid, n, n, mine.clone(), &mut timer));
            d
        });
        let glob = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut rng = SplitMix64::derive(seed, comm.rank() as u64);
            let mine: Vec<Triple<f64>> = (0..per_rank)
                .map(|_| {
                    Triple::new(
                        rng.gen_range(n as u64) as Index,
                        rng.gen_range(n as u64) as Index,
                        1.0,
                    )
                })
                .collect();
            let mut timer = PhaseTimer::new();
            let (_, d) = timed_collective(comm, || {
                combblas::redistribute_global(&grid, n, n, mine.clone(), &mut timer)
            });
            d
        });
        let (d2, dg) = (two.results[0], glob.results[0]);
        t.push_row(vec![
            per_rank.to_string(),
            ms(d2),
            ms(dg),
            ratio(dg.as_secs_f64() / d2.as_secs_f64()),
            two.stats
                .msgs_in(dspgemm_mpi::CommCategory::Alltoall)
                .to_string(),
            glob.stats
                .msgs_in(dspgemm_mpi::CommCategory::Alltoall)
                .to_string(),
        ]);
    }
    t.note("two-phase: 2·p·(sqrt(p)-1) messages; global: p·(p-1) messages");
    t
}

/// §V-B ablation: fraction of `nnz(A')` that the Bloom filter keeps in
/// `A^R` after a deletion batch (single-rank analysis on catalog proxies).
pub fn bloom_filter(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Ablation: Bloom-filtered extraction A^R after deletions",
        &["instance", "nnz(A')", "nnz(A^R)", "kept", "deletions"],
    );
    for inst in prepare_instances(cfg) {
        let n = inst.n;
        let triples = edges_to_triples(&inst.edges);
        let a = Csr::from_triples::<F64Plus>(n, n, triples.clone());
        let b = a.clone();
        // Full product with Bloom tracking -> F.
        let full = spgemm_bloom::<F64Plus, _, _>(&a, &b, 0, cfg.threads);
        // Delete a 1% sample of A's entries.
        let mut rng = SplitMix64::new(cfg.seed);
        let all = a.to_triples();
        let dels: Vec<Triple<f64>> = (0..(all.len() / 100).max(1))
            .map(|_| all[rng.gen_index(all.len())])
            .collect();
        let a_star = Dcsr::from_triples::<F64Plus>(n, n, dels.clone());
        // A' = A minus deletions.
        let kill: std::collections::BTreeSet<u64> = dels.iter().map(Triple::key).collect();
        let a_new_triples: Vec<Triple<f64>> = all
            .iter()
            .copied()
            .filter(|t| !kill.contains(&t.key()))
            .collect();
        let a_new = Csr::from_sorted_triples(n, n, &a_new_triples);
        // Pattern of C* = A*·B (B unchanged => A·B* term empty); F* bits.
        let cstar = spgemm_pattern(&a_star, &b, 0, cfg.threads);
        // E = (F | F*) masked at C*; R = row-wise OR.
        let mut f_lookup: dspgemm_util::FxHashMap<u64, u64> = Default::default();
        full.result.scan_rows(|r, cols, vals| {
            for (&c, &(_, bits)) in cols.iter().zip(vals) {
                f_lookup.insert(((r as u64) << 32) | c as u64, bits);
            }
        });
        let mut e = Dcsr::empty(n, n);
        cstar.result.scan_rows(|r, cols, vals| {
            let evals: Vec<u64> = cols
                .iter()
                .zip(vals)
                .map(|(&c, &fstar)| {
                    fstar
                        | f_lookup
                            .get(&(((r as u64) << 32) | c as u64))
                            .copied()
                            .unwrap_or(0)
                })
                .collect();
            e.push_row(r, cols, &evals);
        });
        let filter = row_or_reduce(&e, n);
        let a_r = extract_filtered(&a_new, &filter, 0);
        t.push_row(vec![
            inst.name.to_string(),
            a_new.nnz().to_string(),
            a_r.nnz().to_string(),
            format!(
                "{:.1}%",
                100.0 * a_r.nnz() as f64 / a_new.nnz().max(1) as f64
            ),
            dels.len().to_string(),
        ]);
    }
    t.note(
        "the general algorithm ships only A^R; kept% is what the Bloom filter could not exclude",
    );
    t
}

/// §V-A ablation: communication volume of Algorithm 1 vs a static SUMMA of
/// `A*·B'`, as the update batch grows — locating the crossover.
pub fn aggregation(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation: Algorithm 1 volume vs static SUMMA volume, p={}",
            cfg.p
        ),
        &["batch/rank", "dynamic bytes", "static bytes", "dyn/stat"],
    );
    let inst = &prepare_instances(cfg)[0];
    let n = inst.n;
    let edges = &inst.edges;
    for &bs in &[16usize, 256, 4096, 16384] {
        let (p, threads, seed) = (cfg.p, cfg.threads, cfg.seed);
        // Baseline volume: construction only.
        let base = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            DistMat::from_global_triples(&grid, n, n, b_mine, threads, &mut timer).local_nnz()
        });
        // Dynamic: construction + one Algorithm-1 batch.
        let dynamic = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            let mut b = DistMat::from_global_triples(&grid, n, n, b_mine, threads, &mut timer);
            let mut a: DistMat<f64> = DistMat::empty(&grid, n, n);
            let mut c: DistMat<f64> = DistMat::empty(&grid, n, n);
            let mut draws = ReplacementDraws::new(bs, seed, comm.rank());
            let batch: Vec<Triple<f64>> = draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            apply_algebraic_updates::<F64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                batch,
                vec![],
                threads,
                &mut timer,
            );
            c.local_nnz()
        });
        // Static: construction + one CombBLAS-style A*·B.
        let cb_base = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            CombBlasMatrix::construct::<F64Plus>(&grid, n, n, b_mine, &mut timer).local_nnz()
        });
        let cb = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let b_mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            let b = CombBlasMatrix::construct::<F64Plus>(&grid, n, n, b_mine, &mut timer);
            let mut draws = ReplacementDraws::new(bs, seed, comm.rank());
            let batch: Vec<Triple<f64>> = draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            let a_star = CombBlasMatrix::construct::<F64Plus>(&grid, n, n, batch, &mut timer);
            let (delta, _) = combblas::spgemm::<F64Plus>(&grid, &a_star, &b, threads, &mut timer);
            delta.local_nnz()
        });
        let dyn_bytes = dynamic.stats.total_bytes() - base.stats.total_bytes();
        let stat_bytes = cb.stats.total_bytes() - cb_base.stats.total_bytes();
        t.push_row(vec![
            bs.to_string(),
            format_bytes(dyn_bytes),
            format_bytes(stat_bytes),
            format!("{:.3}", dyn_bytes as f64 / stat_bytes.max(1) as f64),
        ]);
    }
    t.note("dynamic volume scales with nnz(A*)+nnz(C*); static with nnz(A)+nnz(B) — the paper's central trade-off");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribution_smoke() {
        let mut cfg = Config::smoke();
        cfg.p = 4;
        cfg.instances = 1;
        let t = redistribution(&cfg);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn bloom_smoke() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        let t = bloom_filter(&cfg);
        assert_eq!(t.rows.len(), 1);
        // kept% column parses and is <= 100.
        let kept: f64 = t.rows[0][3].trim_end_matches('%').parse().unwrap();
        assert!(kept <= 100.0);
    }
}
