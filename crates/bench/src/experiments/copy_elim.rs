//! Copy-elimination ablation: zero-copy collective payloads + flat-buffer
//! local SpGEMM.
//!
//! The simulated MPI layer used to deep-clone every broadcast payload once
//! per receiving rank, and the Gustavson assembly allocated one `Vec` per
//! output row. This experiment quantifies what eliminating those copies is
//! worth: it times the p-rank dynamic-SpGEMM update benchmark and a static
//! SUMMA, and reports the wire volume next to the wall time so the
//! zero-copy path can be checked against the invariant that *logical*
//! communication volume (the paper's Fig. 7/12 metric) is unchanged —
//! only memcpy work disappears.

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::measure::{median, timed_collective};
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_core::dyn_algebraic::apply_algebraic_updates;
use dspgemm_core::summa::summa;
use dspgemm_core::{DistMat, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_sparse::local_mm::{spgemm, MmOutput};
use dspgemm_sparse::semiring::{F64Plus, Semiring};
use dspgemm_sparse::spa::Spa;
use dspgemm_sparse::{Csr, Dcsr, Index, RowRead, RowScan, Triple};
use dspgemm_util::par::parallel_map_ranges;
use dspgemm_util::stats::{format_bytes, PhaseTimer};
use dspgemm_util::WireSize;
use std::sync::Arc;
use std::time::Duration;

/// Per-rank update batch size: large enough that broadcast payloads and
/// SPA drains dominate over fixed per-round costs.
pub const COPY_ELIM_BATCH: usize = 4096;

/// Outcome of one benchmark arm.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// Median per-batch (or per-multiply) wall time.
    pub wall: Duration,
    /// Total wire bytes of the whole run (logical volume; must be invariant
    /// under copy elimination).
    pub bytes: u64,
    /// Total messages of the whole run.
    pub msgs: u64,
    /// Payload deep-clones performed by clone-based collectives during the
    /// run (zero on the shared/`Arc` path).
    pub payload_clones: u64,
}

/// The p-rank dynamic-SpGEMM update benchmark: both operands hold the full
/// adjacency matrix, then `cfg.batches` algebraic batches of
/// [`COPY_ELIM_BATCH`] tuples per rank update both `A` and `B`, exercising
/// the transpose exchanges, both broadcast passes, the local multiplies and
/// the sparse merge-reductions of Algorithm 1.
pub fn update_benchmark(cfg: &Config, inst: &Prepared, p: usize) -> ArmResult {
    let n = inst.n;
    let (threads, batches, seed) = (cfg.threads, cfg.batches, cfg.seed);
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let mut a = DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut timer);
        let mut b = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        let (mut c, _) = summa::<F64Plus>(&grid, &a, &b, threads, &mut timer);
        let mut a_draws = ReplacementDraws::new(COPY_ELIM_BATCH, seed, comm.rank());
        let mut b_draws = ReplacementDraws::new(COPY_ELIM_BATCH, seed ^ 0x9e37, comm.rank());
        let mut times = Vec::new();
        for _ in 0..batches {
            let a_batch: Vec<Triple<f64>> = a_draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            let b_batch: Vec<Triple<f64>> = b_draws
                .next_batch(edges)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect();
            let (_, d) = timed_collective(comm, || {
                apply_algebraic_updates::<F64Plus>(
                    &grid, &mut a, &mut b, &mut c, a_batch, b_batch, threads, &mut timer,
                )
            });
            times.push(d);
        }
        median(&times)
    });
    ArmResult {
        wall: out.results[0],
        bytes: out.stats.total_bytes(),
        msgs: out.stats.total_msgs(),
        payload_clones: payload_clones(&out),
    }
}

/// Static SUMMA of the full adjacency product at `p` ranks — the arm where
/// broadcast payloads are largest (whole operand blocks travel every round).
pub fn summa_benchmark(cfg: &Config, inst: &Prepared, p: usize) -> ArmResult {
    let n = inst.n;
    let threads = cfg.threads;
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let a = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        let (_, d) = timed_collective(comm, || {
            summa::<F64Plus>(&grid, &a, &a, threads, &mut timer)
        });
        d
    });
    ArmResult {
        wall: out.results[0],
        bytes: out.stats.total_bytes(),
        msgs: out.stats.total_msgs(),
        payload_clones: payload_clones(&out),
    }
}

fn payload_clones<R>(out: &dspgemm_mpi::SimOutput<R>) -> u64 {
    out.payload_clones
}

/// One before/after pair for the collective-payload arm: broadcast this
/// rank's full CSR block around the grid row for `rounds` rounds, once with
/// the legacy clone-based `bcast` and once with `bcast_shared`.
/// Returns `(wall, wire bytes, payload clones, bytes deep-cloned)` per arm.
#[allow(clippy::type_complexity)]
pub fn bcast_arms(
    cfg: &Config,
    inst: &Prepared,
    p: usize,
) -> ((Duration, u64, u64, u64), (Duration, u64, u64, u64)) {
    let n = inst.n;
    let threads = cfg.threads;
    let edges = &inst.edges;
    let rounds = 8usize;
    let run_arm = |shared: bool| {
        let out = dspgemm_mpi::run(p, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
            let a = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
            let block: Arc<Csr<f64>> = a.block_csr_shared();
            // Fence before the snapshots so construction traffic (and any
            // clone a setup path might ever perform) cannot leak into the
            // measured deltas.
            comm.barrier();
            let before = comm.comm_stats();
            let clones_before = comm.payload_clones();
            let q = grid.q();
            let (_, j) = grid.coords();
            let (_, d) = timed_collective(comm, || {
                for _ in 0..rounds {
                    for k in 0..q {
                        if shared {
                            let got = grid.row_comm().bcast_shared(
                                k,
                                if j == k {
                                    Some(Arc::clone(&block))
                                } else {
                                    None
                                },
                            );
                            std::hint::black_box(got.nnz());
                        } else {
                            let got: Csr<f64> = grid
                                .row_comm()
                                .bcast(k, if j == k { Some((*block).clone()) } else { None });
                            std::hint::black_box(got.nnz());
                        }
                    }
                }
            });
            let delta = comm.comm_stats().delta_since(&before);
            let clones = comm.payload_clones() - clones_before;
            // Every clone in this region is a forward of some root's block;
            // this rank's block is root `rounds` times and is deep-cloned
            // once per other row-comm member each time (clone-based arm).
            let my_cloned_bytes = if shared {
                0
            } else {
                rounds as u64 * (q as u64 - 1) * block.wire_bytes()
            };
            (d, delta.total_bytes(), clones, my_cloned_bytes)
        });
        let (wall, bytes, clones, _) = out.results[0];
        let cloned_bytes: u64 = out.results.iter().map(|&(_, _, _, b)| b).sum();
        (wall, bytes, clones, cloned_bytes)
    };
    (run_arm(false), run_arm(true))
}

/// One produced output row of the per-row-`Vec` reference path.
type BoxedRow<A> = (Index, Vec<(Index, A)>);

/// Legacy per-row-`Vec` Gustavson assembly — the "before" arm of the local
/// SpGEMM comparison. Semantically identical to
/// [`dspgemm_sparse::local_mm::spgemm`]; kept here (not in the library) as
/// the ablation baseline.
pub fn spgemm_boxed<S, L, R>(a: &L, b: &R, threads: usize) -> MmOutput<S::Elem>
where
    S: Semiring,
    L: RowScan<S::Elem> + Sync,
    R: RowRead<S::Elem> + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let parts = parallel_map_ranges(threads.max(1), nrows as usize, |range| {
        let mut spa: Spa<S::Elem> = Spa::for_width(ncols);
        let mut rows: Vec<BoxedRow<S::Elem>> = Vec::new();
        let mut flops = 0u64;
        a.scan_row_range(
            range.start as Index,
            range.end as Index,
            |i, acols, avals| {
                for (&k, &av) in acols.iter().zip(avals) {
                    let (bcols, bvals) = b.row(k);
                    flops += bcols.len() as u64;
                    for (&j, &bv) in bcols.iter().zip(bvals) {
                        spa.scatter(j, S::mul(av, bv), S::add);
                    }
                }
                if !spa.is_empty() {
                    let mut entries = Vec::new();
                    spa.drain_sorted(&mut entries);
                    rows.push((i, entries));
                }
            },
        );
        (rows, flops)
    });
    let flops = parts.iter().map(|(_, f)| *f).sum();
    let mut result = Dcsr::empty(nrows, ncols);
    let mut cols_buf: Vec<Index> = Vec::with_capacity(64);
    let mut vals_buf: Vec<S::Elem> = Vec::with_capacity(64);
    for (rows, _) in parts {
        for (r, entries) in rows {
            cols_buf.clear();
            vals_buf.clear();
            cols_buf.extend(entries.iter().map(|&(c, _)| c));
            vals_buf.extend(entries.iter().map(|&(_, v)| v));
            result.push_row(r, &cols_buf, &vals_buf);
        }
    }
    MmOutput {
        result,
        flops,
        thread_flops: Vec::new(),
    }
}

/// Local-kernel arm: full-adjacency square product `A·A`, per-row-`Vec`
/// assembly vs the flat-buffer path. Returns `(boxed wall, flat wall)`;
/// panics if the outputs are not bit-identical.
pub fn local_mm_arms(cfg: &Config, inst: &Prepared) -> (Duration, Duration) {
    let n = inst.n;
    let a = Csr::from_triples::<F64Plus>(n, n, edges_to_triples(&inst.edges));
    let reps = 3;
    let mut boxed_walls = Vec::new();
    let mut flat_walls = Vec::new();
    let mut boxed_out = None;
    let mut flat_out = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        boxed_out = Some(spgemm_boxed::<F64Plus, _, _>(&a, &a, cfg.threads));
        boxed_walls.push(t0.elapsed());
        let t1 = std::time::Instant::now();
        flat_out = Some(spgemm::<F64Plus, _, _>(&a, &a, cfg.threads));
        flat_walls.push(t1.elapsed());
    }
    let (boxed_out, flat_out) = (boxed_out.expect("ran"), flat_out.expect("ran"));
    assert_eq!(
        boxed_out.result, flat_out.result,
        "flat-buffer SpGEMM must be bit-identical to the per-row-Vec path"
    );
    assert_eq!(boxed_out.flops, flat_out.flops);
    (median(&boxed_walls), median(&flat_walls))
}

/// The `repro copy-elim` table.
pub fn run(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation: copy elimination (zero-copy collectives + flat SpGEMM), p={}",
            cfg.p
        ),
        &[
            "benchmark",
            "wall",
            "wire bytes",
            "msgs",
            "payload clones",
            "bytes cloned",
        ],
    );
    let inst = &prepare_instances(cfg)[0];

    // End-to-end arms: the whole stack now runs zero-copy / flat.
    let upd = update_benchmark(cfg, inst, cfg.p);
    t.push_row(vec![
        format!("dynamic updates ({} / rank)", COPY_ELIM_BATCH),
        ms(upd.wall),
        format_bytes(upd.bytes),
        upd.msgs.to_string(),
        upd.payload_clones.to_string(),
        "-".to_string(),
    ]);
    let sm = summa_benchmark(cfg, inst, cfg.p);
    t.push_row(vec![
        "static SUMMA (full operands)".to_string(),
        ms(sm.wall),
        format_bytes(sm.bytes),
        sm.msgs.to_string(),
        sm.payload_clones.to_string(),
        "-".to_string(),
    ]);

    // Before/after arm 1: clone-based vs shared broadcast of a full block.
    let ((cw, cb, cc, ccb), (sw, sb, sc, scb)) = bcast_arms(cfg, inst, cfg.p);
    assert_eq!(
        cb, sb,
        "zero-copy transport must leave wire volume byte-identical"
    );
    assert_eq!(sc, 0, "shared broadcast must not deep-clone");
    t.push_row(vec![
        "block bcast, clone-based (before)".to_string(),
        ms(cw),
        format_bytes(cb),
        "-".to_string(),
        cc.to_string(),
        format_bytes(ccb),
    ]);
    t.push_row(vec![
        "block bcast, Arc-shared (after)".to_string(),
        ms(sw),
        format_bytes(sb),
        "-".to_string(),
        sc.to_string(),
        format_bytes(scb),
    ]);

    // Before/after arm 2: per-row-Vec vs flat-buffer local SpGEMM.
    let (boxed, flat) = local_mm_arms(cfg, inst);
    t.push_row(vec![
        "local SpGEMM, per-row Vec (before)".to_string(),
        ms(boxed),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    t.push_row(vec![
        format!(
            "local SpGEMM, flat buffers (after, {})",
            ratio(boxed.as_secs_f64() / flat.as_secs_f64())
        ),
        ms(flat),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    t.note("wire bytes are logical packed-message volume: invariant under zero-copy transport");
    t.note(
        "payload clones: deep copies made by clone-based collectives (0 on the Arc-shared path)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_elim_smoke() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 1;
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 6);
        // The whole dynamic-update stack must run zero-copy.
        assert_eq!(t.rows[0][4], "0");
        assert_eq!(t.rows[1][4], "0");
    }
}
