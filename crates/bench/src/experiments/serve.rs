//! Snapshot-isolated serving vs. the blocking baseline.
//!
//! The serving claim of the snapshot layer: a query stream interleaved with
//! update batches never waits for a batch to drain — queries pin the last
//! published epoch and read it immediately, at the price of a bounded stale
//! read (distance 1 while one batch is in flight). The blocking baseline
//! the pre-snapshot session was forced into serializes every query behind
//! the running batch: a query arriving mid-batch pays the remaining drain
//! time before its own service time.
//!
//! Both arms serve the *same* measured query service times (point lookups,
//! row top-k, a frozen view reading) over the same batch schedule; the
//! blocking arm adds the modeled remaining-drain wait for queries arriving
//! while a batch runs (arrivals spread uniformly over the batch window).
//! Along the way the experiment asserts the isolation contract the
//! snapshot test suite property-tests:
//!
//! * queries against the pinned epoch `e` return bit-identical answers
//!   before and during the next batch;
//! * queries after the batch (epoch `e + 1`) are bit-identical to a
//!   blocking rerun — a static SUMMA recomputation of the updated graph;
//! * retained epochs stay bounded by the outstanding pins (a laggard
//!   reader holds one old epoch for a few rounds to exercise retention).

use crate::experiments::{prepare_instances, rank_slice, Prepared};
use crate::measure::measured_collective;
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_analytics::{
    observe_query, AnalyticsSession, SessionSnapshot, TriangleCountView, TriangleReading, ViewId,
};
use dspgemm_core::dyn_general::GeneralUpdates;
use dspgemm_core::summa::summa_bloom;
use dspgemm_core::update::{apply_add, apply_mask, build_update_matrix, Dedup};
use dspgemm_core::{DistMat, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_graph::Edge;
use dspgemm_mpi::Comm;
use dspgemm_obs::Histogram;
use dspgemm_sparse::semiring::U64Plus;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use std::time::Duration;

/// Per-rank update batch size (the hypersparse regime at proxy scale).
pub const SERVE_BATCH: usize = 32;

/// Point-lookup queries per round.
const POINT_QUERIES: usize = 10;

/// Row top-k queries per round.
const TOPK_QUERIES: usize = 4;

/// How many rounds a laggard reader holds its pinned epoch.
const LAGGARD_WINDOW: u64 = 3;

/// The answers of one pass over the query set — compared bit-identically
/// across epochs and against the blocking rerun.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Answers {
    entries: Vec<Option<u64>>,
    topk: Vec<Vec<(Index, u64)>>,
    triangles: Option<u64>,
}

/// The fixed query set of one instance (identical on every rank).
struct QuerySet {
    pairs: Vec<(Index, Index)>,
    rows: Vec<Index>,
}

impl QuerySet {
    fn for_instance(inst: &Prepared) -> Self {
        let pairs: Vec<(Index, Index)> = inst.edges.iter().take(POINT_QUERIES).copied().collect();
        let rows: Vec<Index> = inst
            .edges
            .iter()
            .skip(POINT_QUERIES)
            .take(TOPK_QUERIES)
            .map(|&(u, _)| u)
            .collect();
        Self { pairs, rows }
    }

    /// Queries per pass (for the arrival model).
    fn len(&self) -> usize {
        self.pairs.len() + self.rows.len() + 1
    }

    /// Runs every query against one pinned epoch, recording each query's
    /// modeled end-to-end latency into `lat` and into the global
    /// `query.{kind}.stale{bucket}` histograms (`stale` = how many epochs
    /// behind the session the pinned snapshot is). Collective.
    fn run(
        &self,
        comm: &Comm,
        grid: &Grid,
        snap: &SessionSnapshot<U64Plus>,
        tri: ViewId,
        stale: u64,
        lat: &mut Vec<Duration>,
    ) -> Answers {
        let mut entries = Vec::with_capacity(self.pairs.len());
        for &(u, v) in &self.pairs {
            let (ans, cost) = measured_collective(comm, || snap.product_entry(grid, u, v));
            entries.push(ans);
            observe_query("product_entry", stale, cost.modeled());
            lat.push(cost.modeled());
        }
        let mut topk = Vec::with_capacity(self.rows.len());
        for &u in &self.rows {
            let (ans, cost) =
                measured_collective(comm, || snap.product_row_topk(grid, u, 8, |&v| v as f64));
            topk.push(ans);
            observe_query("product_row_topk", stale, cost.modeled());
            lat.push(cost.modeled());
        }
        let (triangles, cost) = measured_collective(comm, || {
            snap.view_as::<TriangleReading>(tri)
                .map(TriangleReading::count)
        });
        observe_query("view_reading", stale, cost.modeled());
        lat.push(cost.modeled());
        Answers {
            entries,
            topk,
            triangles,
        }
    }
}

/// One round's work: `(algebraic inserts, positions to delete)`.
type Round = (Vec<Triple<u64>>, Vec<(Index, Index)>);

/// Per-round work — alternating insert/expire, exercising Algorithm 1 and
/// Algorithm 2 under the query stream.
fn plan(edges: &[Edge], rank: usize, rounds: usize, seed: u64) -> Vec<Round> {
    let mut draws = ReplacementDraws::new(SERVE_BATCH, seed, rank);
    let mut inserted: Vec<Vec<Edge>> = Vec::new();
    let mut out = Vec::new();
    for round in 0..rounds {
        if round % 2 == 0 {
            let batch = draws.next_batch(edges);
            inserted.push(batch.clone());
            out.push((
                batch
                    .into_iter()
                    .map(|(u, v)| Triple::new(u, v, 1))
                    .collect(),
                Vec::new(),
            ));
        } else {
            out.push((Vec::new(), inserted[round / 2].clone()));
        }
    }
    out
}

/// Everything one rank measures across the rounds of one instance. The
/// latency distributions are log-bucketed [`Histogram`]s — no sample is
/// stored or sorted, and the percentiles carry the histogram's documented
/// sub-bucket error (≤ ~3.2% relative).
struct ServeRun {
    snap_lat: Histogram,
    block_lat: Histogram,
    stale: Vec<u64>,
    retained_max: usize,
    live_bytes_max: usize,
    isolation_ok: bool,
    fresh_ok: bool,
}

fn serve_instance(cfg: &Config, inst: &Prepared) -> ServeRun {
    let n = inst.n;
    let (p, threads, rounds, seed) = (cfg.p, cfg.threads, cfg.batches.max(2), cfg.seed);
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let base: Vec<Triple<u64>> = rank_slice(edges, comm.rank(), p)
            .into_iter()
            .map(|(u, v)| Triple::new(u, v, 1u64))
            .collect();
        let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, threads, base.clone());
        let tri = session.register(Box::new(TriangleCountView::new()));
        let queries = QuerySet::for_instance(inst);

        // The blocking rerun mirror: same graph, maintained statically.
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mut a_static = DistMat::from_global_triples(&grid, n, n, base, threads, &mut timer);

        let schedule = plan(edges, comm.rank(), rounds, seed);
        let mut r = ServeRun {
            snap_lat: Histogram::new(),
            block_lat: Histogram::new(),
            stale: Vec::new(),
            retained_max: 0,
            live_bytes_max: 0,
            isolation_ok: true,
            fresh_ok: true,
        };
        let mut laggard = session.pin();
        let mut scratch = Vec::new();
        // The laggard's reference answers, recorded at pin time: every
        // later read of the held pin must reproduce them bit-identically.
        let mut laggard_ref = queries.run(comm, session.grid(), &laggard, tri, 0, &mut scratch);
        scratch.clear();
        for (round, (inserts, deletes)) in schedule.into_iter().enumerate() {
            // Pin the pre-batch epoch e and record its answers.
            let pin = session.pin();
            let before = queries.run(comm, session.grid(), &pin, tri, 0, &mut scratch);
            scratch.clear();

            // Apply the batch (epoch e + 1 commits at the end).
            let (_, batch_cost) = measured_collective(comm, || {
                if deletes.is_empty() {
                    session.insert_edges(inserts.clone());
                } else {
                    let mut upd = GeneralUpdates::new();
                    upd.deletes = deletes.clone();
                    session.apply_general(upd);
                }
            });
            let drain = batch_cost.modeled();

            // The interleaved query stream: arrivals spread uniformly over
            // the batch window. Snapshot arm: served from the pinned epoch
            // immediately. Blocking arm: the same service times behind the
            // remaining drain.
            let mut service = Vec::new();
            let during = queries.run(
                comm,
                session.grid(),
                &pin,
                tri,
                session.epoch() - pin.epoch(),
                &mut service,
            );
            r.isolation_ok &= during == before;
            let q_count = queries.len();
            for (i, &svc) in service.iter().enumerate() {
                let arrival = (i as f64 + 0.5) / q_count as f64;
                r.snap_lat.record_duration(svc);
                r.block_lat.record_duration(
                    svc + Duration::from_secs_f64(drain.as_secs_f64() * (1.0 - arrival)),
                );
                // Served epoch e while e + 1 was committing.
                r.stale.push(session.epoch() - pin.epoch());
            }

            // The laggard reader: holds its pin across a window of rounds,
            // accumulating stale distance and exercising retention — its
            // multi-round-old epoch must answer exactly as at pin time.
            let lag = queries.run(
                comm,
                session.grid(),
                &laggard,
                tri,
                session.epoch() - laggard.epoch(),
                &mut scratch,
            );
            scratch.clear();
            r.isolation_ok &= lag == laggard_ref;
            r.stale.push(session.epoch() - laggard.epoch());
            if (round as u64 + 1).is_multiple_of(LAGGARD_WINDOW) {
                laggard = session.pin();
                laggard_ref = queries.run(comm, session.grid(), &laggard, tri, 0, &mut scratch);
                scratch.clear();
            }

            // Freshness: the post-batch epoch must be bit-identical to a
            // blocking rerun (static recomputation of the updated graph).
            let star = build_update_matrix::<U64Plus>(&grid, n, n, inserts, Dedup::Add, &mut timer);
            apply_add::<U64Plus>(&mut a_static, &star, threads);
            let del_tuples: Vec<Triple<u64>> =
                deletes.iter().map(|&(u, v)| Triple::new(u, v, 0)).collect();
            let del = build_update_matrix::<U64Plus>(
                &grid,
                n,
                n,
                del_tuples,
                Dedup::LastWins,
                &mut timer,
            );
            apply_mask::<U64Plus>(&mut a_static, &del, threads);
            let (c_rerun, _f, _) =
                summa_bloom::<U64Plus>(&grid, &a_static, &a_static, threads, &mut timer);
            let latest = session.pin();
            r.fresh_ok &= latest.product().gather_to_root(comm) == c_rerun.gather_to_root(comm);

            // Retention: latest + pin + laggard are the only live epochs.
            drop(pin);
            let store = session.snapshots();
            r.retained_max = r.retained_max.max(store.retained());
            let mut seen = Vec::new();
            let live_bytes: usize = store
                .live()
                .iter()
                .map(|s| s.heap_bytes_unshared(&mut seen))
                .sum();
            r.live_bytes_max = r.live_bytes_max.max(live_bytes);
        }
        r
    });
    out.results.into_iter().next().expect("rank 0 result")
}

/// Interleaved query/update serving: snapshot-isolated vs. blocking query
/// latency (p50/p99), stale-read distance, and epoch retention.
pub fn run(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Serve: snapshot-isolated queries vs. blocking baseline (per query, modeled)",
        &[
            "instance",
            "rounds",
            "q/round",
            "snap p50",
            "snap p99",
            "block p50",
            "block p99",
            "p99 speedup",
            "stale mean",
            "stale max",
            "retained max",
            "live KiB max",
        ],
    );
    let instances = prepare_instances(cfg);
    for inst in &instances {
        let r = serve_instance(cfg, inst);
        assert!(
            r.isolation_ok,
            "snapshot isolation violated: pinned answers changed under a batch"
        );
        assert!(
            r.fresh_ok,
            "freshness violated: post-batch epoch differs from the blocking rerun"
        );
        let stale_mean = r.stale.iter().sum::<u64>() as f64 / r.stale.len().max(1) as f64;
        let p99 = r.block_lat.quantile_duration(0.99).as_secs_f64()
            / r.snap_lat.quantile_duration(0.99).as_secs_f64().max(1e-9);
        table.push_row(vec![
            inst.name.into(),
            cfg.batches.max(2).to_string(),
            (POINT_QUERIES + TOPK_QUERIES + 1).to_string(),
            ms(r.snap_lat.quantile_duration(0.5)),
            ms(r.snap_lat.quantile_duration(0.99)),
            ms(r.block_lat.quantile_duration(0.5)),
            ms(r.block_lat.quantile_duration(0.99)),
            ratio(p99),
            format!("{stale_mean:.2}"),
            r.stale.iter().max().copied().unwrap_or(0).to_string(),
            r.retained_max.to_string(),
            format!("{:.1}", r.live_bytes_max as f64 / 1024.0),
        ]);
    }
    table.note(format!(
        "p = {}, T = {}, |batch|/rank = {SERVE_BATCH}, alternating insert/expire rounds; \
         queries = {POINT_QUERIES} point lookups + {TOPK_QUERIES} row top-8 + 1 frozen view \
         reading per pass, arrivals uniform over the batch window",
        cfg.p, cfg.threads,
    ));
    table.note(
        "snapshot arm serves the pinned epoch immediately (stale distance 1 while a batch \
         commits); blocking arm pays the remaining batch drain first; a laggard reader \
         re-pins every 3 rounds (stale distance up to 3, retention bounded by pins)",
    );
    table.note(
        "asserted every round: pinned answers bit-identical under the running batch, and \
         the post-batch epoch bit-identical to a static SUMMA rerun of the updated graph",
    );
    table.note(
        "percentiles from the shared log-bucketed histogram (dspgemm-obs, 32 sub-buckets \
         per octave): ≤ ~3.2% relative bucket error vs. exact sorted samples",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke configuration must pass both in-run assertions (isolation
    /// + freshness) and keep retention bounded by the outstanding pins.
    #[test]
    fn serve_smoke_asserts_isolation_and_retention() {
        let cfg = Config::smoke();
        let inst = &prepare_instances(&cfg)[0];
        let r = serve_instance(&cfg, inst);
        assert!(r.isolation_ok);
        assert!(r.fresh_ok);
        // Live epochs: latest + round pin + laggard pin at most.
        assert!(r.retained_max <= 3, "retained {} epochs", r.retained_max);
        // Every during-batch query saw exactly the one-batch stale distance;
        // the laggard saw at most its window.
        assert!(r.stale.iter().all(|&d| d <= LAGGARD_WINDOW));
        assert!(r.snap_lat.count() > 0);
        assert_eq!(r.snap_lat.count(), r.block_lat.count());
    }
}
