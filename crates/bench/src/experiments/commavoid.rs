//! Communication-avoiding round structure ablation: virtual transposition
//! (Section V-C) and the depth-1 inter-batch redistribution lookahead.
//!
//! Three arms run the identical update stream through [`DynSpGemm`]:
//!
//! 1. **physical** — [`TransposeMode::Physical`]: every update SpGEMM
//!    starts with the Algorithm-1 transpose exchange (paired p2p sends of
//!    whole star blocks).
//! 2. **virtual** — [`TransposeMode::Virtual`] (the default): the
//!    redistribution builds each star in both layouts, so round roots
//!    transpose their *own* block locally and the p2p exchange disappears
//!    from the wire entirely. `C` must stay bit-identical.
//! 3. **lookahead** — virtual mode plus [`DynSpGemm::submit_algebraic`]:
//!    batch `k + 1`'s redistribution `IALLTOALLV`s are in flight under
//!    batch `k`'s SpGEMM rounds. Wire volume must stay byte-identical to
//!    the sequential virtual arm — the schedule moves redistribution time
//!    from exposed to overlapped, never bytes or values.
//!
//! The hard invariants (bit-identical `C`, zero transpose-exchange bytes,
//! byte-identical lookahead wire) are asserted here; the timing split is
//! reported (never asserted — exposed/overlapped attribution depends on OS
//! scheduling) and lands in `BENCH_pr7.json`.

use crate::experiments::{edges_to_triples, prepare_instances, rank_slice, Prepared};
use crate::measure::timed_collective;
use crate::report::{ms, ratio, Table};
use crate::Config;
use dspgemm_core::dyn_algebraic::TransposeMode;
use dspgemm_core::redistribute::phase::REDIST_COMM;
use dspgemm_core::{DistMat, DynSpGemm, Grid};
use dspgemm_graph::stream::ReplacementDraws;
use dspgemm_mpi::CommCategory;
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::Triple;
use dspgemm_util::stats::PhaseTimer;
use std::time::Duration;

/// Outcome of one schedule arm (one full batch loop).
#[derive(Debug, Clone)]
pub struct CommAvoidArm {
    /// Wall time of the whole measured batch loop.
    pub wall: Duration,
    /// Total metered wire bytes of the measured region.
    pub bytes: u64,
    /// Total messages of the measured region (barrier control excluded).
    pub msgs: u64,
    /// Bytes in the p2p category — the transpose exchange is its only
    /// traffic on this path, so virtual transposition must drive it to 0.
    pub p2p_bytes: u64,
    /// Redistribution communication the ranks actually waited for
    /// (engine-timer `redist. comm.` exposed, summed across ranks).
    pub redist_exposed: Duration,
    /// Redistribution communication hidden under compute (summed).
    pub redist_overlapped: Duration,
    /// Deepest lookahead observed (`DynSpGemm::pending_depth` max).
    pub max_depth: usize,
    /// Root gather of the final `C` (identity check across arms).
    pub result: Vec<Triple<f64>>,
}

impl CommAvoidArm {
    /// Fraction of redistribution communication hidden under compute.
    pub fn redist_overlap_ratio(&self) -> f64 {
        let total = (self.redist_exposed + self.redist_overlapped).as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.redist_overlapped.as_secs_f64() / total
        }
    }
}

/// Runs one arm: the full update-batch loop through a [`DynSpGemm`]
/// session in the given transpose mode, sequentially (`submit` + `flush`
/// per batch) or with the depth-1 lookahead (`submit` back-to-back, one
/// final `flush`). Both drive the same `submit_algebraic` code path so the
/// engine-timer redistribution accounting is symmetric across arms.
pub fn update_arm(
    cfg: &Config,
    inst: &Prepared,
    p: usize,
    mode: TransposeMode,
    lookahead: bool,
) -> CommAvoidArm {
    let n = inst.n;
    let (threads, batches, seed) = (cfg.threads, cfg.batches.max(1), cfg.seed);
    let batch_size = cfg.batch_size;
    let edges = &inst.edges;
    let out = dspgemm_mpi::run(p, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = edges_to_triples(&rank_slice(edges, comm.rank(), p));
        let a = DistMat::from_global_triples(&grid, n, n, mine.clone(), threads, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, mine, threads, &mut timer);
        let mut eng = DynSpGemm::<F64Plus>::new(&grid, a, b, threads, false);
        eng.transpose_mode = mode;
        // Draw every batch up front: the stream is deterministic per rank,
        // so all arms see identical updates and the draw cost stays outside
        // the measured region.
        let mut a_draws = ReplacementDraws::new(batch_size, seed, comm.rank());
        let mut b_draws = ReplacementDraws::new(batch_size, seed ^ 0x9e37, comm.rank());
        type Batch = (Vec<Triple<f64>>, Vec<Triple<f64>>);
        let to_triples = |pairs: Vec<(u32, u32)>| -> Vec<Triple<f64>> {
            pairs
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1.0))
                .collect()
        };
        let stream: Vec<Batch> = (0..batches)
            .map(|_| {
                (
                    to_triples(a_draws.next_batch(edges)),
                    to_triples(b_draws.next_batch(edges)),
                )
            })
            .collect();
        let base_exposed = eng.timer.comm_exposed(REDIST_COMM);
        let base_overlapped = eng.timer.comm_overlapped(REDIST_COMM);
        comm.barrier();
        let before = comm.comm_stats();
        let mut max_depth = 0usize;
        let (_, wall) = timed_collective(comm, || {
            for (a_batch, b_batch) in stream {
                eng.submit_algebraic(&grid, a_batch, b_batch);
                max_depth = max_depth.max(eng.pending_depth());
                if !lookahead {
                    eng.flush(&grid);
                    eng.snapshot();
                }
            }
            if lookahead {
                eng.flush(&grid);
                eng.snapshot();
            }
        });
        let region = comm.comm_stats().delta_since(&before);
        // Fence before gathering: a fast rank's gather sends must not leak
        // into a slow rank's region snapshot.
        comm.barrier();
        let c = eng.c.gather_to_root(comm);
        let redist = (
            eng.timer.comm_exposed(REDIST_COMM) - base_exposed,
            eng.timer.comm_overlapped(REDIST_COMM) - base_overlapped,
        );
        (wall, region, c, redist, max_depth)
    });
    let (wall, region, c, _, _) = &out.results[0];
    // The engine timers are rank-local; sum the redistribution split over
    // all ranks (the region stats already cover the whole network).
    let (mut redist_exposed, mut redist_overlapped) = (Duration::ZERO, Duration::ZERO);
    let mut max_depth = 0usize;
    for (_, _, _, (e, o), d) in &out.results {
        redist_exposed += *e;
        redist_overlapped += *o;
        max_depth = max_depth.max(*d);
    }
    CommAvoidArm {
        wall: *wall,
        bytes: region.total_bytes(),
        // Zero-byte barrier control messages are excluded: dissemination
        // rounds of the fencing barriers straddle the snapshots
        // nondeterministically (cf. `measure::measured_collective`).
        msgs: region
            .total_msgs()
            .saturating_sub(region.msgs_in(CommCategory::Barrier)),
        p2p_bytes: region.bytes_in(CommCategory::P2p),
        redist_exposed,
        redist_overlapped,
        max_depth,
        result: c.clone().unwrap_or_default(),
    }
}

fn ns_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// The `repro commavoid` table.
pub fn run(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation: communication-avoiding rounds (virtual transposition + inter-batch \
             lookahead), p={}, batch={}",
            cfg.p, cfg.batch_size
        ),
        &[
            "benchmark",
            "wall",
            "wire bytes",
            "transpose exch. bytes",
            "exposed redist (ms)",
            "overlapped redist (ms)",
            "redist overlap",
        ],
    );
    let inst = &prepare_instances(cfg)[0];

    // The physical baseline runs with the tracer suppressed: an exported
    // trace of this ablation documents the *shipped* (virtual) schedule,
    // where `transpose_virtual` spans replace the exchange and no
    // `comm/send` p2p span may appear at all — the CI trace check asserts
    // exactly that. The wire meter (`comm_stats`) is unaffected.
    let was = dspgemm_obs::enabled();
    dspgemm_obs::set_enabled(false);
    let physical = update_arm(cfg, inst, cfg.p, TransposeMode::Physical, false);
    dspgemm_obs::set_enabled(was);
    let virtual_ = update_arm(cfg, inst, cfg.p, TransposeMode::Virtual, false);
    let lookahead = update_arm(cfg, inst, cfg.p, TransposeMode::Virtual, true);

    // Hard invariants of virtual transposition: same C, and the transpose
    // exchange — the only p2p traffic on this path — gone from the wire.
    assert_eq!(
        physical.result, virtual_.result,
        "virtual transposition must leave C bit-identical"
    );
    assert_eq!(
        virtual_.p2p_bytes, 0,
        "virtual transposition must eliminate the transpose exchange"
    );
    if cfg.p > 1 {
        assert!(
            physical.p2p_bytes > 0,
            "physical schedule must pay the transpose exchange at p > 1"
        );
    }
    // Hard invariants of the lookahead: same C, byte-identical wire — the
    // schedule moves redistribution time, never bytes or values.
    assert_eq!(
        virtual_.result, lookahead.result,
        "lookahead must leave C bit-identical"
    );
    assert_eq!(
        virtual_.bytes, lookahead.bytes,
        "lookahead must leave wire volume byte-identical"
    );
    assert_eq!(
        virtual_.msgs, lookahead.msgs,
        "lookahead must leave message count identical"
    );
    assert!(
        lookahead.max_depth <= 1,
        "lookahead depth must stay bounded at 1 (saw {})",
        lookahead.max_depth
    );

    for (name, arm) in [
        (
            "dynamic updates, physical transpose exchange (before)",
            &physical,
        ),
        ("dynamic updates, virtual transposition (after)", &virtual_),
        (
            "dynamic updates, virtual + inter-batch lookahead",
            &lookahead,
        ),
    ] {
        t.push_row(vec![
            name.to_string(),
            ms(arm.wall),
            dspgemm_util::stats::format_bytes(arm.bytes),
            dspgemm_util::stats::format_bytes(arm.p2p_bytes),
            ns_ms(arm.redist_exposed),
            ns_ms(arm.redist_overlapped),
            ratio(arm.redist_overlap_ratio()),
        ]);
    }

    t.note(
        "C is asserted bit-identical across all three arms; the virtual arms' transpose-exchange \
         (p2p) bytes are asserted zero",
    );
    t.note(
        "lookahead wire volume and message count are asserted byte-identical to the sequential \
         virtual arm; its pending depth is asserted <= 1",
    );
    t.note(
        "exposed = ranks blocked in redistribution waits; overlapped = in-flight redistribution \
         hidden under the previous batch's SpGEMM (reported, not asserted: the split depends on \
         OS scheduling)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commavoid_smoke() {
        let mut cfg = Config::smoke();
        cfg.instances = 1;
        cfg.batches = 2;
        // The run itself asserts bit-identical C, zero transpose-exchange
        // bytes on the virtual arms, and lookahead wire parity.
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn commavoid_at_p9() {
        let mut cfg = Config::smoke();
        cfg.p = 9;
        cfg.instances = 1;
        cfg.batches = 2;
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
    }
}
