//! One module per group of paper artifacts.
//!
//! | module | paper artifacts |
//! |---|---|
//! | [`table1`] | Table I (instance list) |
//! | [`construction`] | Fig. 2/3 (construction relative performance) |
//! | [`updates`] | Fig. 4 (insertions), Fig. 5a/5b (updates/deletions), Fig. 6/7 (weak scaling + breakdown), Fig. 8a/8b (R-MAT scaling) |
//! | [`spgemm`] | Fig. 9 (algebraic), Fig. 10 (general), Fig. 11/12 (scaling + breakdown) |
//! | [`ablations`] | §IV-B redistribution claim, §V-A aggregation claim, §V-B Bloom claim |
//! | [`copy_elim`] | zero-copy collective payloads + flat-buffer local SpGEMM (transport-cost ablation; beyond the paper) |
//! | [`overlap`] | pipelined vs. blocking round schedules: exposed-communication reduction under identical wire volume (beyond the paper) |
//! | [`commavoid`] | virtual transposition (§V-C) + inter-batch redistribution lookahead: transpose exchange eliminated from the wire, redistribution hidden under SpGEMM (beyond the paper) |
//! | [`balance`] | contiguous vs. flop-balanced vs. work-stealing local-kernel schedules: thread-level flop imbalance on skewed proxies (beyond the paper) |
//! | [`rebalance`] | metrics-driven inter-rank rebalancing: adaptive 2D block cuts + stripe migration vs. the static uniform layout on a clustered skewed stream (beyond the paper) |
//! | [`faults`] | fault injection & epoch-anchored recovery: crash + rollback/replay and delay-storm arms vs. the fault-free reference, bit-identical products (beyond the paper) |
//! | [`transport`] | transport backend parity: the dynamic batch stream on simulator threads vs. real TCP processes, bit-identical C and matching logical wire volume (beyond the paper) |
//! | [`analytics`] | maintained-view serving vs. static recomputation (the `dspgemm-analytics` layer; beyond the paper) |
//! | [`serve`] | snapshot-isolated query serving vs. blocking baseline: query p50/p99, stale-read distance, epoch retention (beyond the paper) |

pub mod ablations;
pub mod analytics;
pub mod balance;
pub mod commavoid;
pub mod construction;
pub mod copy_elim;
pub mod faults;
pub mod overlap;
pub mod rebalance;
pub mod serve;
pub mod spgemm;
pub mod table1;
pub mod transport;
pub mod updates;

use crate::Config;
use dspgemm_graph::catalog::{instances_scaled, InstanceSpec};
use dspgemm_graph::perm::Permutation;
use dspgemm_graph::Edge;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::rng::SplitMix64;

/// A generated, permuted, symmetrized workload instance.
pub struct Prepared {
    /// Instance name (Table I).
    pub name: &'static str,
    /// Vertex count (matrix dimension).
    pub n: Index,
    /// Undirected non-zero stream (both directions), indices permuted.
    pub edges: Vec<Edge>,
}

/// Generates the first `cfg.instances` catalog proxies with the paper's
/// random index permutation applied (same permutation for every system).
pub fn prepare_instances(cfg: &Config) -> Vec<Prepared> {
    instances_scaled(cfg.divisor)
        .into_iter()
        .take(cfg.instances)
        .map(|spec| prepare_one(&spec, cfg.seed))
        .collect()
}

/// Generates one prepared instance.
pub fn prepare_one(spec: &InstanceSpec, seed: u64) -> Prepared {
    let mut edges = spec.undirected_edges();
    let mut rng = SplitMix64::new(seed ^ spec.seed);
    let perm = Permutation::random(spec.n as usize, &mut rng);
    perm.apply_edges(&mut edges);
    Prepared {
        name: spec.name,
        n: spec.n,
        edges,
    }
}

/// Round-robin slice of a shared edge list for one rank (models each rank
/// generating its own share of the input).
pub fn rank_slice(edges: &[Edge], rank: usize, p: usize) -> Vec<Edge> {
    edges.iter().copied().skip(rank).step_by(p).collect()
}

/// Converts edges to unit-valued `f64` triples.
pub fn edges_to_triples(edges: &[Edge]) -> Vec<Triple<f64>> {
    edges.iter().map(|&(u, v)| Triple::new(u, v, 1.0)).collect()
}

/// Converts edges to weighted `f64` triples with deterministic weights in
/// `1.0..10.0` derived from the coordinates (so every system sees identical
/// values without sharing state).
pub fn edges_to_weighted(edges: &[Edge]) -> Vec<Triple<f64>> {
    edges
        .iter()
        .map(|&(u, v)| {
            let h = dspgemm_util::hash::mix_pair(u, v);
            Triple::new(u, v, 1.0 + (h % 9000) as f64 / 1000.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_is_deterministic_and_permuted() {
        let cfg = Config::smoke();
        let a = prepare_instances(&cfg);
        let b = prepare_instances(&cfg);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].edges, b[0].edges);
        assert!(a[0].edges.iter().all(|&(u, v)| u < a[0].n && v < a[0].n));
    }

    #[test]
    fn rank_slices_partition() {
        let edges: Vec<Edge> = (0..100u32).map(|i| (i, i)).collect();
        let mut all: Vec<Edge> = (0..4).flat_map(|r| rank_slice(&edges, r, 4)).collect();
        all.sort_unstable();
        assert_eq!(all, edges);
    }

    #[test]
    fn weights_deterministic_in_range() {
        let e = vec![(1u32, 2u32), (3, 4)];
        let w1 = edges_to_weighted(&e);
        let w2 = edges_to_weighted(&e);
        assert_eq!(w1, w2);
        assert!(w1.iter().all(|t| t.val >= 1.0 && t.val < 10.0));
    }
}
