//! Table I: the instance list (paper sizes and proxy sizes).

use crate::report::Table;
use crate::Config;
use dspgemm_graph::catalog::instances_scaled;

/// Regenerates Table I, annotated with the proxy parameters actually used.
pub fn run(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Table I: real-world instances (proxies at divisor {})",
            cfg.divisor
        ),
        &[
            "instance",
            "source",
            "type",
            "paper n",
            "paper nnz",
            "proxy n",
            "proxy nnz",
        ],
    );
    for spec in instances_scaled(cfg.divisor) {
        let nnz_proxy = spec.undirected_edges().len();
        t.push_row(vec![
            spec.name.to_string(),
            spec.source.to_string(),
            format!("{:?}", spec.class),
            format!("{} M", spec.paper_n / 1_000_000),
            format!("{} M", spec.paper_nnz / 1_000_000),
            spec.n.to_string(),
            nnz_proxy.to_string(),
        ]);
    }
    t.note("proxies are R-MAT graphs with class-matched skew; see DESIGN.md");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_twelve_rows() {
        let t = super::run(&crate::Config::smoke());
        assert_eq!(t.rows.len(), 12);
        assert!(t.render().contains("friendster"));
    }
}
