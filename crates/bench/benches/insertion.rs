//! Criterion bench of batch insertion (Fig. 4's core comparison): our
//! dynamic structure vs the CombBLAS-style rebuild, one catalog proxy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspgemm_bench::experiments::updates::{ours_mean_batch, Mode};
use dspgemm_bench::experiments::{prepare_instances, Prepared};
use dspgemm_bench::Config;

fn cfg() -> Config {
    Config {
        divisor: 16384,
        p: 4,
        threads: 1,
        batches: 3,
        instances: 1,
        seed: 7,
        batch_size: 4096,
        ..Config::default()
    }
}

fn bench_insertion(c: &mut Criterion) {
    let cfg = cfg();
    let instances = prepare_instances(&cfg);
    let inst: &Prepared = &instances[0];
    let mut group = c.benchmark_group("insertion");
    group.sample_size(10);
    for batch in [256usize, 2048] {
        group.bench_with_input(
            BenchmarkId::new("ours_dynamic", batch),
            &batch,
            |b, &batch| b.iter(|| ours_mean_batch(&cfg, inst, Mode::Insert, batch, cfg.p).0),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insertion);
criterion_main!(benches);
