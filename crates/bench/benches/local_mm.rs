//! Criterion microbenches of the local SpGEMM kernels (the compute side of
//! Fig. 9/10): plain Gustavson, Bloom-fused, pattern-only and masked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspgemm_sparse::local_mm::{spgemm, spgemm_bloom, spgemm_pattern};
use dspgemm_sparse::masked_mm::{masked_spgemm_bloom, MaskSet};
use dspgemm_sparse::semiring::F64Plus;
use dspgemm_sparse::{Csr, Dcsr, DhbMatrix, Index, Triple};
use dspgemm_util::rng::{Rng, SplitMix64};

fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<f64>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                1.0,
            )
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let n: Index = 4096;
    let nnz = 80_000;
    let a = Csr::from_triples::<F64Plus>(n, n, random_triples(1, n, nnz));
    let b = Csr::from_triples::<F64Plus>(n, n, random_triples(2, n, nnz));
    let mut group = c.benchmark_group("local_mm");
    group.sample_size(10);
    group.bench_function("gustavson_csr_csr", |bench| {
        bench.iter(|| spgemm::<F64Plus, _, _>(&a, &b, 1))
    });
    group.bench_function("gustavson_bloom", |bench| {
        bench.iter(|| spgemm_bloom::<F64Plus, _, _>(&a, &b, 0, 1))
    });
    group.bench_function("pattern_only", |bench| {
        bench.iter(|| spgemm_pattern(&a, &b, 0, 1))
    });
    // The Algorithm-1 shape: hypersparse left times dynamic right.
    let a_star = Dcsr::from_triples::<F64Plus>(n, n, random_triples(3, n, 512));
    let mut b_dyn = DhbMatrix::new(n, n);
    for t in random_triples(4, n, nnz) {
        b_dyn.set(t.row, t.col, t.val);
    }
    group.bench_function("hypersparse_times_dhb", |bench| {
        bench.iter(|| spgemm::<F64Plus, _, _>(&a_star, &b_dyn, 1))
    });
    // Masked recomputation (Algorithm 2's local kernel).
    let full = spgemm_bloom::<F64Plus, _, _>(&a, &b, 0, 1);
    let half: Vec<_> = full.result.to_triples().into_iter().step_by(2).collect();
    let mask_block = Dcsr::from_triples::<F64Plus>(
        n,
        n,
        half.iter()
            .map(|t| Triple::new(t.row, t.col, 0.0))
            .collect(),
    );
    let mask = MaskSet::from_pattern(&mask_block);
    group.bench_function("masked_bloom", |bench| {
        bench.iter(|| masked_spgemm_bloom::<F64Plus, _, _>(&a, &b, &mask, 0, 1))
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("gustavson_threads", threads),
            &threads,
            |bench, &t| bench.iter(|| spgemm::<F64Plus, _, _>(&a, &b, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
