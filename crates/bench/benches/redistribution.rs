//! Criterion bench of the §IV-B redistribution ablation: two-phase
//! counting-sort alltoall (ours) vs comparison-sort global alltoall
//! (CombBLAS-style), at p = 16 simulated ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspgemm_baselines::combblas::redistribute_global;
use dspgemm_core::redistribute::redistribute;
use dspgemm_core::Grid;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::stats::PhaseTimer;

fn bench_redistribution(c: &mut Criterion) {
    let n: Index = 1 << 16;
    let p = 16;
    let mut group = c.benchmark_group("redistribution");
    group.sample_size(10);
    for per_rank in [20_000usize, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("two_phase_counting", per_rank),
            &per_rank,
            |b, &per_rank| {
                b.iter(|| {
                    dspgemm_mpi::run(p, |comm| {
                        let grid = Grid::new(comm);
                        let mut rng = SplitMix64::derive(1, comm.rank() as u64);
                        let mine: Vec<Triple<f64>> = (0..per_rank)
                            .map(|_| {
                                Triple::new(
                                    rng.gen_range(n as u64) as Index,
                                    rng.gen_range(n as u64) as Index,
                                    1.0,
                                )
                            })
                            .collect();
                        let mut timer = PhaseTimer::new();
                        redistribute(&grid, n, n, mine, &mut timer).len()
                    })
                    .results
                    .iter()
                    .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("global_comparison", per_rank),
            &per_rank,
            |b, &per_rank| {
                b.iter(|| {
                    dspgemm_mpi::run(p, |comm| {
                        let grid = Grid::new(comm);
                        let mut rng = SplitMix64::derive(1, comm.rank() as u64);
                        let mine: Vec<Triple<f64>> = (0..per_rank)
                            .map(|_| {
                                Triple::new(
                                    rng.gen_range(n as u64) as Index,
                                    rng.gen_range(n as u64) as Index,
                                    1.0,
                                )
                            })
                            .collect();
                        let mut timer = PhaseTimer::new();
                        redistribute_global(&grid, n, n, mine, &mut timer).len()
                    })
                    .results
                    .iter()
                    .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_redistribution);
criterion_main!(benches);
