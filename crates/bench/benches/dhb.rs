//! Criterion microbenches of the DHB dynamic block: insert / lookup / delete
//! against the standard-library map alternatives (the constant factors
//! behind Figs. 4–5).

use criterion::{criterion_group, criterion_main, Criterion};
use dspgemm_sparse::{DhbMatrix, Index};
use dspgemm_util::rng::{Rng, SplitMix64};
use std::collections::{BTreeMap, HashMap};

fn coords(seed: u64, n: Index, count: usize) -> Vec<(Index, Index)> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
            )
        })
        .collect()
}

fn bench_dhb(c: &mut Criterion) {
    let n: Index = 8192;
    let ops = coords(7, n, 100_000);
    let mut group = c.benchmark_group("dhb");
    group.sample_size(10);
    group.bench_function("dhb_insert_100k", |b| {
        b.iter(|| {
            let mut m: DhbMatrix<f64> = DhbMatrix::new(n, n);
            for &(r, cc) in &ops {
                m.set(r, cc, 1.0);
            }
            m.nnz()
        })
    });
    group.bench_function("hashmap_insert_100k", |b| {
        b.iter(|| {
            let mut m: HashMap<(Index, Index), f64> = HashMap::new();
            for &(r, cc) in &ops {
                m.insert((r, cc), 1.0);
            }
            m.len()
        })
    });
    group.bench_function("btreemap_insert_100k", |b| {
        b.iter(|| {
            let mut m: BTreeMap<(Index, Index), f64> = BTreeMap::new();
            for &(r, cc) in &ops {
                m.insert((r, cc), 1.0);
            }
            m.len()
        })
    });
    // Lookup-heavy phase on a populated matrix.
    let mut m: DhbMatrix<f64> = DhbMatrix::new(n, n);
    for &(r, cc) in &ops {
        m.set(r, cc, 1.0);
    }
    let probes = coords(8, n, 100_000);
    group.bench_function("dhb_lookup_100k", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&(r, cc)| m.get(r, cc).is_some())
                .count()
        })
    });
    group.bench_function("dhb_delete_insert_churn", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            for &(r, cc) in probes.iter().take(20_000) {
                m2.remove(r, cc);
                m2.set(cc, r, 2.0);
            }
            m2.nnz()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dhb);
criterion_main!(benches);
