//! Criterion bench of dynamic SpGEMM (Fig. 9's core comparison): Algorithm 1
//! vs the static baselines, one catalog proxy, p = 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dspgemm_bench::experiments::spgemm::{ours_algebraic, ours_general};
use dspgemm_bench::experiments::{prepare_instances, Prepared};
use dspgemm_bench::Config;

fn cfg() -> Config {
    Config {
        divisor: 16384,
        p: 4,
        threads: 1,
        batches: 3,
        instances: 1,
        seed: 7,
        batch_size: 4096,
        ..Config::default()
    }
}

fn bench_spgemm(c: &mut Criterion) {
    let cfg = cfg();
    let instances = prepare_instances(&cfg);
    let inst: &Prepared = &instances[0];
    let mut group = c.benchmark_group("spgemm_dynamic");
    group.sample_size(10);
    for batch in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("algebraic", batch), &batch, |b, &batch| {
            b.iter(|| ours_algebraic(&cfg, inst, batch, cfg.p).0)
        });
        group.bench_with_input(BenchmarkId::new("general", batch), &batch, |b, &batch| {
            b.iter(|| ours_general(&cfg, inst, batch, cfg.p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
