//! CombBLAS-like baseline: 2D grid, static doubly-compressed blocks,
//! rebuild-on-update, sparse SUMMA.
//!
//! Models CombBLAS 2.0 as characterized by the paper:
//!
//! * blocks are **static** doubly-compressed structures (CombBLAS uses DCSC;
//!   we store the doubly-compressed row orientation, which has identical
//!   architectural cost) — every update batch must *rebuild* the block by
//!   merging, which is why its update cost is dominated by matrix size
//!   rather than batch size;
//! * update redistribution is a **comparison sort by destination rank
//!   followed by a single global `ALLTOALLV` over all p ranks** (Section
//!   VII-B: "which consists of a comparison sort and a global ALLTOALL in
//!   the case of CombBLAS") — versus our two-phase √p counting-sort route;
//! * SpGEMM is **sparse SUMMA**, broadcasting the *full* operand blocks
//!   (communication `O((nnz(A)+nnz(B))/√p)`).

use dspgemm_core::distmat::{BlockInfo, Elem};
use dspgemm_core::grid::{owner_block, Grid};
use dspgemm_core::pipeline::{await_into_phase, run_rounds, Schedule};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Csr, Dcsr, Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use dspgemm_util::{WireDecode, WireSize};
use std::sync::Arc;

/// Phase names for baseline breakdowns.
pub mod phase {
    /// Comparison sort by destination rank.
    pub const SORT: &str = "cb sort";
    /// The single global alltoall.
    pub const ALLTOALL: &str = "cb alltoall";
    /// Static rebuild of the local block.
    pub const REBUILD: &str = "cb rebuild";
    /// SUMMA broadcasts.
    pub const BCAST: &str = "cb bcast";
    /// Local multiplication.
    pub const MULT: &str = "cb mult";
}

/// A CombBLAS-like distributed sparse matrix: one static doubly-compressed
/// block per rank of a square grid.
#[derive(Debug, Clone)]
pub struct CombBlasMatrix<V> {
    info: BlockInfo,
    block: Dcsr<V>,
}

/// CombBLAS-style redistribution: direct-to-owner routing with a
/// **comparison sort** over destination world ranks and a **single global
/// alltoall** over all `p` ranks.
pub fn redistribute_global<V>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    mut tuples: Vec<Triple<V>>,
    timer: &mut PhaseTimer,
) -> Vec<Triple<V>>
where
    V: Copy + Send + Sync + WireSize + WireDecode + 'static,
{
    let q = grid.q();
    let p = grid.p();
    let dest = |t: &Triple<V>| -> usize {
        let (bi, _) = owner_block(nrows, q, t.row);
        let (bj, _) = owner_block(ncols, q, t.col);
        bi * q + bj
    };
    timer.time(phase::SORT, || {
        // Deliberately a comparison sort — the architectural choice the
        // paper contrasts with its counting sort.
        tuples.sort_by_key(dest);
    });
    let received = timer.time(phase::ALLTOALL, || {
        let mut chunks: Vec<Vec<Triple<V>>> = (0..p).map(|_| Vec::new()).collect();
        for t in tuples {
            chunks[dest(&t)].push(t);
        }
        grid.world().alltoallv(chunks)
    });
    received.into_iter().flatten().collect()
}

impl<V: Elem> CombBlasMatrix<V> {
    /// An empty matrix.
    pub fn empty(grid: &Grid, nrows: Index, ncols: Index) -> Self {
        let info = BlockInfo::for_rank(grid, nrows, ncols);
        Self {
            block: Dcsr::empty(info.local_rows(), info.local_cols()),
            info,
        }
    }

    /// Constructs from rank-local, globally-indexed tuples (duplicates are
    /// combined with the semiring addition, as `SpParMat` assembly does).
    pub fn construct<S: Semiring<Elem = V>>(
        grid: &Grid,
        nrows: Index,
        ncols: Index,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) -> Self {
        let mine = redistribute_global(grid, nrows, ncols, tuples, timer);
        let mut m = Self::empty(grid, nrows, ncols);
        timer.time(phase::REBUILD, || {
            let local = m.to_local(mine);
            m.block = Dcsr::from_triples::<S>(m.info.local_rows(), m.info.local_cols(), local);
        });
        m
    }

    fn to_local(&self, global: Vec<Triple<V>>) -> Vec<Triple<V>> {
        global
            .into_iter()
            .map(|t| {
                let (lr, lc) = self.info.to_local(t.row, t.col);
                Triple::new(lr, lc, t.val)
            })
            .collect()
    }

    /// Block placement info.
    pub fn info(&self) -> &BlockInfo {
        &self.info
    }

    /// The local block.
    pub fn block(&self) -> &Dcsr<V> {
        &self.block
    }

    /// Local non-zero count.
    pub fn local_nnz(&self) -> usize {
        self.block.nnz()
    }

    /// Global non-zero count (collective).
    pub fn global_nnz(&self, grid: &Grid) -> u64 {
        grid.world()
            .allreduce(self.block.nnz() as u64, |a, b| a + b)
    }

    /// Inserts a batch: redistributes the tuples, then **rebuilds** the
    /// static block by merging — the cost the paper's Fig. 4 measures.
    /// Duplicate positions combine with the semiring addition.
    pub fn insert_batch<S: Semiring<Elem = V>>(
        &mut self,
        grid: &Grid,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) {
        let mine = redistribute_global(grid, self.info.nrows, self.info.ncols, tuples, timer);
        timer.time(phase::REBUILD, || {
            let local = self.to_local(mine);
            let update =
                Dcsr::from_triples::<S>(self.info.local_rows(), self.info.local_cols(), local);
            self.block = Dcsr::merge_add::<S>(&self.block, &update);
        });
    }

    /// Value updates: redistribute, then rebuild with replacement semantics
    /// (`MERGE`): coinciding entries take the update's value.
    pub fn update_batch<S: Semiring<Elem = V>>(
        &mut self,
        grid: &Grid,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) {
        let mine = redistribute_global(grid, self.info.nrows, self.info.ncols, tuples, timer);
        timer.time(phase::REBUILD, || {
            let mut local = self.to_local(mine);
            dspgemm_sparse::triple::sort_row_major(&mut local);
            dspgemm_sparse::triple::dedup_last_wins(&mut local);
            let update =
                Dcsr::from_sorted_triples(self.info.local_rows(), self.info.local_cols(), &local);
            // Merge preferring the update's value.
            self.block = Dcsr::merge_with(&update, &self.block, |upd, _old| upd);
        });
    }

    /// Deletions: redistribute the positions, then rebuild without them.
    pub fn delete_batch(&mut self, grid: &Grid, positions: Vec<Triple<V>>, timer: &mut PhaseTimer) {
        let mine = redistribute_global(grid, self.info.nrows, self.info.ncols, positions, timer);
        timer.time(phase::REBUILD, || {
            let mut kill: Vec<(Index, Index)> = mine
                .into_iter()
                .map(|t| self.info.to_local(t.row, t.col))
                .collect();
            kill.sort_unstable();
            kill.dedup();
            let keep: Vec<Triple<V>> = self
                .block
                .to_triples()
                .into_iter()
                .filter(|t| kill.binary_search(&(t.row, t.col)).is_err())
                .collect();
            self.block =
                Dcsr::from_sorted_triples(self.info.local_rows(), self.info.local_cols(), &keep);
        });
    }

    /// Element-wise `self += other` on aligned local blocks (no
    /// communication; used to fold a product increment into a maintained
    /// result, as the Fig. 9 competitor protocol requires).
    pub fn merge_add_local<S: Semiring<Elem = V>>(&mut self, other: &CombBlasMatrix<V>) {
        assert_eq!(self.info, other.info, "distribution mismatch");
        self.block = Dcsr::merge_add::<S>(&self.block, &other.block);
    }

    /// All entries as globally-indexed triples.
    pub fn to_global_triples(&self) -> Vec<Triple<V>> {
        self.block
            .to_triples()
            .into_iter()
            .map(|t| {
                let (r, c) = self.info.to_global(t.row, t.col);
                Triple::new(r, c, t.val)
            })
            .collect()
    }

    /// Gathers to world rank 0 (testing; collective).
    pub fn gather_to_root(&self, grid: &Grid) -> Option<Vec<Triple<V>>> {
        grid.world()
            .gather(0, self.to_global_triples())
            .map(|parts| {
                let mut all: Vec<Triple<V>> = parts.into_iter().flatten().collect();
                dspgemm_sparse::triple::sort_row_major(&mut all);
                all
            })
    }
}

/// CombBLAS-style sparse SUMMA: `C = A · B` broadcasting the **full**
/// operand blocks every round. Returns the product in CombBLAS storage plus
/// local flops.
///
/// Runs on the same pipelined round scheduler as the dspgemm SUMMA (round
/// `k + 1`'s panel broadcasts in flight during round `k`'s multiply):
/// CombBLAS 2.0 overlaps its broadcasts the same way, and giving only one
/// system the overlap would bias head-to-head wall-clock comparisons — the
/// architectural contrast the baseline models is its *static storage and
/// full-operand volume*, not a worse transport schedule.
pub fn spgemm<S: Semiring>(
    grid: &Grid,
    a: &CombBlasMatrix<S::Elem>,
    b: &CombBlasMatrix<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (CombBlasMatrix<S::Elem>, u64) {
    assert_eq!(a.info.ncols, b.info.nrows, "dimension mismatch");
    let q = grid.q();
    let (i, j) = grid.coords();
    // Broadcasts go through the zero-copy shared collectives, like the
    // dspgemm arms: the per-receiver deep clone is an artifact of the
    // in-process simulator, not part of CombBLAS's modeled cost. Wire
    // metering is identical either way. One snapshot per call at the root
    // (mirroring dspgemm's per-call CSR snapshot), then `Arc`s move.
    let a_local = Arc::new(a.block.clone());
    let b_local = Arc::new(b.block.clone());
    let mut acc: Dcsr<S::Elem> = Dcsr::empty(a.info.local_rows(), b.info.local_cols());
    let mut flops = 0u64;
    run_rounds(
        &mut (timer, &mut acc, &mut flops),
        q,
        Schedule::Overlap,
        |_ctx, k| {
            let ra = grid.row_comm().ibcast_shared(
                k,
                if j == k {
                    Some(Arc::clone(&a_local))
                } else {
                    None
                },
            );
            let rb = grid.col_comm().ibcast_shared(
                k,
                if i == k {
                    Some(Arc::clone(&b_local))
                } else {
                    None
                },
            );
            (ra, rb)
        },
        |ctx, _k, (ra, rb)| {
            let a_blk = await_into_phase(ra, ctx.0, phase::BCAST);
            let b_blk = await_into_phase(rb, ctx.0, phase::BCAST);
            (a_blk, b_blk)
        },
        |ctx, _k, (a_blk, b_blk)| {
            let (timer, acc, flops) = ctx;
            // CombBLAS broadcasts its compressed blocks; the local kernel
            // indexes rows of the right operand, so expand the received
            // right block to CSR.
            let partial = timer.time(phase::MULT, || {
                let b_csr: Csr<S::Elem> =
                    Csr::from_sorted_triples(b_blk.nrows(), b_blk.ncols(), &b_blk.to_triples());
                dspgemm_sparse::local_mm::spgemm::<S, _, _>(&*a_blk, &b_csr, threads)
            });
            **flops += partial.flops;
            timer.time(phase::REBUILD, || {
                **acc = Dcsr::merge_add::<S>(acc, &partial.result);
            });
        },
    );
    let info = BlockInfo::for_rank(grid, a.info.nrows, b.info.ncols);
    (CombBlasMatrix { info, block: acc }, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_core::distmat::DistMat;
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    #[test]
    fn construction_matches_ours() {
        let n: Index = 30;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mine = random_triples(1 + comm.rank() as u64, n, 100);
            let cb = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, mine.clone(), &mut timer);
            // Our dynamic matrix gets the same tuples with add-combine via
            // an update matrix.
            let mut ours = DistMat::empty(&grid, n, n);
            let upd = dspgemm_core::update::build_update_matrix::<U64Plus>(
                &grid,
                n,
                n,
                mine,
                dspgemm_core::update::Dedup::Add,
                &mut timer,
            );
            dspgemm_core::update::apply_add::<U64Plus>(&mut ours, &upd, 1);
            (cb.gather_to_root(&grid), ours.gather_to_root(comm))
        });
        let (cb, ours) = &out.results[0];
        assert_eq!(cb.as_ref().unwrap(), ours.as_ref().unwrap());
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let n: Index = 20;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let initial = if comm.rank() == 0 {
                random_triples(2, n, 60)
            } else {
                vec![]
            };
            let mut cb =
                CombBlasMatrix::construct::<U64Plus>(&grid, n, n, initial.clone(), &mut timer);
            let nnz0 = cb.global_nnz(&grid);
            // Insert a fresh diagonal (coords disjoint from random draws are
            // not guaranteed; use add semantics so totals are predictable).
            let ins: Vec<Triple<u64>> = if comm.rank() == 0 {
                (0..n).map(|i| Triple::new(i, i, 1)).collect()
            } else {
                vec![]
            };
            cb.insert_batch::<U64Plus>(&grid, ins, &mut timer);
            let nnz1 = cb.global_nnz(&grid);
            assert!(nnz1 >= nnz0 && nnz1 <= nnz0 + n as u64);
            // Update the diagonal to 99.
            let upd: Vec<Triple<u64>> = if comm.rank() == 0 {
                (0..n).map(|i| Triple::new(i, i, 99)).collect()
            } else {
                vec![]
            };
            cb.update_batch::<U64Plus>(&grid, upd, &mut timer);
            // Delete the diagonal.
            let del: Vec<Triple<u64>> = if comm.rank() == 0 {
                (0..n).map(|i| Triple::new(i, i, 0)).collect()
            } else {
                vec![]
            };
            cb.delete_batch(&grid, del, &mut timer);
            let gathered = cb.gather_to_root(&grid);
            (nnz1, gathered)
        });
        let gathered = out.results[0].1.as_ref().unwrap();
        assert!(gathered.iter().all(|t| t.row != t.col), "diagonal deleted");
    }

    #[test]
    fn spgemm_matches_dense() {
        let n: Index = 24;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples(s, n, 90)
                } else {
                    vec![]
                }
            };
            let a = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, feed(5), &mut timer);
            let b = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, feed(6), &mut timer);
            let (c, _) = spgemm::<U64Plus>(&grid, &a, &b, 2, &mut timer);
            (
                a.gather_to_root(&grid),
                b.gather_to_root(&grid),
                c.gather_to_root(&grid),
            )
        });
        let (a, b, c) = &out.results[0];
        let da = Dense::from_triples::<U64Plus>(24, 24, a.as_ref().unwrap());
        let db = Dense::from_triples::<U64Plus>(24, 24, b.as_ref().unwrap());
        let dc = Dense::from_triples::<U64Plus>(24, 24, c.as_ref().unwrap());
        assert_eq!(dc.diff(&da.matmul::<U64Plus>(&db)), vec![]);
    }

    #[test]
    fn global_alltoall_touches_all_ranks() {
        // The architectural difference vs our two-phase route: one alltoall
        // over all p ranks.
        let out = run(9, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mine = random_triples(3 + comm.rank() as u64, 30, 50);
            redistribute_global(&grid, 30, 30, mine, &mut timer).len()
        });
        // 9 ranks all-to-all: up to 72 cross messages in one round.
        assert_eq!(
            out.stats.msgs_in(dspgemm_mpi::CommCategory::Alltoall),
            (9 * 8) as u64
        );
    }
}
