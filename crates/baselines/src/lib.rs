//! # dspgemm-baselines — architectural emulations of the paper's competitors
//!
//! The paper compares against CombBLAS 2.0, CTF 1.35 and PETSc 3.17. Those
//! C/C++ frameworks cannot be linked here, so this crate re-implements the
//! *architectural decisions* the paper attributes to each — the decisions
//! that explain the measured gaps — on top of the same simulated MPI runtime
//! and the same local kernels, so that every difference in a benchmark is a
//! difference in algorithm/data-structure design, not in implementation
//! polish:
//!
//! | system | storage | update path | redistribution | SpGEMM |
//! |---|---|---|---|---|
//! | [`combblas`] | static doubly-compressed blocks on a 2D grid | full rebuild per batch | comparison sort + one global alltoall | sparse SUMMA (full operands broadcast) |
//! | [`ctf`] | cyclic element layout | full re-shuffle of the tensor per write epoch | comparison sort + global alltoall | redistribute operands to blocked layout, then SUMMA |
//! | [`petsc`] | 1D row-block CSR | stash + assembly (rebuild) | single alltoall to row owners | 1D row algorithm fetching remote B rows; `(+,·)` only, no deletions |
//!
//! See `DESIGN.md` for the full substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combblas;
pub mod ctf;
pub mod petsc;
