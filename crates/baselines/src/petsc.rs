//! PETSc-like baseline: 1D row-block CSR with stash/assembly updates.
//!
//! Models PETSc's `MatMPIAIJ` as characterized by the paper:
//!
//! * **1D row-block distribution** — each rank owns a contiguous band of
//!   rows in CSR (no 2D grid);
//! * updates go through a **stash + assembly** cycle (`MatSetValues` +
//!   `MatAssemblyBegin/End`): tuples are routed to their row owner with a
//!   single alltoall, comparison-sorted, and the CSR is **rebuilt**;
//! * **no efficient deletions** (the paper excludes PETSc from the deletion
//!   experiment) — no `delete` method exists here either;
//! * SpGEMM with the 1D algorithm: each rank fetches the remote rows of `B`
//!   that its `A` columns reference (request/response alltoalls), then
//!   multiplies locally. Real PETSc supports only the numeric `(+,·)`
//!   semiring; the emulation is generic for testing convenience but the
//!   benchmarks use `(+,·)` for it, as the paper does.

use dspgemm_mpi::Comm;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Csr, Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use dspgemm_util::{WireDecode, WireSize};
use std::ops::Range;

/// Phase names for PETSc breakdowns.
pub mod phase {
    /// Stash exchange (alltoall to row owners).
    pub const STASH: &str = "petsc stash";
    /// Comparison sort + CSR rebuild.
    pub const ASSEMBLY: &str = "petsc assembly";
    /// Remote-row fetch during MatMatMult.
    pub const FETCH: &str = "petsc fetch";
    /// Local multiplication.
    pub const MULT: &str = "petsc mult";
    /// Local assembly of fetched rows / results.
    pub const ASSEMBLY_LOCAL: &str = "petsc local assembly";
}

/// A PETSc-like distributed matrix: 1D row-band CSR.
#[derive(Debug, Clone)]
pub struct PetscMatrix<V> {
    /// Global shape.
    pub nrows: Index,
    /// Global shape.
    pub ncols: Index,
    /// Rows owned by this rank.
    pub row_range: Range<Index>,
    block: Csr<V>,
}

/// The 1D row decomposition (same near-equal contiguous split as the grid).
fn row_band(nrows: Index, p: usize, rank: usize) -> Range<Index> {
    dspgemm_core::grid::block_range(nrows, p, rank)
}

fn row_owner(nrows: Index, p: usize, r: Index) -> usize {
    dspgemm_core::grid::owner_block(nrows, p, r).0
}

impl<V> PetscMatrix<V>
where
    V: Copy + Send + Sync + PartialEq + std::fmt::Debug + WireSize + WireDecode + 'static,
{
    /// An empty matrix.
    pub fn empty(comm: &Comm, nrows: Index, ncols: Index) -> Self {
        let row_range = row_band(nrows, comm.size(), comm.rank());
        Self {
            nrows,
            ncols,
            block: Csr::empty(row_range.end - row_range.start, ncols),
            row_range,
        }
    }

    /// Constructs from rank-local tuples via stash + assembly; duplicates
    /// combine with the semiring addition (`ADD_VALUES`).
    pub fn construct<S: Semiring<Elem = V>>(
        comm: &Comm,
        nrows: Index,
        ncols: Index,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) -> Self {
        let mut m = Self::empty(comm, nrows, ncols);
        m.set_values_add::<S>(comm, tuples, timer);
        m
    }

    fn stash_exchange(
        &self,
        comm: &Comm,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) -> Vec<Triple<V>> {
        let p = comm.size();
        let nrows = self.nrows;
        let received = timer.time(phase::STASH, || {
            let mut chunks: Vec<Vec<Triple<V>>> = (0..p).map(|_| Vec::new()).collect();
            for t in tuples {
                chunks[row_owner(nrows, p, t.row)].push(t);
            }
            comm.alltoallv(chunks)
        });
        received.into_iter().flatten().collect()
    }

    /// `MatSetValues(ADD_VALUES)` + assembly: routes tuples to row owners
    /// and **rebuilds** the CSR band with add-combine.
    pub fn set_values_add<S: Semiring<Elem = V>>(
        &mut self,
        comm: &Comm,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) {
        let mine = self.stash_exchange(comm, tuples, timer);
        timer.time(phase::ASSEMBLY, || {
            let mut local: Vec<Triple<V>> = self.block.to_triples();
            local.extend(
                mine.into_iter()
                    .map(|t| Triple::new(t.row - self.row_range.start, t.col, t.val)),
            );
            // PETSc assembly comparison-sorts the stash.
            local.sort_by_key(Triple::key);
            dspgemm_sparse::triple::dedup_add::<S>(&mut local);
            self.block = Csr::from_sorted_triples(
                self.row_range.end - self.row_range.start,
                self.ncols,
                &local,
            );
        });
    }

    /// `MatSetValues(INSERT_VALUES)` + assembly: replacement semantics.
    pub fn set_values_insert(
        &mut self,
        comm: &Comm,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) {
        let mine = self.stash_exchange(comm, tuples, timer);
        timer.time(phase::ASSEMBLY, || {
            let mut incoming: Vec<Triple<V>> = mine
                .into_iter()
                .map(|t| Triple::new(t.row - self.row_range.start, t.col, t.val))
                .collect();
            incoming.sort_by_key(Triple::key);
            dspgemm_sparse::triple::dedup_last_wins(&mut incoming);
            let mut local = self.block.to_triples();
            // Replace coinciding entries, keep the rest.
            let keys: std::collections::BTreeSet<u64> = incoming.iter().map(Triple::key).collect();
            local.retain(|t| !keys.contains(&t.key()));
            local.extend(incoming);
            local.sort_by_key(Triple::key);
            self.block = Csr::from_sorted_triples(
                self.row_range.end - self.row_range.start,
                self.ncols,
                &local,
            );
        });
    }

    /// Element-wise `self += other` on aligned local bands (no
    /// communication).
    pub fn merge_add_local<S: Semiring<Elem = V>>(&mut self, other: &PetscMatrix<V>) {
        assert_eq!(self.row_range, other.row_range, "distribution mismatch");
        self.block = self.block.add::<S>(&other.block);
    }

    /// Local nnz.
    pub fn local_nnz(&self) -> usize {
        self.block.nnz()
    }

    /// Global nnz (collective).
    pub fn global_nnz(&self, comm: &Comm) -> u64 {
        comm.allreduce(self.block.nnz() as u64, |a, b| a + b)
    }

    /// Globally-indexed triples of this rank's band.
    pub fn to_global_triples(&self) -> Vec<Triple<V>> {
        self.block
            .to_triples()
            .into_iter()
            .map(|t| Triple::new(t.row + self.row_range.start, t.col, t.val))
            .collect()
    }

    /// Gathers to rank 0 (testing; collective).
    pub fn gather_to_root(&self, comm: &Comm) -> Option<Vec<Triple<V>>> {
        comm.gather(0, self.to_global_triples()).map(|parts| {
            let mut all: Vec<Triple<V>> = parts.into_iter().flatten().collect();
            dspgemm_sparse::triple::sort_row_major(&mut all);
            all
        })
    }
}

/// PETSc-like 1D SpGEMM: every rank determines which remote rows of `B` its
/// `A` columns touch, fetches them (request + response alltoalls), and
/// multiplies locally. Communication is `O(nnz(B-rows-needed))` per rank —
/// for dense column coverage this approaches replicating `B`, the 1D
/// algorithm's known weakness on skewed graphs.
pub fn spgemm<S: Semiring>(
    comm: &Comm,
    a: &PetscMatrix<S::Elem>,
    b: &PetscMatrix<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (PetscMatrix<S::Elem>, u64) {
    assert_eq!(a.ncols, b.nrows, "dimension mismatch");
    let p = comm.size();
    // Which global rows of B do I need? (= distinct columns of my A band.)
    let mut needed: Vec<Index> = Vec::new();
    {
        let nrows_local = a.row_range.end - a.row_range.start;
        for r in 0..nrows_local {
            let (cols, _) = a.block.row(r);
            needed.extend_from_slice(cols);
        }
        needed.sort_unstable();
        needed.dedup();
    }
    // Request phase: send each owner the list of rows I need from it.
    let responses = timer.time(phase::FETCH, || {
        let mut requests: Vec<Vec<Index>> = (0..p).map(|_| Vec::new()).collect();
        for &gr in &needed {
            requests[row_owner(b.nrows, p, gr)].push(gr);
        }
        let incoming = comm.alltoallv(requests);
        // Response phase: ship the requested rows as triples.
        let mut replies: Vec<Vec<Triple<S::Elem>>> = (0..p).map(|_| Vec::new()).collect();
        for (src, rows) in incoming.iter().enumerate() {
            for &gr in rows {
                let lr = gr - b.row_range.start;
                let (cols, vals) = b.block.row(lr);
                for (&c, &v) in cols.iter().zip(vals) {
                    replies[src].push(Triple::new(gr, c, v));
                }
            }
        }
        comm.alltoallv(replies)
    });
    // Build my local copy of the needed B rows.
    let b_rows: Csr<S::Elem> = timer.time(phase::ASSEMBLY_LOCAL, || {
        let mut triples: Vec<Triple<S::Elem>> = responses.into_iter().flatten().collect();
        triples.sort_by_key(Triple::key);
        Csr::from_sorted_triples(b.nrows, b.ncols, &triples)
    });
    // Local multiply: my A band times the fetched B rows.
    let partial = timer.time(phase::MULT, || {
        dspgemm_sparse::local_mm::spgemm::<S, _, _>(&a.block, &b_rows, threads)
    });
    let flops = partial.flops;
    let mut c = PetscMatrix::empty(comm, a.nrows, b.ncols);
    timer.time(phase::ASSEMBLY_LOCAL, || {
        let triples: Vec<Triple<S::Elem>> = partial.result.to_triples();
        c.block = Csr::from_sorted_triples(c.row_range.end - c.row_range.start, c.ncols, &triples);
    });
    (c, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    #[test]
    fn construction_1d_bands() {
        let out = run(4, |comm| {
            let mut timer = PhaseTimer::new();
            let mine = random_triples(1 + comm.rank() as u64, 40, 60);
            let m = PetscMatrix::construct::<U64Plus>(comm, 40, 40, mine, &mut timer);
            // Every local row is inside my band.
            m.to_global_triples()
                .iter()
                .all(|t| m.row_range.contains(&t.row))
        });
        assert!(out.results.iter().all(|&x| x));
    }

    #[test]
    fn add_then_insert_semantics() {
        let out = run(2, |comm| {
            let mut timer = PhaseTimer::new();
            let mut m = PetscMatrix::empty(comm, 10, 10);
            let mine = if comm.rank() == 0 {
                vec![Triple::new(0, 0, 5u64), Triple::new(9, 9, 1)]
            } else {
                vec![]
            };
            m.set_values_add::<U64Plus>(comm, mine, &mut timer);
            let more = if comm.rank() == 1 {
                vec![Triple::new(0, 0, 3u64)]
            } else {
                vec![]
            };
            m.set_values_add::<U64Plus>(comm, more, &mut timer);
            let replace = if comm.rank() == 0 {
                vec![Triple::new(9, 9, 100u64)]
            } else {
                vec![]
            };
            m.set_values_insert(comm, replace, &mut timer);
            m.gather_to_root(comm)
        });
        let got = out.results[0].as_ref().unwrap();
        assert_eq!(got, &vec![Triple::new(0, 0, 8u64), Triple::new(9, 9, 100)]);
    }

    #[test]
    fn spgemm_matches_dense() {
        let n: Index = 24;
        let out = run(4, move |comm| {
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples(s, n, 90)
                } else {
                    vec![]
                }
            };
            let a = PetscMatrix::construct::<U64Plus>(comm, n, n, feed(5), &mut timer);
            let b = PetscMatrix::construct::<U64Plus>(comm, n, n, feed(6), &mut timer);
            let (c, _) = spgemm::<U64Plus>(comm, &a, &b, 2, &mut timer);
            (
                a.gather_to_root(comm),
                b.gather_to_root(comm),
                c.gather_to_root(comm),
            )
        });
        let (a, b, c) = &out.results[0];
        let da = Dense::from_triples::<U64Plus>(24, 24, a.as_ref().unwrap());
        let db = Dense::from_triples::<U64Plus>(24, 24, b.as_ref().unwrap());
        let dc = Dense::from_triples::<U64Plus>(24, 24, c.as_ref().unwrap());
        assert_eq!(dc.diff(&da.matmul::<U64Plus>(&db)), vec![]);
    }

    #[test]
    fn works_on_non_square_rank_counts() {
        // 1D layout has no square-grid restriction.
        let out = run(3, |comm| {
            let mut timer = PhaseTimer::new();
            let mine = random_triples(2 + comm.rank() as u64, 30, 40);
            let m = PetscMatrix::construct::<U64Plus>(comm, 30, 30, mine, &mut timer);
            m.global_nnz(comm)
        });
        assert!(out.results[0] > 0);
        assert_eq!(out.results[0], out.results[1]);
    }
}
