//! CTF-like baseline: cyclic element layout with whole-tensor re-shuffles.
//!
//! Cyclops Tensor Framework distributes tensor elements cyclically over the
//! processor grid and, on sparse writes, **re-distributes the entire tensor**
//! into a fresh layout (its `write()` path sorts and shuffles all data).
//! That is the architectural reason the paper measures CTF "at least 55.15×
//! slower" on insertions: per batch it pays `O(nnz(A)/p)` communication and
//! a comparison sort of the whole local data, regardless of batch size.
//!
//! SpGEMM first redistributes both operands into a blocked layout suitable
//! for SUMMA (another full-operand shuffle), then runs SUMMA — modelled here
//! by converting to [`crate::combblas::CombBlasMatrix`] via the global
//! redistribution and reusing the SUMMA baseline.

use crate::combblas::{self, CombBlasMatrix};
use dspgemm_core::grid::Grid;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use dspgemm_util::{WireDecode, WireSize};

/// Phase names for CTF breakdowns.
pub mod phase {
    /// Comparison sort of the whole local tensor data.
    pub const SORT: &str = "ctf sort";
    /// Whole-tensor alltoall shuffle.
    pub const SHUFFLE: &str = "ctf shuffle";
    /// Layout conversion for SpGEMM.
    pub const RELAYOUT: &str = "ctf relayout";
}

/// A CTF-like distributed sparse matrix: elements stored cyclically.
///
/// The layout carries an *epoch*: CTF chooses a fresh mapping per write and
/// migrates all data into it, so every write epoch shifts the cyclic
/// assignment — that migration is precisely the cost the paper measures.
#[derive(Debug, Clone)]
pub struct CtfMatrix<V> {
    /// Global shape.
    pub nrows: Index,
    /// Global shape.
    pub ncols: Index,
    /// Current layout epoch (bumped by every write).
    epoch: u64,
    /// This rank's cyclically-assigned elements (globally indexed, sorted).
    elems: Vec<Triple<V>>,
}

/// Cyclic owner of a coordinate in a given layout epoch:
/// `((i + e) mod q, (j + e) mod q)` on the grid.
#[inline]
fn cyclic_owner(q: usize, epoch: u64, r: Index, c: Index) -> usize {
    let e = (epoch % q as u64) as usize;
    ((r as usize + e) % q) * q + ((c as usize + e) % q)
}

impl<V> CtfMatrix<V>
where
    V: Copy + Send + Sync + PartialEq + std::fmt::Debug + WireSize + WireDecode + 'static,
{
    /// Constructs from rank-local tuples: comparison sort + global shuffle
    /// into the cyclic layout, duplicates combined with the semiring add.
    pub fn construct<S: Semiring<Elem = V>>(
        grid: &Grid,
        nrows: Index,
        ncols: Index,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) -> Self {
        let mut m = Self {
            nrows,
            ncols,
            epoch: 0,
            elems: Vec::new(),
        };
        m.write::<S>(grid, tuples, timer);
        m
    }

    /// The CTF write path: merge new tuples with the entire existing local
    /// data, comparison-sort, and re-shuffle **everything** through a global
    /// alltoall into the (fresh) cyclic layout.
    pub fn write<S: Semiring<Elem = V>>(
        &mut self,
        grid: &Grid,
        tuples: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) {
        let q = grid.q();
        let p = grid.p();
        // A write epoch installs a fresh layout; all existing data migrates.
        self.epoch += 1;
        let epoch = self.epoch;
        let mut all = std::mem::take(&mut self.elems);
        all.extend(tuples);
        timer.time(phase::SORT, || {
            all.sort_by_key(|t| (cyclic_owner(q, epoch, t.row, t.col), t.key()));
        });
        let received = timer.time(phase::SHUFFLE, || {
            let mut chunks: Vec<Vec<Triple<V>>> = (0..p).map(|_| Vec::new()).collect();
            for t in all {
                chunks[cyclic_owner(q, epoch, t.row, t.col)].push(t);
            }
            grid.world().alltoallv(chunks)
        });
        let mut mine: Vec<Triple<V>> = received.into_iter().flatten().collect();
        timer.time(phase::SORT, || {
            dspgemm_sparse::triple::sort_row_major(&mut mine);
            dspgemm_sparse::triple::dedup_add::<S>(&mut mine);
        });
        self.elems = mine;
    }

    /// Deletion epoch: remove positions, then re-shuffle the whole tensor
    /// (CTF has no in-place erase either).
    pub fn delete<S: Semiring<Elem = V>>(
        &mut self,
        grid: &Grid,
        positions: Vec<Triple<V>>,
        timer: &mut PhaseTimer,
    ) {
        // Route the kill-list to the cyclic owners, then rebuild locally and
        // reshuffle to keep the layout invariant.
        let q = grid.q();
        let p = grid.p();
        let epoch = self.epoch;
        let received = timer.time(phase::SHUFFLE, || {
            let mut chunks: Vec<Vec<Triple<V>>> = (0..p).map(|_| Vec::new()).collect();
            for t in positions {
                chunks[cyclic_owner(q, epoch, t.row, t.col)].push(t);
            }
            grid.world().alltoallv(chunks)
        });
        let mut kill: Vec<u64> = received.into_iter().flatten().map(|t| t.key()).collect();
        timer.time(phase::SORT, || {
            kill.sort_unstable();
            kill.dedup();
        });
        timer.time(phase::RELAYOUT, || {
            self.elems.retain(|t| kill.binary_search(&t.key()).is_err());
        });
    }

    /// Local element count.
    pub fn local_nnz(&self) -> usize {
        self.elems.len()
    }

    /// Global non-zero count (collective).
    pub fn global_nnz(&self, grid: &Grid) -> u64 {
        grid.world()
            .allreduce(self.elems.len() as u64, |a, b| a + b)
    }

    /// Globally-indexed triples held by this rank.
    pub fn to_global_triples(&self) -> Vec<Triple<V>> {
        self.elems.clone()
    }

    /// Gathers to world rank 0 (testing; collective).
    pub fn gather_to_root(&self, grid: &Grid) -> Option<Vec<Triple<V>>> {
        grid.world().gather(0, self.elems.clone()).map(|parts| {
            let mut all: Vec<Triple<V>> = parts.into_iter().flatten().collect();
            dspgemm_sparse::triple::sort_row_major(&mut all);
            all
        })
    }
}

/// CTF-like SpGEMM: re-layout both operands into a blocked distribution
/// (full-operand global shuffles), then run SUMMA. Returns the product as a
/// blocked matrix plus local flops.
pub fn spgemm<S: Semiring>(
    grid: &Grid,
    a: &CtfMatrix<S::Elem>,
    b: &CtfMatrix<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (CombBlasMatrix<S::Elem>, u64)
where
    S::Elem: Send + Sync + 'static,
{
    // Re-layout: cyclic -> 2D blocked, paying a full shuffle per operand.
    let a_blocked = timer.time(phase::RELAYOUT, || {
        CombBlasMatrix::construct::<S>(
            grid,
            a.nrows,
            a.ncols,
            a.to_global_triples(),
            &mut PhaseTimer::new(),
        )
    });
    let b_blocked = timer.time(phase::RELAYOUT, || {
        CombBlasMatrix::construct::<S>(
            grid,
            b.nrows,
            b.ncols,
            b.to_global_triples(),
            &mut PhaseTimer::new(),
        )
    });
    combblas::spgemm::<S>(grid, &a_blocked, &b_blocked, threads, timer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    #[test]
    fn cyclic_layout_owns_correctly() {
        let out = run(4, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mine = random_triples(1 + comm.rank() as u64, 16, 50);
            let m = CtfMatrix::construct::<U64Plus>(&grid, 16, 16, mine, &mut timer);
            // Everything I hold is cyclically mine (in the current epoch).
            let q = grid.q();
            m.to_global_triples()
                .iter()
                .all(|t| cyclic_owner(q, m.epoch, t.row, t.col) == comm.rank())
        });
        assert!(out.results.iter().all(|&x| x));
    }

    #[test]
    fn write_shuffles_whole_tensor() {
        // Communication volume of a tiny batch is dominated by existing nnz.
        let n: Index = 64;
        let big = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let initial = if comm.rank() == 0 {
                random_triples(7, n, 4000)
            } else {
                vec![]
            };
            let mut m = CtfMatrix::construct::<U64Plus>(&grid, n, n, initial, &mut timer);
            // One tiny batch.
            let tiny = if comm.rank() == 0 {
                random_triples(8, n, 4)
            } else {
                vec![]
            };
            m.write::<U64Plus>(&grid, tiny, &mut timer);
            m.global_nnz(&grid)
        });
        // A batch of 4 tuples must still have moved ~nnz data in the write
        // epoch: total alltoall volume far exceeds the two constructions.
        let alltoall = big.stats.bytes_in(dspgemm_mpi::CommCategory::Alltoall);
        assert!(alltoall > 2 * 4000 * 16 / 2, "alltoall volume {alltoall}");
    }

    #[test]
    fn delete_removes_positions() {
        let n: Index = 20;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let initial: Vec<Triple<u64>> = if comm.rank() == 0 {
                (0..n).map(|i| Triple::new(i, i, 1)).collect()
            } else {
                vec![]
            };
            let mut m = CtfMatrix::construct::<U64Plus>(&grid, n, n, initial, &mut timer);
            let del: Vec<Triple<u64>> = if comm.rank() == 0 {
                (0..n).step_by(2).map(|i| Triple::new(i, i, 0)).collect()
            } else {
                vec![]
            };
            m.delete::<U64Plus>(&grid, del, &mut timer);
            m.global_nnz(&grid)
        });
        assert!(out.results.iter().all(|&nnz| nnz == 10));
    }

    #[test]
    fn spgemm_matches_dense() {
        let n: Index = 20;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples(s, n, 70)
                } else {
                    vec![]
                }
            };
            let a = CtfMatrix::construct::<U64Plus>(&grid, n, n, feed(11), &mut timer);
            let b = CtfMatrix::construct::<U64Plus>(&grid, n, n, feed(12), &mut timer);
            let (c, _) = spgemm::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            (
                a.gather_to_root(&grid),
                b.gather_to_root(&grid),
                c.gather_to_root(&grid),
            )
        });
        let (a, b, c) = &out.results[0];
        let da = Dense::from_triples::<U64Plus>(20, 20, a.as_ref().unwrap());
        let db = Dense::from_triples::<U64Plus>(20, 20, b.as_ref().unwrap());
        let dc = Dense::from_triples::<U64Plus>(20, 20, c.as_ref().unwrap());
        assert_eq!(dc.diff(&da.matmul::<U64Plus>(&db)), vec![]);
    }
}
