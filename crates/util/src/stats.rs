//! Timing and measurement helpers for the benchmark harness.
//!
//! The paper reports per-phase breakdowns of its algorithms (Fig. 7: redist.
//! sort / redist. comm. / memory management / local construct / local
//! addition; Fig. 12: send-recv / bcast / local mult / scatter /
//! reduce-scatter). [`PhaseTimer`] accumulates named phase durations so the
//! reproduction can print the same breakdowns.
//!
//! Since the unified observability layer landed, [`PhaseTimer`] is a thin
//! facade over `dspgemm_obs`'s metrics primitives: every phase (and every
//! overlapped-communication entry) is an ordered nanosecond counter in an
//! [`obs_metrics::CounterBank`], and `merge`/`merge_max` are the bank's
//! sum/max reductions. The Duration-based API is unchanged;
//! [`PhaseTimer::export_into`] publishes the accumulated state into a
//! [`dspgemm_obs::Registry`] so benchmark artifacts render from registry
//! snapshots.

use dspgemm_obs::metrics as obs_metrics;
use obs_metrics::CounterBank;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restarts the timer and returns the lap duration.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.start = now;
        d
    }
}

/// Accumulates wall-clock time into named phases.
///
/// Phase names are interned in first-use order so breakdowns print in a
/// stable, caller-controlled order.
///
/// Communication phases additionally distinguish *exposed* time (the rank
/// was blocked waiting — recorded with [`PhaseTimer::add`]/`time`, counted
/// in [`PhaseTimer::total`]) from *overlapped* time (communication hidden
/// under another phase's compute — recorded with
/// [`PhaseTimer::add_overlapped`], excluded from `total`). Without the
/// split, a pipelined schedule would double-count hidden communication:
/// once under the compute phase whose wall clock covers it and once under
/// the communication phase. `comm_total` (= exposed + overlapped) keeps the
/// paper's Fig. 7/12 per-phase communication breakdowns reconstructible.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    /// Exposed wall time per phase, nanoseconds, first-use order.
    phases: CounterBank,
    /// Per-phase communication time hidden under compute (never part of
    /// `total()`; a phase absent here has zero overlap). Nanoseconds.
    overlapped: CounterBank,
    /// Accumulated per-worker-thread flop counts of the local SpGEMM
    /// kernels (index = intra-rank thread id). The max/mean ratio over this
    /// vector is the thread-level load-imbalance metric of the `repro`
    /// reports.
    thread_flops: Vec<u64>,
}

/// Duration → nanosecond counter value (saturating; `u64` nanoseconds hold
/// ~585 years).
fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl PhaseTimer {
    /// Creates an empty phase timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to phase `name` (creating it if new).
    pub fn add(&mut self, name: &str, d: Duration) {
        self.phases.add(name, ns(d));
    }

    /// Times the closure and attributes the duration to `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t = Timer::start();
        let r = f();
        self.add(name, t.elapsed());
        r
    }

    /// Total time of a phase (zero if absent).
    pub fn get(&self, name: &str) -> Duration {
        Duration::from_nanos(self.phases.get(name))
    }

    /// All `(phase, duration)` entries in first-use order. Durations are
    /// *exposed* wall time only; overlapped communication lives in
    /// [`PhaseTimer::comm_total`].
    pub fn entries(&self) -> Vec<(String, Duration)> {
        self.phases
            .entries()
            .iter()
            .map(|(n, v)| (n.clone(), Duration::from_nanos(*v)))
            .collect()
    }

    /// Sum of all phase durations (exposed wall time; phases partition the
    /// wall clock, so overlapped communication is deliberately excluded —
    /// its wall time already belongs to the compute phase that hid it).
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.phases.total())
    }

    /// Adds `d` of *overlapped* communication to phase `name`: time the
    /// operation was in flight while another phase's compute ran. Not
    /// counted in [`PhaseTimer::total`].
    pub fn add_overlapped(&mut self, name: &str, d: Duration) {
        self.overlapped.add(name, ns(d));
    }

    /// All `(phase, overlapped duration)` entries in first-use order.
    pub fn overlapped_entries(&self) -> Vec<(String, Duration)> {
        self.overlapped
            .entries()
            .iter()
            .map(|(n, v)| (n.clone(), Duration::from_nanos(*v)))
            .collect()
    }

    /// Exposed communication time of a phase — what the rank actually waited
    /// (identical to [`PhaseTimer::get`]; named accessor for breakdowns).
    pub fn comm_exposed(&self, name: &str) -> Duration {
        self.get(name)
    }

    /// Overlapped (compute-hidden) communication time of a phase.
    pub fn comm_overlapped(&self, name: &str) -> Duration {
        Duration::from_nanos(self.overlapped.get(name))
    }

    /// Total communication time of a phase: exposed + overlapped. The
    /// overlapped component ends at data *availability* (not at the wait),
    /// so this is the phase's issue→data-ready dependency latency — the
    /// Fig. 7/12-comparable per-phase communication cost. Pipelining moves
    /// time from exposed to overlapped (and can shrink the total when
    /// senders issue earlier); it never hides cost from this number.
    pub fn comm_total(&self, name: &str) -> Duration {
        self.get(name) + self.comm_overlapped(name)
    }

    /// Fraction of a phase's communication hidden under compute:
    /// `overlapped / (exposed + overlapped)`; zero for a phase with no
    /// recorded communication.
    pub fn overlap_ratio(&self, name: &str) -> f64 {
        let total = self.comm_total(name);
        if total.is_zero() {
            0.0
        } else {
            self.comm_overlapped(name).as_secs_f64() / total.as_secs_f64()
        }
    }

    /// Accumulates one kernel call's per-worker-thread flop counts
    /// (element-wise; the vector grows to the largest thread count seen).
    pub fn add_thread_flops(&mut self, per_thread: &[u64]) {
        if self.thread_flops.len() < per_thread.len() {
            self.thread_flops.resize(per_thread.len(), 0);
        }
        for (acc, &f) in self.thread_flops.iter_mut().zip(per_thread) {
            *acc += f;
        }
    }

    /// Accumulated per-worker-thread flop counts (empty if no kernel
    /// reported any).
    pub fn thread_flops(&self) -> &[u64] {
        &self.thread_flops
    }

    /// Thread-level flop imbalance: `max / mean` over the per-thread
    /// counters. 1.0 is a perfect split; `threads` is the worst case (all
    /// work on one thread). Returns 1.0 when fewer than two threads
    /// reported or no flops were recorded.
    pub fn flop_imbalance(&self) -> f64 {
        flop_imbalance(&self.thread_flops)
    }

    /// Merges another timer's phases into this one (summing shared phases).
    pub fn merge(&mut self, other: &PhaseTimer) {
        self.phases.merge_sum(&other.phases);
        self.overlapped.merge_sum(&other.overlapped);
        self.add_thread_flops(&other.thread_flops);
    }

    /// Element-wise maximum over phases: for per-rank timers this yields the
    /// critical-path view (the slowest rank per phase), which is what the
    /// paper's breakdown figures show.
    pub fn merge_max(&mut self, other: &PhaseTimer) {
        self.phases.merge_max(&other.phases);
        self.overlapped.merge_max(&other.overlapped);
        if self.thread_flops.len() < other.thread_flops.len() {
            self.thread_flops.resize(other.thread_flops.len(), 0);
        }
        for (acc, &f) in self.thread_flops.iter_mut().zip(&other.thread_flops) {
            *acc = (*acc).max(f);
        }
    }

    /// Publishes the accumulated state into a metrics registry under
    /// `prefix`: phase nanoseconds as `{prefix}.phase_ns.{name}`,
    /// overlapped nanoseconds as `{prefix}.overlapped_ns.{name}`, and
    /// per-thread flops as `{prefix}.thread_flops.{tid}` — the bridge that
    /// lets benchmark artifacts render from registry snapshots instead of
    /// hand-rolled aggregation.
    pub fn export_into(&self, reg: &dspgemm_obs::Registry, prefix: &str) {
        for (n, v) in self.phases.entries() {
            reg.counter_add(&format!("{prefix}.phase_ns.{n}"), *v);
        }
        for (n, v) in self.overlapped.entries() {
            reg.counter_add(&format!("{prefix}.overlapped_ns.{n}"), *v);
        }
        for (tid, f) in self.thread_flops.iter().enumerate() {
            reg.counter_add(&format!("{prefix}.thread_flops.{tid}"), *f);
        }
    }
}

/// `max / mean` over per-thread flop counters (see
/// [`PhaseTimer::flop_imbalance`]); usable directly on counters pooled
/// across ranks.
pub fn flop_imbalance(per_thread: &[u64]) -> f64 {
    let total: u64 = per_thread.iter().sum();
    if per_thread.len() < 2 || total == 0 {
        return 1.0;
    }
    let max = *per_thread.iter().max().expect("non-empty") as f64;
    let mean = total as f64 / per_thread.len() as f64;
    max / mean
}

/// Formats a byte count with binary units (`1.5 GiB`).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Formats a duration compactly (`1.23 ms`, `4.5 s`).
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Geometric mean of a slice of positive values. Returns `NaN` for empty
/// input. The paper's relative-performance summaries ("between 1.68× and
/// 2.59× faster … on average 1.15× faster") are geometric means.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timer_accumulates() {
        let mut pt = PhaseTimer::new();
        pt.add("sort", Duration::from_millis(3));
        pt.add("comm", Duration::from_millis(5));
        pt.add("sort", Duration::from_millis(2));
        assert_eq!(pt.get("sort"), Duration::from_millis(5));
        assert_eq!(pt.get("comm"), Duration::from_millis(5));
        assert_eq!(pt.get("absent"), Duration::ZERO);
        assert_eq!(pt.total(), Duration::from_millis(10));
        // Order of first use is preserved.
        let names: Vec<String> = pt.entries().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["sort", "comm"]);
    }

    #[test]
    fn phase_timer_time_closure() {
        let mut pt = PhaseTimer::new();
        let v = pt.time("work", || 42);
        assert_eq!(v, 42);
        assert!(pt.get("work") > Duration::ZERO || pt.get("work") == Duration::ZERO);
        assert_eq!(pt.entries().len(), 1);
    }

    #[test]
    fn merge_and_merge_max() {
        let mut a = PhaseTimer::new();
        a.add("x", Duration::from_millis(1));
        a.add("y", Duration::from_millis(10));
        let mut b = PhaseTimer::new();
        b.add("x", Duration::from_millis(5));
        b.add("z", Duration::from_millis(2));
        let mut sum = a.clone();
        sum.merge(&b);
        assert_eq!(sum.get("x"), Duration::from_millis(6));
        assert_eq!(sum.get("z"), Duration::from_millis(2));
        let mut mx = a.clone();
        mx.merge_max(&b);
        assert_eq!(mx.get("x"), Duration::from_millis(5));
        assert_eq!(mx.get("y"), Duration::from_millis(10));
        assert_eq!(mx.get("z"), Duration::from_millis(2));
    }

    #[test]
    fn overlapped_comm_not_double_counted() {
        let mut pt = PhaseTimer::new();
        // A pipelined round: 2 ms exposed bcast wait, 8 ms of the broadcast
        // hidden under 10 ms of local multiply.
        pt.add("bcast", Duration::from_millis(2));
        pt.add_overlapped("bcast", Duration::from_millis(8));
        pt.add("local mult.", Duration::from_millis(10));
        // total() partitions wall time: hidden comm is not double-counted.
        assert_eq!(pt.total(), Duration::from_millis(12));
        assert_eq!(pt.comm_exposed("bcast"), Duration::from_millis(2));
        assert_eq!(pt.comm_overlapped("bcast"), Duration::from_millis(8));
        assert_eq!(pt.comm_total("bcast"), Duration::from_millis(10));
        assert!((pt.overlap_ratio("bcast") - 0.8).abs() < 1e-12);
        assert_eq!(pt.overlap_ratio("local mult."), 0.0);
        // merge and merge_max carry the overlapped component along.
        let mut other = PhaseTimer::new();
        other.add_overlapped("bcast", Duration::from_millis(4));
        let mut sum = pt.clone();
        sum.merge(&other);
        assert_eq!(sum.comm_overlapped("bcast"), Duration::from_millis(12));
        let mut mx = pt.clone();
        mx.merge_max(&other);
        assert_eq!(mx.comm_overlapped("bcast"), Duration::from_millis(8));
    }

    #[test]
    fn thread_flop_counters_and_imbalance() {
        let mut pt = PhaseTimer::new();
        assert_eq!(pt.flop_imbalance(), 1.0);
        pt.add_thread_flops(&[10, 10]);
        pt.add_thread_flops(&[20, 0, 10]); // grows to 3 threads
        assert_eq!(pt.thread_flops(), &[30, 10, 10]);
        // max = 30, mean = 50/3.
        assert!((pt.flop_imbalance() - 30.0 / (50.0 / 3.0)).abs() < 1e-12);
        // merge sums element-wise; merge_max takes the element maximum.
        let mut other = PhaseTimer::new();
        other.add_thread_flops(&[5, 100]);
        let mut sum = pt.clone();
        sum.merge(&other);
        assert_eq!(sum.thread_flops(), &[35, 110, 10]);
        let mut mx = pt.clone();
        mx.merge_max(&other);
        assert_eq!(mx.thread_flops(), &[30, 100, 10]);
        // Free-function form for cross-rank pools.
        assert_eq!(flop_imbalance(&[7]), 1.0);
        assert!((flop_imbalance(&[4, 0, 0, 0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn export_into_registry() {
        let mut pt = PhaseTimer::new();
        pt.add("bcast", Duration::from_nanos(1500));
        pt.add_overlapped("bcast", Duration::from_nanos(500));
        pt.add_thread_flops(&[7, 9]);
        let reg = dspgemm_obs::Registry::new();
        pt.export_into(&reg, "t");
        pt.export_into(&reg, "t"); // counters accumulate
        assert_eq!(reg.counter("t.phase_ns.bcast"), 3000);
        assert_eq!(reg.counter("t.overlapped_ns.bcast"), 1000);
        assert_eq!(reg.counter("t.thread_flops.0"), 14);
        assert_eq!(reg.counter("t.thread_flops.1"), 18);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn geo_mean() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn timer_lap_moves_forward() {
        let mut t = Timer::start();
        let a = t.lap();
        let b = t.elapsed();
        assert!(a >= Duration::ZERO);
        assert!(b >= Duration::ZERO);
    }
}
