//! Counting sort and radix sort.
//!
//! The paper's update-redistribution routine groups tuples by destination rank
//! with a *counting sort over √p buckets* before each `ALLTOALL` (Section
//! IV-B) — explicitly avoiding the comparison sort its competitors use. These
//! are the sorting kernels backing that claim, plus an LSD radix sort used to
//! order triples by `(row, col)` when building CSR/DCSR blocks.

/// Stable counting sort of `items` by a small integer key.
///
/// `key(item) < buckets` must hold for every item. Returns the permuted items
/// together with the bucket boundary offsets (`offsets.len() == buckets + 1`),
/// so callers (e.g. all-to-all packing) can slice per-bucket ranges without a
/// second pass.
///
/// Runs in `O(n + buckets)` time and `O(n + buckets)` extra space.
pub fn counting_sort_by_key<T, F>(items: Vec<T>, buckets: usize, mut key: F) -> (Vec<T>, Vec<usize>)
where
    F: FnMut(&T) -> usize,
{
    let offsets = bucket_offsets(&items, buckets, &mut key);
    // Gather into per-bucket vectors (exact capacity), then concatenate —
    // two moves per item, no placeholder writes.
    let mut groups: Vec<Vec<T>> = (0..buckets)
        .map(|b| Vec::with_capacity(offsets[b + 1] - offsets[b]))
        .collect();
    for it in items {
        let k = key(&it);
        debug_assert!(k < buckets, "key {k} out of range (buckets={buckets})");
        groups[k].push(it);
    }
    let mut result = Vec::with_capacity(offsets[buckets]);
    for g in groups {
        result.extend(g);
    }
    (result, offsets)
}

/// Computes per-bucket counts and exclusive prefix offsets for `items` keyed
/// by `key`, without moving anything. `offsets.len() == buckets + 1`.
pub fn bucket_offsets<T, F>(items: &[T], buckets: usize, mut key: F) -> Vec<usize>
where
    F: FnMut(&T) -> usize,
{
    let mut counts = vec![0usize; buckets + 1];
    for it in items {
        let k = key(it);
        debug_assert!(k < buckets);
        counts[k + 1] += 1;
    }
    for b in 0..buckets {
        counts[b + 1] += counts[b];
    }
    counts
}

/// Stable LSD radix sort of `items` by a `u64` key, 8 bits per pass.
///
/// Only the passes covering `max_key` are executed, so sorting by keys known
/// to fit 32 bits costs 4 passes. `O(n)` per pass, two buffers.
pub fn radix_sort_by_key<T: Clone, F>(items: &mut Vec<T>, max_key: u64, mut key: F)
where
    F: FnMut(&T) -> u64,
{
    if items.len() <= 1 {
        return;
    }
    let passes = if max_key == 0 {
        1
    } else {
        (64 - max_key.leading_zeros() as usize).div_ceil(8)
    };
    let mut src: Vec<T> = std::mem::take(items);
    let mut dst: Vec<T> = Vec::with_capacity(src.len());
    for pass in 0..passes {
        let shift = pass * 8;
        let mut counts = [0usize; 257];
        for it in &src {
            let b = ((key(it) >> shift) & 0xff) as usize;
            counts[b + 1] += 1;
        }
        for b in 0..256 {
            counts[b + 1] += counts[b];
        }
        dst.clear();
        dst.resize_with(src.len(), || src[0].clone());
        for it in src.drain(..) {
            let b = ((key(&it) >> shift) & 0xff) as usize;
            dst[counts[b]] = it;
            counts[b] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *items = src;
}

/// Returns `true` if `slice` is sorted by the extracted key (non-decreasing).
pub fn is_sorted_by_key<T, K: Ord, F: FnMut(&T) -> K>(slice: &[T], mut key: F) -> bool {
    slice.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

/// Exclusive prefix sum in place: `v[i] <- sum(v[..i])`; returns total.
pub fn exclusive_prefix_sum(v: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in v.iter_mut() {
        let next = acc + *x;
        *x = acc;
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SplitMix64};

    #[test]
    fn counting_sort_sorts_and_is_stable() {
        // (key, original position) pairs.
        let items: Vec<(usize, usize)> =
            vec![(2, 0), (0, 1), (1, 2), (2, 3), (0, 4), (1, 5), (0, 6)];
        let (sorted, offsets) = counting_sort_by_key(items, 3, |it| it.0);
        assert_eq!(
            sorted,
            vec![(0, 1), (0, 4), (0, 6), (1, 2), (1, 5), (2, 0), (2, 3)]
        );
        assert_eq!(offsets, vec![0, 3, 5, 7]);
    }

    #[test]
    fn counting_sort_empty_and_single() {
        let (s, off) = counting_sort_by_key(Vec::<u32>::new(), 4, |&x| x as usize);
        assert!(s.is_empty());
        assert_eq!(off, vec![0, 0, 0, 0, 0]);
        let (s, off) = counting_sort_by_key(vec![2u32], 4, |&x| x as usize);
        assert_eq!(s, vec![2]);
        assert_eq!(off, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn counting_sort_random_matches_std() {
        let mut rng = SplitMix64::new(17);
        let items: Vec<u32> = (0..10_000).map(|_| rng.gen_range(64) as u32).collect();
        let (sorted, _) = counting_sort_by_key(items.clone(), 64, |&x| x as usize);
        let mut expect = items;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn bucket_offsets_match_counting_sort() {
        let mut rng = SplitMix64::new(18);
        let items: Vec<u32> = (0..5_000).map(|_| rng.gen_range(16) as u32).collect();
        let off = bucket_offsets(&items, 16, |&x| x as usize);
        let (_, off2) = counting_sort_by_key(items, 16, |&x| x as usize);
        assert_eq!(off, off2);
    }

    #[test]
    fn radix_sort_matches_std_sort() {
        let mut rng = SplitMix64::new(19);
        let mut items: Vec<u64> = (0..20_000).map(|_| rng.next_u64() >> 16).collect();
        let mut expect = items.clone();
        expect.sort_unstable();
        radix_sort_by_key(&mut items, u64::MAX >> 16, |&x| x);
        assert_eq!(items, expect);
    }

    #[test]
    fn radix_sort_stability() {
        // Sort (key, tag) by key only; equal keys must preserve tag order.
        let items_raw: Vec<(u64, usize)> = vec![(5, 0), (3, 1), (5, 2), (3, 3), (1, 4), (5, 5)];
        let mut items = items_raw;
        radix_sort_by_key(&mut items, 5, |it| it.0);
        assert_eq!(items, vec![(1, 4), (3, 1), (3, 3), (5, 0), (5, 2), (5, 5)]);
    }

    #[test]
    fn radix_sort_small_max_key_fewer_passes() {
        let mut items = vec![3u64, 1, 2, 0, 3, 1];
        radix_sort_by_key(&mut items, 3, |&x| x);
        assert_eq!(items, vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn radix_sort_pair_key_row_col() {
        // The triple-sorting use case: key = row << 32 | col.
        let mut rng = SplitMix64::new(23);
        let mut items: Vec<(u32, u32)> = (0..5000)
            .map(|_| (rng.gen_range(100) as u32, rng.gen_range(100) as u32))
            .collect();
        let mut expect = items.clone();
        expect.sort();
        radix_sort_by_key(&mut items, (100u64 << 32) | 100, |&(r, c)| {
            ((r as u64) << 32) | c as u64
        });
        assert_eq!(items, expect);
    }

    #[test]
    fn prefix_sum_basics() {
        let mut v = vec![3usize, 0, 2, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
    }

    #[test]
    fn is_sorted_detects() {
        assert!(is_sorted_by_key(&[1, 2, 2, 3], |&x| x));
        assert!(!is_sorted_by_key(&[1, 3, 2], |&x| x));
        assert!(is_sorted_by_key::<u32, u32, _>(&[], |&x| x));
    }
}
