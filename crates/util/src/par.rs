//! Scoped-thread data parallelism.
//!
//! Stands in for the paper's intra-process OpenMP parallelism: each simulated
//! MPI rank may additionally run `T` shared-memory worker threads (the paper
//! uses `T = 6` per rank). Because ranks are already threads in this
//! reproduction, intra-rank parallelism is kept explicit and bounded: callers
//! pass the desired thread count, and `threads == 1` runs inline with zero
//! overhead.
//!
//! The primitives here mirror the paper's usage:
//! * [`parallel_for_each_shard`] — the `i mod T` partitioning used to insert
//!   update tuples into local dynamic matrices in parallel (Section IV-B);
//! * [`parallel_map_ranges`] — row-range parallelism for local Gustavson
//!   multiplication (Section VI-A).

/// Runs `f(t)` for every shard id `t in 0..threads`, in parallel when
/// `threads > 1`. Each shard conventionally processes the items with
/// `key % threads == t`, which is exactly the paper's `(i mod T)` update
/// partitioning scheme.
///
/// Panics in any shard propagate to the caller.
pub fn parallel_for_each_shard<F>(threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads).map(|t| scope.spawn(move || f(t))).collect();
        for h in handles {
            h.join().expect("parallel shard panicked");
        }
    });
}

/// Splits `0..n` into `threads` contiguous ranges of near-equal size and maps
/// each range through `f` in parallel, returning per-range results in order.
///
/// Used for row-parallel local SpGEMM: each worker produces the output rows of
/// its range, and the caller concatenates them (preserving row order).
pub fn parallel_map_ranges<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    assert!(threads >= 1);
    let ranges = split_ranges(n, threads);
    if threads == 1 || n == 0 {
        return ranges.into_iter().map(&f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel range worker panicked"))
            .collect()
    })
}

/// Splits `0..n` into `parts` contiguous ranges whose sizes differ by at most
/// one. Ranges may be empty when `parts > n`.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts >= 1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shards_all_run_once() {
        let counter = AtomicUsize::new(0);
        let seen = (0..8).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        parallel_for_each_shard(8, |t| {
            counter.fetch_add(1, Ordering::SeqCst);
            seen[t].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert!(seen.iter().all(|s| s.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_thread_runs_inline() {
        let touched = AtomicUsize::new(0);
        parallel_for_each_shard(1, |t| {
            assert_eq!(t, 0);
            touched.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(touched.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn map_ranges_covers_everything_in_order() {
        let results = parallel_map_ranges(4, 103, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = results.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn map_ranges_more_threads_than_items() {
        let results = parallel_map_ranges(8, 3, |r| r.len());
        assert_eq!(results.iter().sum::<usize>(), 3);
        assert_eq!(results.len(), 8);
    }

    #[test]
    fn split_ranges_balanced() {
        let rs = split_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        let rs = split_ranges(0, 2);
        assert_eq!(rs, vec![0..0, 0..0]);
    }

    #[test]
    #[should_panic(expected = "parallel shard panicked")]
    fn shard_panic_propagates() {
        parallel_for_each_shard(2, |t| {
            if t == 1 {
                panic!("boom");
            }
        });
    }
}
