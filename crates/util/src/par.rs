//! Scoped-thread data parallelism.
//!
//! Stands in for the paper's intra-process OpenMP parallelism: each simulated
//! MPI rank may additionally run `T` shared-memory worker threads (the paper
//! uses `T = 6` per rank). Because ranks are already threads in this
//! reproduction, intra-rank parallelism is kept explicit and bounded: callers
//! pass the desired thread count, and `threads == 1` runs inline with zero
//! overhead.
//!
//! The primitives here mirror the paper's usage:
//! * [`parallel_for_each_shard`] — the `i mod T` partitioning used to insert
//!   update tuples into local dynamic matrices in parallel (Section IV-B);
//! * [`parallel_map_ranges`] — row-range parallelism for local Gustavson
//!   multiplication (Section VI-A).
//!
//! On the paper's power-law inputs, equal-*count* row ranges put wildly
//! unequal *work* on the workers (one hub row can carry orders of magnitude
//! more flops than a thousand tail rows), so the SpGEMM kernels schedule by
//! [`RowSchedule`]: contiguous equal-count splitting (the ablation
//! baseline), flop-weighted splitting ([`split_ranges_by_weight`]), or
//! chunked work stealing ([`parallel_map_stealing`]) when per-row estimates
//! are unreliable. All three produce ranges/chunks in ascending row order,
//! so concatenating per-range outputs yields bit-identical results
//! regardless of the schedule.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How a kernel's row space is assigned to intra-rank worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowSchedule {
    /// `threads` contiguous ranges of near-equal row *count* — the
    /// pre-balancing behavior, kept as the ablation baseline
    /// (`repro balance`).
    Contiguous,
    /// Contiguous ranges of near-equal estimated *flops* (per-row upper
    /// bounds `Σ_k |B[k,:]|` over the stored rows, split by prefix sum).
    /// The default: one pass of estimation buys an even work split while
    /// keeping ranges contiguous (deterministic concatenation order).
    #[default]
    FlopBalanced,
    /// Many small contiguous chunks pulled from an atomic cursor: whichever
    /// worker is free takes the next chunk. Robust when flop estimates are
    /// unreliable (e.g. heavily masked multiplies); per-chunk outputs are
    /// reassembled in chunk order, so the result stays deterministic.
    WorkStealing,
}

/// Chunks handed out per worker under [`RowSchedule::WorkStealing`]: enough
/// slack that a single hub-heavy chunk cannot serialize the tail, small
/// enough that the cursor is not contended.
pub const STEAL_CHUNKS_PER_THREAD: usize = 8;

/// Runs `f(t)` for every shard id `t in 0..threads`, in parallel when
/// `threads > 1`. Each shard conventionally processes the items with
/// `key % threads == t`, which is exactly the paper's `(i mod T)` update
/// partitioning scheme.
///
/// Panics in any shard propagate to the caller.
pub fn parallel_for_each_shard<F>(threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads).map(|t| scope.spawn(move || f(t))).collect();
        for h in handles {
            h.join().expect("parallel shard panicked");
        }
    });
}

/// Splits `0..n` into `threads` contiguous ranges of near-equal size and maps
/// each range through `f` in parallel, returning per-range results in order.
///
/// Used for row-parallel local SpGEMM: each worker produces the output rows of
/// its range, and the caller concatenates them (preserving row order).
pub fn parallel_map_ranges<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    assert!(threads >= 1);
    let ranges = split_ranges(n, threads);
    if threads == 1 || n == 0 {
        return ranges.into_iter().map(&f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel range worker panicked"))
            .collect()
    })
}

/// Splits `0..n` into `parts` contiguous ranges whose sizes differ by at most
/// one. Ranges may be empty when `parts > n`.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts >= 1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `0..n` into exactly `parts` contiguous ranges of near-equal total
/// *weight*, given per-row weights for the non-empty rows as ascending
/// `(row, weight)` pairs (rows absent from `weighted` have weight zero).
///
/// Boundary `j` is placed after the first row whose running weight reaches
/// `total · j / parts` — a prefix-sum walk, O(|weighted|). A single row
/// heavier than `total / parts` cannot be split (row granularity), so its
/// range simply absorbs the overshoot; trailing ranges may be empty. Falls
/// back to [`split_ranges`] when all weights are zero.
pub fn split_ranges_by_weight(
    n: usize,
    parts: usize,
    weighted: &[(usize, u64)],
) -> Vec<std::ops::Range<usize>> {
    assert!(parts >= 1);
    debug_assert!(weighted.windows(2).all(|w| w[0].0 < w[1].0));
    let total: u128 = weighted.iter().map(|&(_, w)| w as u128).sum();
    if parts == 1 || total == 0 {
        return split_ranges(n, parts);
    }
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for &(row, w) in weighted {
        acc += w as u128;
        if out.len() + 1 < parts && acc * parts as u128 >= total * (out.len() as u128 + 1) {
            // Cut after this row: stored rows are ascending, so row >= start
            // and the range is non-empty.
            out.push(start..row + 1);
            start = row + 1;
        }
    }
    out.push(start..n);
    while out.len() < parts {
        out.push(n..n);
    }
    out
}

/// Maps the given contiguous ranges through `f` in parallel (one worker per
/// range), returning per-range results in order. `init(t)` builds worker
/// `t`'s private state (scratch buffers, leased workspaces) once, before its
/// range is processed — the schedule-aware twin of [`parallel_map_ranges`].
pub fn parallel_map_ranges_init<W, R, I, F>(
    ranges: Vec<std::ops::Range<usize>>,
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn(usize) -> W + Sync,
    F: Fn(&mut W, std::ops::Range<usize>) -> R + Sync,
{
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|r| f(&mut init(0), r)).collect();
    }
    std::thread::scope(|scope| {
        let (init, f) = (&init, &f);
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(t, r)| scope.spawn(move || f(&mut init(t), r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel range worker panicked"))
            .collect()
    })
}

/// Chunked work stealing: `threads` workers pull chunks off an atomic cursor
/// until none remain; worker `t`'s state comes from `init(t)` once and is
/// folded into a final per-worker value by `finish` when the cursor runs
/// dry. Returns one `(worker, result)` pair per chunk **in chunk order**
/// (which worker processed a chunk varies run to run, but the reassembled
/// output does not) plus the per-worker finals in worker order.
pub fn parallel_map_stealing<W, R, T, I, F, G>(
    threads: usize,
    chunks: Vec<std::ops::Range<usize>>,
    init: I,
    f: F,
    finish: G,
) -> (Vec<(usize, R)>, Vec<T>)
where
    R: Send,
    T: Send,
    I: Fn(usize) -> W + Sync,
    F: Fn(&mut W, std::ops::Range<usize>) -> R + Sync,
    G: Fn(W) -> T + Sync,
{
    assert!(threads >= 1);
    if threads == 1 || chunks.len() <= 1 {
        let mut w = init(0);
        let results = chunks.into_iter().map(|c| (0, f(&mut w, c))).collect();
        return (results, vec![finish(w)]);
    }
    let n_chunks = chunks.len();
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<(Vec<(usize, R)>, T)> = std::thread::scope(|scope| {
        let (init, f, finish, cursor, chunks) = (&init, &f, &finish, &cursor, &chunks);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut w = init(t);
                    let mut mine = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_chunks {
                            break;
                        }
                        mine.push((idx, f(&mut w, chunks[idx].clone())));
                    }
                    (mine, finish(w))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("work-stealing worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<(usize, R)>> = (0..n_chunks).map(|_| None).collect();
    let mut finals = Vec::with_capacity(threads);
    for (t, (worker_results, fin)) in per_worker.into_iter().enumerate() {
        for (idx, r) in worker_results {
            debug_assert!(slots[idx].is_none(), "chunk processed twice");
            slots[idx] = Some((t, r));
        }
        finals.push(fin);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every chunk processed"))
        .collect();
    (results, finals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shards_all_run_once() {
        let counter = AtomicUsize::new(0);
        let seen = (0..8).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        parallel_for_each_shard(8, |t| {
            counter.fetch_add(1, Ordering::SeqCst);
            seen[t].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert!(seen.iter().all(|s| s.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_thread_runs_inline() {
        let touched = AtomicUsize::new(0);
        parallel_for_each_shard(1, |t| {
            assert_eq!(t, 0);
            touched.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(touched.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn map_ranges_covers_everything_in_order() {
        let results = parallel_map_ranges(4, 103, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = results.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn map_ranges_more_threads_than_items() {
        let results = parallel_map_ranges(8, 3, |r| r.len());
        assert_eq!(results.iter().sum::<usize>(), 3);
        assert_eq!(results.len(), 8);
    }

    #[test]
    fn split_ranges_balanced() {
        let rs = split_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        let rs = split_ranges(0, 2);
        assert_eq!(rs, vec![0..0, 0..0]);
    }

    #[test]
    #[should_panic(expected = "parallel shard panicked")]
    fn shard_panic_propagates() {
        parallel_for_each_shard(2, |t| {
            if t == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn weighted_split_covers_and_balances() {
        // Row 0 carries half the weight; rows 1..10 share the rest.
        let mut weighted = vec![(0usize, 90u64)];
        weighted.extend((1..10).map(|r| (r, 10)));
        let rs = split_ranges_by_weight(10, 3, &weighted);
        assert_eq!(rs.len(), 3);
        // Contiguous cover of 0..10.
        let mut pos = 0;
        for r in &rs {
            assert_eq!(r.start, pos);
            pos = r.end;
        }
        assert_eq!(pos, 10);
        // The hub row is alone in its range; the tail is split by weight.
        assert_eq!(rs[0], 0..1);
        let w_of = |r: &std::ops::Range<usize>| -> u64 {
            weighted
                .iter()
                .filter(|&&(row, _)| r.contains(&row))
                .map(|&(_, w)| w)
                .sum()
        };
        assert!(w_of(&rs[1]) > 0 && w_of(&rs[2]) > 0);
    }

    #[test]
    fn weighted_split_zero_weight_falls_back() {
        assert_eq!(split_ranges_by_weight(10, 3, &[]), split_ranges(10, 3));
        assert_eq!(split_ranges_by_weight(10, 1, &[(2, 5)]), vec![0..10]);
    }

    #[test]
    fn weighted_split_pads_empty_tail_ranges() {
        // All weight in row 0: every boundary lands immediately.
        let rs = split_ranges_by_weight(4, 4, &[(0, 100)]);
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0], 0..1);
        assert_eq!(rs.last().unwrap().end, 4);
        let total: usize = rs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn ranges_init_builds_state_per_worker() {
        let ranges = split_ranges(100, 4);
        let results = parallel_map_ranges_init(
            ranges,
            |t| (t, Vec::<usize>::new()),
            |(t, scratch), r| {
                scratch.extend(r.clone());
                (*t, scratch.len())
            },
        );
        assert_eq!(results.len(), 4);
        for (t, (worker, len)) in results.iter().enumerate() {
            assert_eq!(t, *worker);
            assert_eq!(*len, 25);
        }
    }

    #[test]
    fn stealing_covers_all_chunks_in_order() {
        let chunks = split_ranges(103, 16);
        let (results, finals) = parallel_map_stealing(
            4,
            chunks.clone(),
            |_| (),
            |(), r| r.collect::<Vec<usize>>(),
            |()| (),
        );
        assert_eq!(results.len(), 16);
        assert_eq!(finals.len(), 4);
        let flat: Vec<usize> = results.into_iter().flat_map(|(_, v)| v).collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_single_thread_runs_inline() {
        let (results, finals) =
            parallel_map_stealing(1, split_ranges(10, 4), |t| t, |t, r| (*t, r.len()), |t| t);
        assert!(results.iter().all(|&(w, (tw, _))| w == 0 && tw == 0));
        let total: usize = results.iter().map(|&(_, (_, l))| l).sum();
        assert_eq!(total, 10);
        assert_eq!(finals, vec![0]);
    }

    #[test]
    fn stealing_reuses_worker_state_and_finishes_it() {
        // Each worker's state counts the chunks it processed; the finals
        // carry the per-worker totals, which must partition the chunk count
        // (state persists across steals, finish sees the final state).
        let (results, finals) = parallel_map_stealing(
            3,
            split_ranges(90, 9),
            |_| 0usize,
            |count, _r| {
                *count += 1;
                *count
            },
            |count| count,
        );
        assert_eq!(results.len(), 9);
        assert_eq!(finals.len(), 3);
        assert_eq!(finals.iter().sum::<usize>(), 9);
    }
}
