//! Fast non-cryptographic hashing.
//!
//! The default `std` hasher (SipHash 1-3) is robust against HashDoS but slow
//! for the short integer keys that dominate sparse-matrix workloads (column
//! indices, `(row, col)` pairs). This module provides an FxHash-style
//! multiply-xor hasher — the algorithm used by rustc — which is several times
//! faster for such keys. All inputs in this workspace are either internally
//! generated or seeded benchmark data, so HashDoS resistance is not required.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit golden-ratio
/// derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// An FxHash-style streaming hasher.
///
/// Each word of input is folded in with `hash = (rotl(hash, 5) ^ word) * SEED`.
/// This is *not* a high-quality avalanche hash, but it is extremely fast and
/// its output distribution is more than adequate for power-of-two hash tables
/// over matrix indices (which are themselves randomly permuted by the
/// framework for load balance).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes a single `u64` to a well-mixed `u64` (one round of the SplitMix64
/// finalizer). Useful for direct open-addressing tables where the key is an
/// index and we want cheap but decent dispersion of *sequential* keys.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes an index pair into a single well-mixed `u64`.
///
/// Used by mask hash tables in the general dynamic SpGEMM (Section VI-B of
/// the paper stores the non-zero positions of `C*` in a hash table).
#[inline]
pub fn mix_pair(row: u32, col: u32) -> u64 {
    mix64(((row as u64) << 32) | col as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            assert!(seen.insert(hash_one(i)), "collision at {i}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one((7u32, 9u32)), hash_one((7u32, 9u32)));
    }

    #[test]
    fn byte_stream_matches_chunked_feed() {
        // write() must give the same result regardless of call boundaries at
        // 8-byte granularity.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        b.write(&[9, 10, 11, 12, 13, 14, 15, 16]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_bijective_sample() {
        // mix64 is a bijection; spot-check it does not collapse a dense range.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..100_000 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn mix_pair_disambiguates_row_col() {
        assert_ne!(mix_pair(1, 2), mix_pair(2, 1));
        assert_ne!(mix_pair(0, 1), mix_pair(1, 0));
    }

    #[test]
    fn fx_map_basic_ops() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }
}
