//! A compact fixed-capacity bit set.
//!
//! Used for dense row/column marker vectors (e.g. the rows selected by the
//! filter vector `R` in the general dynamic SpGEMM) and as a visited set in
//! sparse accumulators.

/// A fixed-capacity bit set over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bit set with capacity for `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits this set can hold.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Returns whether the bit was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        let w = i / 64;
        let m = 1u64 << (i % 64);
        let was_clear = self.words[w] & m == 0;
        self.words[w] |= m;
        was_clear
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clears all bits (retains capacity).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise-or of `other` into `self`. Both sets must have equal `len`.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bs = BitSet::new(200);
        assert!(!bs.get(63));
        assert!(bs.set(63));
        assert!(!bs.set(63), "second set reports already-set");
        assert!(bs.get(63));
        bs.clear(63);
        assert!(!bs.get(63));
    }

    #[test]
    fn boundaries() {
        let mut bs = BitSet::new(129);
        bs.set(0);
        bs.set(64);
        bs.set(128);
        assert_eq!(bs.count_ones(), 3);
        assert_eq!(bs.iter_ones().collect::<Vec<_>>(), vec![0, 64, 128]);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 50, 99]);
    }

    #[test]
    fn clear_all_and_empty() {
        let mut bs = BitSet::new(70);
        for i in 0..70 {
            bs.set(i);
        }
        assert_eq!(bs.count_ones(), 70);
        bs.clear_all();
        assert_eq!(bs.count_ones(), 0);
        let empty = BitSet::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic]
    fn union_length_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }
}
