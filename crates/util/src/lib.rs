//! # dspgemm-util
//!
//! Shared low-level utilities for the `dspgemm` workspace:
//!
//! * [`hash`] — a fast, non-cryptographic hasher (FxHash-style) plus hash-map
//!   aliases used throughout the hot paths (per-row column tables, sparse
//!   accumulators, mask lookups).
//! * [`rng`] — deterministic pseudo-random number generation (SplitMix64 and
//!   Xoshiro256**) with uniform-range sampling and shuffles. Every experiment
//!   in the reproduction is seeded, so we avoid OS entropy in library code.
//! * [`sort`] — counting sort and LSD radix sort. The paper's redistribution
//!   (Section IV-B) explicitly relies on counting sort with `sqrt(p)` buckets
//!   instead of comparison sorting.
//! * [`bitset`] — a compact fixed-size bit set.
//! * [`par`] — scoped-thread data parallelism (`parallel_for` and friends),
//!   standing in for the paper's intra-process OpenMP parallelism.
//! * [`stats`] — timers, phase breakdowns, and human-readable formatting used
//!   by the benchmark harness.
//! * [`wire`] — the [`wire::WireSize`] trait: how many bytes a value would
//!   occupy on an MPI wire. The simulator moves values in memory but meters
//!   exact communication volume through this trait. Its supertrait
//!   [`wire::WireEncode`] and the inverse [`wire::WireDecode`] form the
//!   length-prefixed codec the real TCP transport moves those bytes with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod hash;
pub mod par;
pub mod rng;
pub mod sort;
pub mod stats;
pub mod wire;

pub use bitset::BitSet;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use rng::{Rng, SplitMix64, Xoshiro256};
pub use stats::{PhaseTimer, Timer};
pub use wire::{
    decode_from_slice, encode_to_vec, WireBytes, WireDecode, WireEncode, WireError, WireReader,
    WireSize,
};
