//! Deterministic pseudo-random number generation.
//!
//! All library-level randomness (R-MAT sampling, index permutations, batch
//! draws) flows through these generators so that every experiment is exactly
//! reproducible from a single seed — the paper requires "the method (and
//! random seed) to draw non-zeros is the same for our competitors and for our
//! approach" (Section VII-C).

/// Common interface over this module's generators.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random `u64` in `[0, bound)` using Lemire's
    /// multiply-shift rejection method (no modulo bias).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // Rejection zone to remove bias.
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly random `usize` in `[0, bound)`.
    #[inline]
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniformly random `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, fast, well-distributed generator.
///
/// Primarily used to seed [`Xoshiro256`] and to derive independent per-rank
/// streams (`SplitMix64::derive`), but it is a perfectly fine generator on its
/// own for non-statistical purposes.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent stream for a sub-entity (e.g. an MPI rank).
    ///
    /// Streams for distinct `id`s are decorrelated by mixing the id with the
    /// golden-ratio increment before seeding.
    #[inline]
    pub fn derive(seed: u64, id: u64) -> Self {
        let mut base = Self::new(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Burn one output so that seed==0, id==0 doesn't start at state 0.
        let s = base.next_u64();
        Self::new(s)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the workhorse generator for bulk sampling (R-MAT edges,
/// update batches). Excellent statistical quality, 2^256-1 period.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed through SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent per-entity stream (see [`SplitMix64::derive`]).
    pub fn derive(seed: u64, id: u64) -> Self {
        let mut sm = SplitMix64::derive(seed, id);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Returns a uniformly random permutation of `0..n` as a lookup vector
/// (`perm[i]` = image of `i`).
///
/// The paper randomly permutes row/column indices before constructing each
/// matrix to balance load across the 2D grid (Section VII-A); this is the
/// permutation used for that purpose.
pub fn random_permutation(n: usize, rng: &mut impl Rng) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "permutation domain exceeds u32");
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut rng = SplitMix64::new(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn xoshiro_determinism_and_spread() {
        let mut r1 = Xoshiro256::new(42);
        let mut r2 = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
        let mut r3 = Xoshiro256::new(43);
        let same = (0..100).filter(|_| r1.next_u64() == r3.next_u64()).count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn derived_streams_decorrelated() {
        let mut streams: Vec<Xoshiro256> = (0..16).map(|r| Xoshiro256::derive(7, r)).collect();
        let firsts: std::collections::HashSet<u64> =
            streams.iter_mut().map(|s| s.next_u64()).collect();
        assert_eq!(firsts.len(), 16);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Xoshiro256::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }

    #[test]
    fn gen_range_unbiased_mean() {
        let mut rng = Xoshiro256::new(99);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean} too far from 499.5");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(5);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..1000).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn permutation_valid() {
        let mut rng = SplitMix64::new(11);
        let p = random_permutation(5000, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = Xoshiro256::new(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
