//! Wire-size accounting.
//!
//! The MPI simulator transfers values by moving them in memory, but the
//! experiments must report *communication volume* — the central quantity the
//! paper optimizes ("our dynamic SpGEMM reduces the communication volume
//! significantly"). [`WireSize`] computes the number of bytes a value would
//! occupy in a packed MPI message: fixed-width scalars at their natural size,
//! sequences as element payload plus an 8-byte length header.

/// Number of bytes a value would occupy in a packed MPI message.
pub trait WireSize {
    /// Packed byte size of `self`.
    fn wire_bytes(&self) -> u64;
}

macro_rules! impl_wiresize_scalar {
    ($($t:ty),*) => {
        $(impl WireSize for $t {
            #[inline]
            fn wire_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        })*
    };
}

impl_wiresize_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl WireSize for () {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        0
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<T: WireSize, const N: usize> WireSize for [T; N] {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.iter().map(WireSize::wire_bytes).sum()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        8 + self.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<T: WireSize> WireSize for &[T] {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        8 + self.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<T: WireSize> WireSize for Box<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

impl<T: WireSize + ?Sized> WireSize for std::sync::Arc<T> {
    /// An `Arc` payload is a *transport* artifact of the zero-copy simulated
    /// collectives: on a real wire the pointee would be packed and sent, so
    /// the wire size is the pointee's. This keeps metered communication
    /// volume identical between the clone-based and `Arc`-shared paths.
    #[inline]
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

impl WireSize for String {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        8 + self.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(0u8.wire_bytes(), 1);
        assert_eq!(0u32.wire_bytes(), 4);
        assert_eq!(0u64.wire_bytes(), 8);
        assert_eq!(0f64.wire_bytes(), 8);
        assert_eq!(true.wire_bytes(), 1);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32, 3.0f64).wire_bytes(), 16);
        assert_eq!(vec![1u32; 10].wire_bytes(), 8 + 40);
        assert_eq!(Vec::<u64>::new().wire_bytes(), 8);
        assert_eq!(Some(5u64).wire_bytes(), 9);
        assert_eq!(None::<u64>.wire_bytes(), 1);
        assert_eq!("abc".to_string().wire_bytes(), 11);
    }

    #[test]
    fn nested_vec_of_tuples() {
        let v: Vec<(u32, u32, f64)> = vec![(0, 0, 0.0); 4];
        assert_eq!(v.wire_bytes(), 8 + 4 * 16);
    }

    #[test]
    fn arc_is_transparent() {
        let v = vec![1u32; 10];
        let inner = v.wire_bytes();
        assert_eq!(std::sync::Arc::new(v).wire_bytes(), inner);
        assert_eq!(std::sync::Arc::new(7u64).wire_bytes(), 8);
    }
}
