//! Wire-size accounting and the wire codec.
//!
//! The MPI simulator transfers values by moving them in memory, but the
//! experiments must report *communication volume* — the central quantity the
//! paper optimizes ("our dynamic SpGEMM reduces the communication volume
//! significantly"). [`WireSize`] computes the number of bytes a value would
//! occupy in a packed MPI message: fixed-width scalars at their natural size,
//! sequences as element payload plus an 8-byte length header.
//!
//! The TCP transport backend additionally needs to *move* those bytes, so
//! every metered type is also encodable: [`WireEncode`] is a supertrait of
//! [`WireSize`] (a value whose packed size we meter is a value we can pack),
//! and [`WireDecode`] is the receive-side inverse for owned (`Sized`) types.
//! The split is deliberate: borrowed payloads like `&[T]` have a wire size
//! and an encoding but no owned decoding, which the type system then rejects
//! at the receive call sites instead of at runtime.
//!
//! The format is little-endian and self-delimiting per field: scalars at
//! their natural width (`usize`/`isize` always as 8 bytes), sequences as a
//! `u64` length followed by the elements, `Option` as a one-byte tag. No
//! framing, versioning or field names — both ends are the same binary, and
//! the transport's envelope header carries the routing metadata.

use std::fmt;
use std::sync::Arc;

/// Error produced by [`WireDecode`] on malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// The bytes were present but do not form a valid value.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "wire input truncated: needed {needed} B, had {remaining} B"
                )
            }
            WireError::Invalid(what) => write!(f, "invalid wire input: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a received byte buffer for [`WireDecode`] implementations.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    #[inline]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes the next `n` bytes, or errors if fewer remain.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes a `u64` length prefix and sanity-checks it against the bytes
    /// left: a sequence of `len` elements needs at least `len * min_elem`
    /// more bytes, so a corrupt length cannot drive a huge allocation.
    #[inline]
    pub fn take_len(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let len = u64::wire_decode(self)?;
        let len = usize::try_from(len).map_err(|_| WireError::Invalid("length overflow"))?;
        if len
            .checked_mul(min_elem)
            .is_none_or(|b| b > self.remaining())
            && min_elem > 0
        {
            return Err(WireError::Truncated {
                needed: len.saturating_mul(min_elem),
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }
}

/// Packs a value into the byte form the TCP transport moves.
///
/// Supertrait of [`WireSize`]: every type the simulator meters is a type the
/// real wire can carry, so the send-side trait bounds of the communicator
/// never change between backends.
pub trait WireEncode {
    /// Appends the packed encoding of `self` to `out`.
    fn wire_encode(&self, out: &mut Vec<u8>);
}

/// Unpacks a value previously packed with [`WireEncode`].
///
/// Deliberately *not* a supertrait of [`WireSize`]: borrowed types (`&[T]`)
/// are metered and encodable but have no owned decoding, and receive call
/// sites carry this bound explicitly.
pub trait WireDecode: Sized {
    /// Reads one packed value from `r`.
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Number of bytes a value would occupy in a packed MPI message.
pub trait WireSize: WireEncode {
    /// Packed byte size of `self`.
    fn wire_bytes(&self) -> u64;
}

/// Packs `value` into a fresh buffer.
pub fn encode_to_vec<T: WireEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.wire_encode(&mut out);
    out
}

/// Unpacks one `T` from `buf`, requiring the buffer to be fully consumed
/// (trailing bytes mean the sender and receiver disagree about the type —
/// exactly the bug class this check exists to catch).
pub fn decode_from_slice<T: WireDecode>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let v = T::wire_decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::Invalid("trailing bytes after value"));
    }
    Ok(v)
}

/// An already-encoded payload travelling through a transport.
///
/// The TCP backend packs typed values into `WireBytes` at the communicator
/// layer (once per destination) and unpacks them at the matched receive; the
/// in-process simulator never constructs one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireBytes(pub Vec<u8>);

macro_rules! impl_wire_scalar {
    ($($t:ty),*) => {
        $(
            impl WireEncode for $t {
                #[inline]
                fn wire_encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl WireDecode for $t {
                #[inline]
                fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                    let b = r.take(std::mem::size_of::<$t>())?;
                    Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
                }
            }
            impl WireSize for $t {
                #[inline]
                fn wire_bytes(&self) -> u64 {
                    std::mem::size_of::<$t>() as u64
                }
            }
        )*
    };
}

impl_wire_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

// `usize`/`isize` travel as fixed 8-byte integers: the wire format must not
// depend on the host's pointer width.
impl WireEncode for usize {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (*self as u64).wire_encode(out);
    }
}

impl WireDecode for usize {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(u64::wire_decode(r)?).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl WireSize for usize {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        std::mem::size_of::<usize>() as u64
    }
}

impl WireEncode for isize {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (*self as i64).wire_encode(out);
    }
}

impl WireDecode for isize {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        isize::try_from(i64::wire_decode(r)?).map_err(|_| WireError::Invalid("isize overflow"))
    }
}

impl WireSize for isize {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        std::mem::size_of::<isize>() as u64
    }
}

impl WireEncode for bool {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl WireDecode for bool {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::wire_decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool byte")),
        }
    }
}

impl WireSize for bool {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        1
    }
}

impl WireEncode for () {
    #[inline]
    fn wire_encode(&self, _out: &mut Vec<u8>) {}
}

impl WireDecode for () {
    #[inline]
    fn wire_decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl WireSize for () {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        0
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::wire_decode(r)?, B::wire_decode(r)?))
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireEncode, B: WireEncode, C: WireEncode> WireEncode for (A, B, C) {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
        self.2.wire_encode(out);
    }
}

impl<A: WireDecode, B: WireDecode, C: WireDecode> WireDecode for (A, B, C) {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::wire_decode(r)?, B::wire_decode(r)?, C::wire_decode(r)?))
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_encode(out);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::wire_decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::wire_decode(r)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

impl<T: WireSize> WireSize for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<T: WireEncode, const N: usize> WireEncode for [T; N] {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        for v in self {
            v.wire_encode(out);
        }
    }
}

impl<T: WireDecode, const N: usize> WireDecode for [T; N] {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::wire_decode(r)?);
        }
        v.try_into().map_err(|_| WireError::Invalid("array length"))
    }
}

impl<T: WireSize, const N: usize> WireSize for [T; N] {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.iter().map(WireSize::wire_bytes).sum()
    }
}

fn encode_seq<T: WireEncode>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u64).wire_encode(out);
    for v in items {
        v.wire_encode(out);
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        encode_seq(self, out);
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Elements can encode to zero bytes (`()`), so the length guard uses
        // a zero minimum only for them; everything else needs ≥ 1 B each.
        let min = usize::from(std::mem::size_of::<T>() != 0);
        let len = r.take_len(min)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::wire_decode(r)?);
        }
        Ok(v)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        8 + self.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<T: WireEncode> WireEncode for &[T] {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        encode_seq(self, out);
    }
}

impl<T: WireSize> WireSize for &[T] {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        8 + self.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<T: WireEncode> WireEncode for Box<T> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (**self).wire_encode(out);
    }
}

impl<T: WireDecode> WireDecode for Box<T> {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::wire_decode(r)?))
    }
}

impl<T: WireSize> WireSize for Box<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

impl<T: WireEncode + ?Sized> WireEncode for Arc<T> {
    /// Encoding an `Arc` packs the pointee — serialization is where the
    /// zero-copy sharing of the simulated collectives genuinely ends.
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (**self).wire_encode(out);
    }
}

impl<T: WireDecode> WireDecode for Arc<T> {
    /// Decoding rebuilds a fresh, unshared `Arc` around the pointee.
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::wire_decode(r)?))
    }
}

impl<T: WireSize + ?Sized> WireSize for Arc<T> {
    /// An `Arc` payload is a *transport* artifact of the zero-copy simulated
    /// collectives: on a real wire the pointee would be packed and sent, so
    /// the wire size is the pointee's. This keeps metered communication
    /// volume identical between the clone-based and `Arc`-shared paths.
    #[inline]
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

impl WireEncode for String {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        encode_seq(self.as_bytes(), out);
    }
}

impl WireDecode for String {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("utf-8 string"))
    }
}

impl WireSize for String {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        8 + self.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_from_slice::<T>(&bytes).expect("decode"), v);
    }

    #[test]
    fn scalar_sizes() {
        assert_eq!(0u8.wire_bytes(), 1);
        assert_eq!(0u32.wire_bytes(), 4);
        assert_eq!(0u64.wire_bytes(), 8);
        assert_eq!(0f64.wire_bytes(), 8);
        assert_eq!(true.wire_bytes(), 1);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32, 3.0f64).wire_bytes(), 16);
        assert_eq!(vec![1u32; 10].wire_bytes(), 8 + 40);
        assert_eq!(Vec::<u64>::new().wire_bytes(), 8);
        assert_eq!(Some(5u64).wire_bytes(), 9);
        assert_eq!(None::<u64>.wire_bytes(), 1);
        assert_eq!("abc".to_string().wire_bytes(), 11);
    }

    #[test]
    fn nested_vec_of_tuples() {
        let v: Vec<(u32, u32, f64)> = vec![(0, 0, 0.0); 4];
        assert_eq!(v.wire_bytes(), 8 + 4 * 16);
    }

    #[test]
    fn arc_is_transparent() {
        let v = vec![1u32; 10];
        let inner = v.wire_bytes();
        assert_eq!(Arc::new(v).wire_bytes(), inner);
        assert_eq!(Arc::new(7u64).wire_bytes(), 8);
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(0x0123_4567_89ab_cdefu64);
        round_trip(-42i64);
        round_trip(7usize);
        round_trip(-7isize);
        round_trip(1.5f32);
        round_trip(f64::NEG_INFINITY);
        round_trip(true);
        round_trip(());
    }

    #[test]
    fn composite_round_trips() {
        round_trip((1u32, 2u64));
        round_trip((1u8, -2i32, 3.0f64));
        round_trip(Some(vec![1u16, 2, 3]));
        round_trip(None::<u64>);
        round_trip([1u64, 2, 3]);
        round_trip("héllo wïre".to_string());
        round_trip(Box::new((9usize, false)));
        round_trip(Vec::<()>::from([(), (), ()]));
    }

    #[test]
    fn arc_round_trip_rebuilds_pointee() {
        let v = Arc::new(vec![3u32, 1, 4]);
        let bytes = encode_to_vec(&v);
        let back: Arc<Vec<u32>> = decode_from_slice(&bytes).expect("decode");
        assert_eq!(*back, *v);
        assert_eq!(Arc::strong_count(&back), 1);
    }

    #[test]
    fn encoded_length_matches_wire_bytes_for_packed_types() {
        // For owned, packed types the codec emits exactly the metered bytes:
        // the logical volume the simulator reports is the physical volume
        // the TCP backend moves.
        let samples: Vec<Vec<u8>> = vec![
            encode_to_vec(&7u64),
            encode_to_vec(&vec![1u32, 2, 3]),
            encode_to_vec(&(1u32, 2u32, 3.0f64)),
            encode_to_vec(&Some(4u8)),
            encode_to_vec(&"abc".to_string()),
        ];
        let sizes = [
            7u64.wire_bytes(),
            vec![1u32, 2, 3].wire_bytes(),
            (1u32, 2u32, 3.0f64).wire_bytes(),
            Some(4u8).wire_bytes(),
            "abc".to_string().wire_bytes(),
        ];
        for (bytes, size) in samples.iter().zip(sizes) {
            assert_eq!(bytes.len() as u64, size);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(decode_from_slice::<Vec<u64>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&5u32);
        bytes.push(0);
        assert_eq!(
            decode_from_slice::<u32>(&bytes),
            Err(WireError::Invalid("trailing bytes after value"))
        );
    }

    #[test]
    fn corrupt_length_prefix_cannot_overallocate() {
        let mut bytes = Vec::new();
        u64::MAX.wire_encode(&mut bytes);
        assert!(matches!(
            decode_from_slice::<Vec<u64>>(&bytes),
            Err(WireError::Truncated { .. }) | Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn invalid_bool_and_option_tags_rejected() {
        assert_eq!(
            decode_from_slice::<bool>(&[2]),
            Err(WireError::Invalid("bool byte"))
        );
        assert_eq!(
            decode_from_slice::<Option<u8>>(&[9, 1]),
            Err(WireError::Invalid("option tag"))
        );
    }
}
