//! Edge cases of the two-phase update redistribution that the model-based
//! tests skip: per-rank empty tuple sets, total concentration of a batch
//! into a single block, index spaces smaller than the grid side (zero-width
//! blocks), and the documented clean rejection of non-square process
//! counts.

use dspgemm_core::grid::{block_range, owner_block, Grid};
use dspgemm_core::redistribute::redistribute;
use dspgemm_core::update::{apply_add, build_update_matrix, Dedup};
use dspgemm_core::DistMat;
use dspgemm_mpi::run;
use dspgemm_sparse::semiring::U64Plus;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::stats::PhaseTimer;

/// Only one rank (and not rank 0) contributes tuples; every other rank's
/// set is empty. Nothing may be lost, duplicated, or misrouted, and the
/// empty contributors must still complete both alltoall phases.
#[test]
fn single_nonzero_contributor_any_rank() {
    let n: Index = 30;
    for p in [4usize, 9] {
        for feeder in [1usize, p - 1] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mine: Vec<Triple<u64>> = if comm.rank() == feeder {
                    (0..n)
                        .flat_map(|r| (0..n).map(move |c| Triple::new(r, c, (r * n + c) as u64)))
                        .collect()
                } else {
                    vec![]
                };
                let mut timer = PhaseTimer::new();
                let got = redistribute(&grid, n, n, mine, &mut timer);
                let (i, j) = grid.coords();
                let rr = block_range(n, grid.q(), i);
                let cr = block_range(n, grid.q(), j);
                assert!(got
                    .iter()
                    .all(|t| rr.contains(&t.row) && cr.contains(&t.col)));
                got.len()
            });
            let total: usize = out.results.iter().sum();
            assert_eq!(total, (n * n) as usize, "p={p} feeder={feeder}");
        }
    }
}

/// Every rank's whole batch targets one single block: that owner receives
/// everything (deduplicated correctly through the update-matrix build) and
/// all other ranks' update application is the no-op fast path that keeps
/// their blocks untouched.
#[test]
fn all_tuples_concentrated_in_one_block() {
    let n: Index = 30;
    let out = run(9, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        // Target the last block: a cell owned by grid position (q-1, q-1).
        let target = n - 1;
        let mine: Vec<Triple<u64>> = (0..5)
            .map(|k| Triple::new(target, target - k, 1 + comm.rank() as u64))
            .collect();
        let mut mat = DistMat::<u64>::empty(&grid, n, n);
        let upd = build_update_matrix::<U64Plus>(&grid, n, n, mine, Dedup::Add, &mut timer);
        apply_add::<U64Plus>(&mut mat, &upd, 2);
        (upd.local_nnz(), mat.local_nnz(), upd.global_nnz(&grid))
    });
    // Exactly one rank owns every tuple; the per-coordinate dedup summed
    // all 9 ranks' contributions into 5 stored entries.
    let owners: Vec<_> = out.results.iter().filter(|&&(u, _, _)| u > 0).collect();
    assert_eq!(owners.len(), 1);
    assert_eq!(owners[0].0, 5);
    assert_eq!(owners[0].1, 5);
    assert!(out.results.iter().all(|&(_, _, g)| g == 5));
    // Everyone else's dynamic block stayed empty (the no-op apply path).
    assert_eq!(out.results.iter().map(|&(_, m, _)| m).sum::<usize>(), 5);
}

/// An index space smaller than the grid side: `block_range(n, q, b)` hands
/// the trailing blocks width zero, so some grid rows/columns own nothing.
/// Routing must still deliver every tuple to the (unique) owning block and
/// zero-width ranks must receive nothing.
#[test]
fn index_space_smaller_than_grid_side() {
    let n: Index = 2; // q = 3 for p = 9: block widths are 1, 1, 0.
    let out = run(9, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine: Vec<Triple<u64>> = vec![
            Triple::new(0, 0, 1 + comm.rank() as u64),
            Triple::new(0, 1, 10),
            Triple::new(1, 0, 20),
            Triple::new(1, 1, 30),
        ];
        let got = redistribute(&grid, n, n, mine, &mut timer);
        let (i, j) = grid.coords();
        let rr = block_range(n, grid.q(), i);
        let cr = block_range(n, grid.q(), j);
        // Zero-width ranks receive nothing; owners receive their cell from
        // all 9 contributors.
        if rr.is_empty() || cr.is_empty() {
            assert!(got.is_empty());
        } else {
            assert_eq!(got.len(), 9, "each rank contributed my cell once");
            assert!(got
                .iter()
                .all(|t| rr.contains(&t.row) && cr.contains(&t.col)));
        }
        got.len()
    });
    let total: usize = out.results.iter().sum();
    assert_eq!(total, 4 * 9);
    // owner_block agrees with block_range on the degenerate decomposition.
    for x in 0..n {
        let (b, lo) = owner_block(n, 3, x);
        let r = block_range(n, 3, b);
        assert!(r.contains(&x));
        assert_eq!(lo, r.start);
    }
}

/// Empty batches on every rank still run both phases and build valid empty
/// update matrices whose application is a no-op (the COW fast path).
#[test]
fn empty_batches_everywhere_build_valid_empty_updates() {
    let out = run(4, |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let n: Index = 12;
        let mut mat = DistMat::from_global_triples(
            &grid,
            n,
            n,
            if comm.rank() == 0 {
                vec![Triple::new(1u32, 2u32, 7u64)]
            } else {
                vec![]
            },
            1,
            &mut timer,
        );
        let before = mat.snapshot_csr();
        let upd = build_update_matrix::<U64Plus>(&grid, n, n, vec![], Dedup::Add, &mut timer);
        apply_add::<U64Plus>(&mut mat, &upd, 2);
        // The no-op apply left the cached snapshot image untouched: the
        // next publish re-shares the same `Arc` (COW) instead of
        // reconverting the block.
        let after = mat.snapshot_csr();
        (
            upd.local_nnz(),
            mat.local_nnz(),
            std::sync::Arc::ptr_eq(&before, &after),
        )
    });
    assert!(out.results.iter().all(|&(u, _, same)| u == 0 && same));
    assert_eq!(out.results.iter().map(|&(_, m, _)| m).sum::<usize>(), 1);
}

/// Non-square process counts are rejected with the documented panic — the
/// clean fallback (the same restriction CombBLAS imposes), not a hang or a
/// wrong grid.
#[test]
#[should_panic(expected = "not a perfect square")]
fn non_square_process_count_rejected_cleanly() {
    run(8, |comm| {
        let _ = Grid::new(comm);
    });
}
