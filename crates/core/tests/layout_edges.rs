//! Edge cases of the explicit [`Layout`] model and stripe migration that
//! the unit tests skip: zero-width stripes after a full corner collapse at
//! p = 9, migration correctness when all load concentrates on one rank,
//! index spaces smaller than the grid side, randomized properties of the
//! weighted cut solver, and the COW guarantee that a migration leaves
//! untouched blocks' cached snapshot images shared (`Arc::ptr_eq`).

use dspgemm_core::layout::{owner_of, rebalance_cuts, uniform_cuts};
use dspgemm_core::{DistMat, DynSpGemm, Grid, Layout, RebalanceConfig};
use dspgemm_mpi::run;
use dspgemm_sparse::semiring::U64Plus;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::stats::PhaseTimer;
use std::sync::Arc;

fn dense_triples(n: Index) -> Vec<Triple<u64>> {
    (0..n)
        .flat_map(|r| (0..n).map(move |c| Triple::new(r, c, 1 + (r * n + c) as u64)))
        .collect()
}

/// Migrating to a fully collapsed cut vector (`[0, n, n, n]` at q = 3)
/// concentrates the whole matrix on rank (0, 0); every other rank's ranges
/// are zero-width. Nothing may be lost and a second migration back to the
/// uniform cuts must restore the original distribution bit-identically.
#[test]
fn corner_collapse_and_back_at_p9() {
    let n: Index = 30;
    let out = run(9, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = if comm.rank() == 0 {
            dense_triples(n)
        } else {
            vec![]
        };
        let mut mat = DistMat::from_global_triples(&grid, n, n, mine, 1, &mut timer);
        let before = mat.gather_to_root(comm);
        let uniform_nnz = mat.local_nnz();
        let collapsed = Arc::new(Layout::square(vec![0, n, n, n]));
        mat.migrate_to(&grid, &collapsed, 1, &mut timer);
        let corner_nnz = mat.local_nnz();
        let mid = mat.gather_to_root(comm);
        // Zero-width ranks hold nothing; rank 0 holds everything.
        if comm.rank() == 0 {
            assert_eq!(corner_nnz, (n * n) as usize);
        } else {
            assert_eq!(corner_nnz, 0);
        }
        let back = Arc::new(Layout::square(uniform_cuts(n, grid.q())));
        mat.migrate_to(&grid, &back, 1, &mut timer);
        assert_eq!(
            mat.local_nnz(),
            uniform_nnz,
            "round trip restores the split"
        );
        let after = mat.gather_to_root(comm);
        if comm.rank() == 0 {
            let b = before.expect("root");
            assert_eq!(b, mid.expect("root"), "collapse loses nothing");
            assert_eq!(b, after.expect("root"), "round trip is lossless");
        }
    });
    assert_eq!(out.results.len(), 9);
}

/// A dynamic session whose entire update stream lands on one rank's block:
/// with an aggressive threshold the adaptive session migrates, and its
/// maintained `C` must stay bit-identical to a static rerun of the same
/// stream (u64 arithmetic — exact regardless of accumulation order).
#[test]
fn all_load_on_one_rank_migrates_and_matches_static_rerun() {
    let n: Index = 36;
    let arm = |adaptive: bool| {
        run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mine = if comm.rank() == 0 {
                (0..n).map(|i| Triple::new(i, (i + 1) % n, 1u64)).collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, mine.clone(), 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, mine, 1, &mut timer);
            let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
            if adaptive {
                eng.enable_rebalancing(RebalanceConfig {
                    threshold: 1.05,
                    cooldown: 0,
                });
            }
            // Every batch targets the top-left corner: all new load on the
            // rank owning stripe 0 until the cuts move.
            let hot = (n / 6).max(1) as u64;
            let mut rng = SplitMix64::new(0xBEEF ^ comm.rank() as u64);
            let mut cs = Vec::new();
            let mut migrated = 0u64;
            for _ in 0..4 {
                let batch: Vec<Triple<u64>> = (0..50)
                    .map(|_| {
                        Triple::new(rng.gen_range(hot) as Index, rng.gen_range(hot) as Index, 1)
                    })
                    .collect();
                eng.apply_algebraic(&grid, batch.clone(), batch);
                if adaptive {
                    eng.maybe_rebalance(&grid);
                    migrated = eng.rebalancer().expect("enabled").migrations();
                }
                cs.push(eng.c.gather_to_root(comm));
            }
            (cs, migrated)
        })
    };
    let static_ = arm(false);
    let adaptive = arm(true);
    let (cs_s, _) = &static_.results[0];
    let (cs_a, migrations) = &adaptive.results[0];
    assert!(
        *migrations >= 1,
        "corner-concentrated load above threshold must migrate"
    );
    for (i, (s, a)) in cs_s.iter().zip(cs_a).enumerate() {
        assert_eq!(
            s.as_ref().expect("root"),
            a.as_ref().expect("root"),
            "C after batch {i} differs from the static rerun"
        );
    }
}

/// An index space smaller than the grid side (n = 2, q = 3): the uniform
/// layout already carries zero-width trailing stripes, and migrating such
/// a matrix to a different degenerate cut vector must stay lossless.
#[test]
fn index_space_smaller_than_grid_side_migrates() {
    let n: Index = 2;
    let out = run(9, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = if comm.rank() == 3 {
            dense_triples(n)
        } else {
            vec![]
        };
        let mut mat = DistMat::from_global_triples(&grid, n, n, mine, 1, &mut timer);
        let before = mat.gather_to_root(comm);
        // Shift the single populated cell boundary: stripes 0 and 1 swap
        // widths (1,1,0) -> (2,0,0).
        let shifted = Arc::new(Layout::square(vec![0, n, n, n]));
        mat.migrate_to(&grid, &shifted, 1, &mut timer);
        let after = mat.gather_to_root(comm);
        if comm.rank() == 0 {
            assert_eq!(before.expect("root"), after.expect("root"));
        }
        mat.local_nnz()
    });
    assert_eq!(out.results.iter().sum::<usize>(), (2 * 2) as usize);
}

/// Randomized properties of the weighted cut solver: exactly `q + 1`
/// monotone cuts with pinned endpoints, zero-load fallback to the uniform
/// split, and a collapse of all load into one stripe splits that stripe.
#[test]
fn rebalance_cuts_properties() {
    let mut rng = SplitMix64::new(42);
    for _ in 0..200 {
        let q = 1 + rng.gen_range(6) as usize;
        let n = (q as u64 + rng.gen_range(500)) as Index;
        let old = uniform_cuts(n, q);
        let loads: Vec<u64> = (0..q).map(|_| rng.gen_range(1000)).collect();
        let new = rebalance_cuts(&old, &loads);
        assert_eq!(new.len(), q + 1);
        assert_eq!(new[0], 0);
        assert_eq!(*new.last().expect("q+1 cuts"), n);
        assert!(
            new.windows(2).all(|w| w[0] <= w[1]),
            "cuts must stay monotone: {new:?} from loads {loads:?}"
        );
        // Every stripe index remains addressable through owner_of.
        for x in [0, n / 2, n - 1] {
            let (b, lo) = owner_of(&new, x);
            assert!(new[b] <= x && x < new[b + 1]);
            assert_eq!(lo, new[b]);
        }
    }
    // All-zero loads: the documented uniform fallback.
    assert_eq!(
        rebalance_cuts(&[0, 10, 20, 30], &[0, 0, 0]),
        uniform_cuts(30, 3)
    );
    // All load on the first stripe: the solver splits it.
    let new = rebalance_cuts(&[0, 30, 60, 90], &[900, 0, 0]);
    assert_eq!(new[0], 0);
    assert_eq!(new[3], 90);
    assert!(new[1] < 30 && new[2] <= 30, "hot stripe splits: {new:?}");
}

/// The COW migration guarantee: a rank whose row/column ranges are
/// untouched by the new cuts keeps its block *and its cached CSR snapshot
/// image* — the same `Arc` before and after (`Arc::ptr_eq`), so the next
/// epoch publish re-shares it by refcount. A rank whose ranges moved gets
/// its cache dropped and rebuilt.
#[test]
fn migration_keeps_untouched_block_caches_shared() {
    let n: Index = 99;
    let out = run(9, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mine = if comm.rank() == 0 {
            dense_triples(n)
        } else {
            vec![]
        };
        let mut mat = DistMat::from_global_triples(&grid, n, n, mine, 1, &mut timer);
        let before = mat.snapshot_csr();
        // Uniform cuts are [0, 33, 66, 99]; moving only the first interior
        // cut leaves every stripe-2 range untouched.
        let new = Arc::new(Layout::square(vec![0, 20, 66, 99]));
        let stats = mat.migrate_to(&grid, &new, 1, &mut timer);
        let (i, j) = grid.coords();
        let untouched = i == 2 && j == 2;
        if untouched {
            assert!(!stats.changed, "stripe-2 ranges are identical");
            assert!(
                mat.snapshot_cached(),
                "unchanged block keeps its snapshot image"
            );
            assert!(
                Arc::ptr_eq(&before, &mat.snapshot_csr()),
                "COW: untouched block re-shares the pre-migration Arc"
            );
        } else {
            assert!(stats.changed, "rank ({i},{j}) ranges moved");
            assert!(
                !Arc::ptr_eq(&before, &mat.snapshot_csr()),
                "migrated block must rebuild its snapshot image"
            );
        }
        (untouched, mat.local_nnz())
    });
    assert_eq!(out.results.iter().filter(|&&(u, _)| u).count(), 1);
    assert_eq!(
        out.results.iter().map(|&(_, m)| m).sum::<usize>(),
        (n * n) as usize
    );
}
