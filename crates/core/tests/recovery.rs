//! End-to-end epoch-anchored recovery: a rank crashes mid-batch, the
//! survivors roll back to the agreed anchor, the crashed rank rebuilds as a
//! replacement from its buddy's replica, and deterministic replay makes the
//! final state bit-identical to the fault-free execution.

use dspgemm_core::dyn_algebraic::TransposeMode;
use dspgemm_core::engine::DynSpGemm;
use dspgemm_core::exec::Exec;
use dspgemm_core::recovery::RecoveryConfig;
use dspgemm_core::{DistMat, Grid, RebalanceConfig};
use dspgemm_mpi::{run, Comm, CommError};
use dspgemm_sparse::semiring::U64Plus;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::stats::PhaseTimer;

const N: Index = 20;

fn triples(seed: u64, count: usize) -> Vec<Triple<u64>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(N as u64) as Index,
                rng.gen_range(N as u64) as Index,
                rng.gen_range(5) + 1,
            )
        })
        .collect()
}

/// Rank-local update feed for one batch — a pure function of
/// `(batch, rank)`, so a replayed or re-submitted batch gets bit-identical
/// inputs.
fn batch_updates(batch: u64, rank: usize) -> (Vec<Triple<u64>>, Vec<Triple<u64>>) {
    let s = batch * 97 + rank as u64;
    (triples(1_000 + s, 5), triples(2_000 + s, 5))
}

/// What one rank observed over a full driven run.
type Outcome = (
    Vec<(u64, Vec<Triple<u64>>)>, // (batch, local C block) at each local commit
    Option<Vec<Triple<u64>>>,     // root-gathered final C
    u64,                          // final local flop counter
    u64,                          // final latest epoch number
    Vec<Triple<u64>>,             // pinned pre-crash snapshot's local C content at run end
    u64,                          // pinned epoch number
    u64,                          // recoveries this rank performed
);

/// Drives `batches` algebraic batches through the fault-tolerant path,
/// optionally arming a crash on `crash = (rank, batch)`, recovering and
/// re-submitting uncommitted batches until all commit.
fn drive(comm: &Comm, batches: u64, crash: Option<(usize, u64)>, cfg: RecoveryConfig) -> Outcome {
    let grid = Grid::new(comm);
    let me = comm.rank();
    let mut timer = PhaseTimer::new();
    let feed = |s: u64| if me == 0 { triples(s, 60) } else { vec![] };
    let a = DistMat::from_global_triples(&grid, N, N, feed(1), 1, &mut timer);
    let b = DistMat::from_global_triples(&grid, N, N, feed(2), 1, &mut timer);
    let mut session = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
    session.enable_recovery(&grid, cfg);
    let mut eng = Some(session);

    let mut per_batch = Vec::new();
    let mut pinned = None;
    let mut armed = false;
    let mut recoveries = 0u64;
    let mut b_idx = 0u64;
    while b_idx < batches {
        if let Some((crank, cbatch)) = crash {
            if me == crank && b_idx == cbatch && !armed {
                comm.arm_crash(1);
                armed = true;
            }
        }
        let (a_ups, b_ups) = batch_updates(b_idx, me);
        let mut e = eng.take().expect("engine present between batches");
        match e.try_apply_algebraic(&grid, a_ups, b_ups) {
            Ok(()) => {
                e.publish();
                // Observe each committed batch from the published snapshot:
                // a local, bit-stable read. (A cross-rank gather here would
                // race the asynchronous failure notification — collectives
                // between batches must sit inside a failure-aware region,
                // which is exactly the serving-path reason reads go through
                // snapshots.) A rank interrupted mid-batch never locally
                // publishes that epoch — replay realigns its state, but the
                // observation for that one batch is genuinely absent, so
                // entries carry their batch index.
                let snap = e.snapshot();
                per_batch.push((b_idx, snap.c().block().to_triples()));
                drop(snap);
                if b_idx == 0 {
                    // Pin the epoch of batch 0: it must stay bit-stable
                    // through the crash, rollback and replay.
                    pinned = Some(e.snapshot());
                }
                eng = Some(e);
                b_idx += 1;
            }
            Err(CommError::PeerFailed { rank }) => {
                assert_eq!(rank, crash.expect("injected failure").0);
                let report = e.recover(&grid);
                assert_eq!(report.failed_ranks, vec![rank]);
                // The furthest-ahead rank rolled back exactly the window
                // replay re-applies.
                assert_eq!(report.replayed_batches, report.rollback_epochs);
                recoveries += 1;
                b_idx = report.committed_publishes - 1;
                eng = Some(e);
            }
            Err(CommError::Crashed { rank }) => {
                assert_eq!(rank, me);
                drop(e); // the crashed session is unrecoverable state
                let (e2, report) = DynSpGemm::<U64Plus>::recover_as_replacement(
                    &grid,
                    Exec::new(1),
                    TransposeMode::default(),
                    cfg,
                );
                assert_eq!(report.failed_ranks, vec![me]);
                recoveries += 1;
                b_idx = report.committed_publishes - 1;
                eng = Some(e2);
            }
            Err(other) => panic!("unexpected comm error: {other}"),
        }
    }
    let e = eng.take().expect("engine present at end");
    let final_c = e.c.gather_to_root(comm);
    let flops = e.flops;
    let epoch = e.epoch().expect("published");
    let pinned = pinned.expect("batch 0 always commits before any crash at batch >= 1");
    // Retention: the pin keeps exactly one extra epoch alive on ranks whose
    // store survived; the replacement's fresh store holds only its latest
    // (the pinned Arc outlives the old store independently).
    let crashed_here = crash.map(|(r, _)| r == me).unwrap_or(false);
    assert_eq!(e.snapshots().retained(), if crashed_here { 1 } else { 2 });
    let pin_content = pinned.c().block().to_triples();
    let pin_epoch = pinned.epoch();
    drop(pinned);
    assert_eq!(
        e.snapshots().retained(),
        1,
        "dropping the pin frees the epoch"
    );
    (
        per_batch,
        final_c,
        flops,
        epoch,
        pin_content,
        pin_epoch,
        recoveries,
    )
}

/// Crash vs. fault-free must agree bit-for-bit: per-batch root-gathered C,
/// final C, flop counters, and pinned pre-crash epochs. Exercised both with
/// the crash landing on a write-ahead-log exchange (anchor_period large) and
/// on an anchor refresh (anchor_period small, two-window rollback).
#[test]
fn crash_recovery_matches_fault_free_run() {
    for (p, crash_rank) in [(4usize, 2usize), (9, 4)] {
        for anchor_period in [2u64, 4] {
            let batches = 6u64;
            let cfg = RecoveryConfig {
                anchor_period,
                max_log: 16,
            };
            let baseline = run(p, move |comm| drive(comm, batches, None, cfg));
            let crashed = run(p, move |comm| {
                drive(comm, batches, Some((crash_rank, 2)), cfg)
            });
            for rank in 0..p {
                let (pb_ff, fc_ff, fl_ff, ep_ff, pin_ff, pe_ff, rec_ff) = &baseline.results[rank];
                let (pb_cr, fc_cr, fl_cr, ep_cr, pin_cr, pe_cr, rec_cr) = &crashed.results[rank];
                // The fault-free arm observed every batch; the crash arm may
                // lack at most one observation per recovery (a survivor
                // interrupted mid-batch never locally publishes that epoch),
                // and every observation it did make must match bit-for-bit.
                assert_eq!(pb_ff.len() as u64, batches);
                assert!(
                    pb_cr.len() as u64 >= batches - rec_cr,
                    "p={p} ap={anchor_period} rank={rank}: more than one observation lost per recovery"
                );
                for (b, c_cr) in pb_cr {
                    let (_, c_ff) = &pb_ff[*b as usize];
                    assert_eq!(
                        c_ff, c_cr,
                        "p={p} ap={anchor_period} rank={rank} batch={b}: per-batch C diverged"
                    );
                }
                assert_eq!(pb_cr.last().map(|(b, _)| *b), Some(batches - 1));
                assert_eq!(
                    fc_ff, fc_cr,
                    "p={p} ap={anchor_period} rank={rank}: final C diverged"
                );
                assert_eq!(
                    fl_ff, fl_cr,
                    "p={p} ap={anchor_period} rank={rank}: flops diverged"
                );
                // Recovery inserts exactly one uniform extra epoch.
                assert_eq!(*ep_cr, ep_ff + 1, "p={p} ap={anchor_period} rank={rank}");
                assert_eq!(
                    pin_ff, pin_cr,
                    "p={p} ap={anchor_period} rank={rank}: pinned epoch content diverged"
                );
                assert_eq!(pe_ff, pe_cr);
                assert_eq!(*rec_ff, 0);
                assert_eq!(*rec_cr, 1);
            }
            // The fault-free arm sent no failure traffic at all.
            assert_eq!(baseline.results.len(), p);
        }
    }
}

/// The write-ahead discipline is asserted, not assumed: applying a second
/// batch without publishing the first panics.
#[test]
fn try_apply_requires_publish_between_batches() {
    let out = run(1, |comm| {
        let grid = Grid::new(comm);
        let a = DistMat::<u64>::empty(&grid, 8, 8);
        let b = DistMat::<u64>::empty(&grid, 8, 8);
        let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
        eng.enable_recovery(&grid, RecoveryConfig::default());
        eng.try_apply_algebraic(&grid, vec![Triple::new(0, 0, 1u64)], vec![])
            .expect("fault-free");
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = eng.try_apply_algebraic(&grid, vec![], vec![]);
        }))
        .is_err()
    });
    assert!(out.results[0]);
}

/// Recovery and dynamic rebalancing are mutually exclusive, both ways.
#[test]
fn recovery_excludes_rebalancing() {
    let out = run(1, |comm| {
        let grid = Grid::new(comm);
        let mk = |grid: &Grid| {
            let a = DistMat::<u64>::empty(grid, 8, 8);
            let b = DistMat::<u64>::empty(grid, 8, 8);
            DynSpGemm::<U64Plus>::new(grid, a, b, 1, false)
        };
        let mut eng = mk(&grid);
        eng.enable_recovery(&grid, RecoveryConfig::default());
        let a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.enable_rebalancing(RebalanceConfig::default());
        }))
        .is_err();
        let mut eng2 = mk(&grid);
        eng2.enable_rebalancing(RebalanceConfig::default());
        let b = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng2.enable_recovery(&grid, RecoveryConfig::default());
        }))
        .is_err();
        a && b
    });
    assert!(out.results[0]);
}

/// The log stays bounded by the two-anchor window: after many batches with a
/// small anchor period, both the own log and the replica log hold at most
/// two windows of entries.
#[test]
fn log_stays_bounded_by_anchor_windows() {
    let out = run(4, |comm| {
        let grid = Grid::new(comm);
        let me = comm.rank();
        let mut timer = PhaseTimer::new();
        let feed = |s: u64| if me == 0 { triples(s, 60) } else { vec![] };
        let a = DistMat::from_global_triples(&grid, N, N, feed(1), 1, &mut timer);
        let b = DistMat::from_global_triples(&grid, N, N, feed(2), 1, &mut timer);
        let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
        let cfg = RecoveryConfig {
            anchor_period: 3,
            max_log: 64,
        };
        eng.enable_recovery(&grid, cfg);
        let mut max_log = 0usize;
        for batch in 0..20u64 {
            let (a_ups, b_ups) = batch_updates(batch, me);
            eng.try_apply_algebraic(&grid, a_ups, b_ups)
                .expect("fault-free");
            eng.publish();
            let rec = eng.recovery().expect("enabled");
            max_log = max_log.max(rec.log_len()).max(rec.replica_log_len());
        }
        let rec = eng.recovery().expect("enabled");
        // Anchors advanced with the batches (initial anchor is at counter 1).
        (
            max_log,
            rec.anchor_published() > 1,
            rec.prev_anchor_published().is_some(),
        )
    });
    for (max_log, advanced, has_prev) in out.results {
        assert!(
            max_log <= 2 * 3,
            "log grew past two anchor windows: {max_log}"
        );
        assert!(advanced && has_prev);
    }
}
