//! Epoch-versioned snapshots: immutable published matrix state.
//!
//! The engine alternates update batches with dynamic SpGEMM recomputation,
//! but a serving system cannot stall every analytics query while a batch
//! drains. This module removes the last mutable-shared-state coupling
//! between the update path and the query path:
//!
//! * the engine's `A` and `C` stay **private working copies** that the
//!   `apply_*` paths mutate freely;
//! * after committed batches the engine *publishes* an immutable
//!   [`Snapshot`] — `{A, C, epoch}` with each local block behind an
//!   `Arc<Csr>` handle. Epochs number *publishes*, not batches: the engine
//!   publishes lazily on [`snapshot()`](crate::engine::DynSpGemm::snapshot)
//!   (several batches may fold into one epoch), while the analytics
//!   session publishes eagerly per commit;
//! * readers *pin* an epoch by cloning the `Arc`. A pinned snapshot never
//!   changes: queries against epoch `e` are bit-identical to the state at
//!   its publish time no matter how many batches commit concurrently.
//!
//! ## Block-granular copy-on-write
//!
//! Publishing does **not** deep-copy the matrices. [`crate::distmat::DistMat`]
//! caches the CSR image of its local block and invalidates the cache only
//! when the block is actually mutated, so a publish re-converts exactly the
//! blocks a batch touched; untouched blocks are re-shared into the new epoch
//! by a refcount increment ([`Arc::ptr_eq`] across consecutive epochs — the
//! property the snapshot tests assert). On a 2D grid a batch that routes no
//! tuples to a rank leaves that rank's operand block shared across epochs.
//!
//! ## Retention
//!
//! [`SnapshotStore`] keeps one strong handle (the latest epoch) plus weak
//! handles to every epoch ever published. Old epochs therefore live exactly
//! as long as some reader pins them: drop the last pin and the epoch's
//! unshared blocks are freed immediately. [`SnapshotStore::retained`] and
//! [`Snapshot::heap_bytes`] feed the memory-bound regression test.

use crate::distmat::{BlockInfo, Elem};
use crate::grid::Grid;
use dspgemm_mpi::Comm;
use dspgemm_sparse::{Csr, Index, Triple};
use std::sync::{Arc, Weak};

/// One rank's immutable block of a published distributed matrix.
///
/// The block is a column-sorted CSR behind an `Arc`: cloning a
/// `SnapshotMat` (or the [`Snapshot`] holding it) is a refcount increment,
/// never a copy of the data. All read methods mirror the live
/// [`DistMat`](crate::distmat::DistMat) query surface so callers can move
/// from live reads to pinned reads without changing result types.
#[derive(Debug, Clone)]
pub struct SnapshotMat<V> {
    info: BlockInfo,
    block: Arc<Csr<V>>,
}

impl<V: Elem> SnapshotMat<V> {
    /// Wraps a published block (shape must match the placement info).
    pub fn new(info: BlockInfo, block: Arc<Csr<V>>) -> Self {
        assert_eq!(block.nrows(), info.local_rows(), "block shape mismatch");
        assert_eq!(block.ncols(), info.local_cols(), "block shape mismatch");
        Self { info, block }
    }

    /// Block placement info.
    #[inline]
    pub fn info(&self) -> &BlockInfo {
        &self.info
    }

    /// The immutable local block.
    #[inline]
    pub fn block(&self) -> &Csr<V> {
        &self.block
    }

    /// The shared block handle (for `Arc::ptr_eq` sharing checks and
    /// zero-copy hand-off to collectives).
    #[inline]
    pub fn block_shared(&self) -> Arc<Csr<V>> {
        Arc::clone(&self.block)
    }

    /// Local non-zero count.
    #[inline]
    pub fn local_nnz(&self) -> usize {
        self.block.nnz()
    }

    /// Global non-zero count (allreduce; collective over the grid).
    pub fn global_nnz(&self, grid: &Grid) -> u64 {
        grid.world()
            .allreduce(self.block.nnz() as u64, |a, b| a + b)
    }

    /// Reads a single global entry (local lookup; `None` when the
    /// coordinate belongs to another rank's block).
    pub fn get_local(&self, r: Index, c: Index) -> Option<Option<V>> {
        if self.info.row_range.contains(&r) && self.info.col_range.contains(&c) {
            let (lr, lc) = self.info.to_local(r, c);
            Some(self.block.get(lr, lc))
        } else {
            None
        }
    }

    /// Reads a single global entry from whichever rank owns it and
    /// broadcasts the result — the pinned-epoch point lookup. Collective;
    /// all ranks must hold the same epoch and pass the same coordinate.
    pub fn get_collective(&self, grid: &Grid, r: Index, c: Index) -> Option<V> {
        let (bi, _) = crate::grid::owner_block(self.info.nrows, grid.q(), r);
        let (bj, _) = crate::grid::owner_block(self.info.ncols, grid.q(), c);
        let owner = grid.rank_of(bi, bj);
        let mine = if grid.world().rank() == owner {
            Some(self.get_local(r, c).expect("owner rank holds the block"))
        } else {
            None
        };
        grid.world().bcast(owner, mine)
    }

    /// This rank's entries of global row `u`, globally indexed (empty when
    /// the row lives on another grid row). Local; feed into a merge
    /// collective for the full row.
    pub fn row_local(&self, u: Index) -> Vec<(Index, V)> {
        if !self.info.row_range.contains(&u) {
            return Vec::new();
        }
        let lr = u - self.info.row_range.start;
        let (cols, vals) = self.block.row(lr);
        cols.iter()
            .zip(vals)
            .map(|(&lc, &v)| (lc + self.info.col_range.start, v))
            .collect()
    }

    /// The `k` heaviest entries of global row `u` under `score` (greater is
    /// better; ties broken by column). One zero-copy allgather merge; every
    /// rank returns the same list. `score` must be a pure function agreed on
    /// all ranks. Collective.
    pub fn row_topk(
        &self,
        grid: &Grid,
        u: Index,
        k: usize,
        score: impl Fn(&V) -> f64,
    ) -> Vec<(Index, V)> {
        let mine = self.row_local(u);
        let mut all: Vec<(Index, V)> = grid
            .world()
            .allgather_shared(Arc::new(mine))
            .iter()
            .flat_map(|part| part.iter().copied())
            .collect();
        all.sort_unstable_by(|(ca, va), (cb, vb)| {
            score(vb)
                .partial_cmp(&score(va))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ca.cmp(cb))
        });
        all.truncate(k);
        all
    }

    /// Folds every local entry (global coordinates) into `init` and
    /// allreduces the per-rank folds with `combine`. Every rank returns the
    /// total. Collective.
    pub fn aggregate<T>(
        &self,
        grid: &Grid,
        init: T,
        mut fold: impl FnMut(T, Index, Index, V) -> T,
        combine: impl FnMut(T, T) -> T,
    ) -> T
    where
        T: Clone + Send + dspgemm_util::WireSize + dspgemm_util::WireDecode + 'static,
    {
        let mut acc = init;
        for lr in 0..self.block.nrows() {
            let (cols, vals) = self.block.row(lr);
            for (&lc, &v) in cols.iter().zip(vals) {
                let (gr, gc) = self.info.to_global(lr, lc);
                acc = fold(acc, gr, gc, v);
            }
        }
        grid.world().allreduce(acc, combine)
    }

    /// Local entries as globally-indexed triples (row-major).
    pub fn to_global_triples(&self) -> Vec<Triple<V>> {
        self.block
            .to_triples()
            .into_iter()
            .map(|t| {
                let (r, c) = self.info.to_global(t.row, t.col);
                Triple::new(r, c, t.val)
            })
            .collect()
    }

    /// Gathers the whole published matrix to world rank 0 as sorted global
    /// triples (testing/diagnostics; collective over the grid).
    pub fn gather_to_root(&self, comm: &Comm) -> Option<Vec<Triple<V>>> {
        let mine = self.to_global_triples();
        comm.gather(0, mine).map(|parts| {
            let mut all: Vec<Triple<V>> = parts.into_iter().flatten().collect();
            dspgemm_sparse::triple::sort_row_major(&mut all);
            all
        })
    }

    /// Heap bytes of the underlying block. Blocks shared with another epoch
    /// count here too — use [`Snapshot::heap_bytes_unshared`] for
    /// deduplicated accounting across epochs.
    pub fn heap_bytes(&self) -> usize {
        self.block.heap_bytes()
    }

    /// Raw pointer identity of the shared block (COW sharing diagnostics).
    pub fn block_ptr(&self) -> *const Csr<V> {
        Arc::as_ptr(&self.block)
    }
}

/// One published epoch: the operand `A`, the maintained product `C`, and
/// the epoch number. Immutable; clone (refcount) to pin.
#[derive(Debug, Clone)]
pub struct Snapshot<V> {
    epoch: u64,
    a: SnapshotMat<V>,
    c: SnapshotMat<V>,
}

impl<V: Elem> Snapshot<V> {
    /// Assembles a published epoch.
    pub fn new(epoch: u64, a: SnapshotMat<V>, c: SnapshotMat<V>) -> Self {
        Self { epoch, a, c }
    }

    /// The epoch number: epoch `e` is the state after the `e`-th publish
    /// (epoch 0 is the initial product).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The published operand matrix `A`.
    #[inline]
    pub fn a(&self) -> &SnapshotMat<V> {
        &self.a
    }

    /// The published product matrix `C`.
    #[inline]
    pub fn c(&self) -> &SnapshotMat<V> {
        &self.c
    }

    /// Heap bytes of this epoch's blocks, counting blocks shared with other
    /// epochs in full.
    pub fn heap_bytes(&self) -> usize {
        self.a.heap_bytes() + self.c.heap_bytes()
    }

    /// Heap bytes of this epoch's blocks, skipping any block whose pointer
    /// appears in `seen` (and recording the ones counted) — so summing over
    /// live epochs charges each COW-shared block once.
    pub fn heap_bytes_unshared(&self, seen: &mut Vec<*const ()>) -> usize {
        let mut total = 0;
        for ptr_bytes in [
            (self.a.block_ptr() as *const (), self.a.heap_bytes()),
            (self.c.block_ptr() as *const (), self.c.heap_bytes()),
        ] {
            if !seen.contains(&ptr_bytes.0) {
                seen.push(ptr_bytes.0);
                total += ptr_bytes.1;
            }
        }
        total
    }
}

/// The per-rank registry of published epochs: one strong handle to the
/// latest, weak handles to everything older — old epochs are dropped the
/// moment their last reader pin goes away.
#[derive(Debug)]
pub struct SnapshotStore<T> {
    latest: Option<Arc<T>>,
    history: Vec<Weak<T>>,
    published: u64,
}

impl<T> Default for SnapshotStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SnapshotStore<T> {
    /// An empty store (no epoch published yet).
    pub fn new() -> Self {
        Self {
            latest: None,
            history: Vec::new(),
            published: 0,
        }
    }

    /// Number of epochs ever published (the next epoch number).
    #[inline]
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Publishes the next epoch: the closure receives the epoch number that
    /// the payload must carry. The previous epoch is demoted to a weak
    /// handle (it stays alive only while some reader pins it); dead history
    /// entries are pruned so the store's own footprint stays bounded.
    pub fn publish_with(&mut self, build: impl FnOnce(u64) -> T) -> Arc<T> {
        let snap = Arc::new(build(self.published));
        self.published += 1;
        self.history.retain(|w| w.strong_count() > 0);
        self.history.push(Arc::downgrade(&snap));
        self.latest = Some(Arc::clone(&snap));
        snap
    }

    /// The latest published epoch (`None` before the first publish).
    #[inline]
    pub fn latest(&self) -> Option<&Arc<T>> {
        self.latest.as_ref()
    }

    /// Fast-forwards a *fresh* store's publish counter to `published`, so
    /// a replacement rank rebuilt from a recovery anchor numbers its
    /// replayed epochs exactly like the epochs the crashed rank published.
    /// (Pre-crash pins died with the crashed rank; its history starts
    /// empty.)
    ///
    /// # Panics
    /// Panics if the store has already published anything.
    pub fn resume_at(&mut self, published: u64) {
        assert!(
            self.latest.is_none() && self.published == 0 && self.history.is_empty(),
            "resume_at requires a fresh store"
        );
        self.published = published;
    }

    /// Number of epochs still alive: the latest plus every older epoch some
    /// reader still pins. The retention bound: with no outstanding pins this
    /// is at most 1 regardless of how many epochs were published.
    pub fn retained(&self) -> usize {
        self.history.iter().filter(|w| w.strong_count() > 0).count()
    }

    /// Strong handles to every live epoch, oldest first (memory accounting
    /// and diagnostics).
    pub fn live(&self) -> Vec<Arc<T>> {
        self.history.iter().filter_map(Weak::upgrade).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_retains_only_pinned_epochs() {
        let mut store: SnapshotStore<u64> = SnapshotStore::new();
        assert_eq!(store.retained(), 0);
        assert!(store.latest().is_none());

        let e0 = store.publish_with(|e| e);
        assert_eq!(*e0, 0);
        let pin0 = Arc::clone(store.latest().unwrap());
        for _ in 0..10 {
            store.publish_with(|e| e);
        }
        // Latest plus the explicit pins of epoch 0 (e0 and pin0).
        assert_eq!(store.published(), 11);
        assert_eq!(store.retained(), 2);
        assert_eq!(*store.latest().unwrap().as_ref(), 10);
        drop(pin0);
        drop(e0);
        // Unpinned: every intermediate epoch is gone, only the latest lives.
        assert_eq!(store.retained(), 1);
        assert_eq!(store.live().len(), 1);
    }

    #[test]
    fn history_is_pruned_on_publish() {
        let mut store: SnapshotStore<u64> = SnapshotStore::new();
        for _ in 0..100 {
            store.publish_with(|e| e);
        }
        // Dead weak handles are pruned as new epochs arrive: the history
        // cannot grow with the number of published epochs.
        assert!(store.history.len() <= 2);
    }
}
