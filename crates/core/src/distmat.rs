//! Distributed matrices: a 2D-block-distributed shell around local storage.
//!
//! Every matrix in the framework is "fully distributed … each MPI process
//! stores a block of the matrix" (Section IV). [`DistMat`] is the *dynamic*
//! kind (DHB local block, supports in-place updates); [`DistDcsr`] holds
//! hypersparse static blocks (update matrices, SpGEMM intermediates). The
//! framework "requires the user to mark dynamic matrices and update matrices
//! appropriately" — in this reproduction the marking is the Rust type.

use crate::grid::Grid;
use crate::layout::{uniform_layout, Layout};
use crate::redistribute::redistribute_in;
use dspgemm_mpi::Comm;
use dspgemm_sparse::{Csr, Dcsr, DhbMatrix, Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use dspgemm_util::{WireDecode, WireSize};
use std::ops::Range;
use std::sync::Arc;

/// Bound alias for distributable element types.
pub trait Elem:
    Copy + Send + Sync + PartialEq + std::fmt::Debug + WireSize + WireDecode + 'static
{
}

impl<T> Elem for T where
    T: Copy + Send + Sync + PartialEq + std::fmt::Debug + WireSize + WireDecode + 'static
{
}

/// Shape and placement of this rank's block of a distributed matrix.
///
/// Carries the full [`Layout`] (shared, one `Arc` per matrix) so that
/// redistribution routing, collective lookups, and SUMMA round offsets all
/// read the *matrix's* cut points rather than assuming the uniform split —
/// the distribution itself is dynamic once the engine's rebalancer moves
/// the cuts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Global row count.
    pub nrows: Index,
    /// Global column count.
    pub ncols: Index,
    /// Global rows owned by this rank.
    pub row_range: Range<Index>,
    /// Global columns owned by this rank.
    pub col_range: Range<Index>,
    layout: Arc<Layout>,
}

impl BlockInfo {
    /// Computes this rank's block of an `nrows × ncols` matrix on `grid`
    /// under the uniform (static) layout.
    pub fn for_rank(grid: &Grid, nrows: Index, ncols: Index) -> Self {
        Self::for_rank_in(grid, &uniform_layout(nrows, ncols, grid.q()))
    }

    /// Computes this rank's block under an explicit layout.
    pub fn for_rank_in(grid: &Grid, layout: &Arc<Layout>) -> Self {
        assert_eq!(layout.q(), grid.q(), "layout must target the grid side");
        let (i, j) = grid.coords();
        Self {
            nrows: layout.nrows(),
            ncols: layout.ncols(),
            row_range: layout.row_range(i),
            col_range: layout.col_range(j),
            layout: Arc::clone(layout),
        }
    }

    /// The distribution's cut points (shared across the matrix's ranks).
    #[inline]
    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// The world rank owning global position `(r, c)` under this layout.
    #[inline]
    pub fn owner_rank(&self, grid: &Grid, r: Index, c: Index) -> usize {
        let (bi, _) = self.layout.row_owner(r);
        let (bj, _) = self.layout.col_owner(c);
        grid.rank_of(bi, bj)
    }

    /// Local block height.
    #[inline]
    pub fn local_rows(&self) -> Index {
        self.row_range.end - self.row_range.start
    }

    /// Local block width.
    #[inline]
    pub fn local_cols(&self) -> Index {
        self.col_range.end - self.col_range.start
    }

    /// Converts a global coordinate (must lie in this block) to block-local.
    #[inline]
    pub fn to_local(&self, r: Index, c: Index) -> (Index, Index) {
        debug_assert!(self.row_range.contains(&r) && self.col_range.contains(&c));
        (r - self.row_range.start, c - self.col_range.start)
    }

    /// Converts a block-local coordinate to global.
    #[inline]
    pub fn to_global(&self, lr: Index, lc: Index) -> (Index, Index) {
        (lr + self.row_range.start, lc + self.col_range.start)
    }
}

/// What one [`DistMat::migrate_to`] call did on this rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Entries whose owner changed away from this rank (sent).
    pub moved_out: usize,
    /// Entries whose owner changed to this rank (received).
    pub moved_in: usize,
    /// Whether this rank's ranges changed (block rebuilt, CSR cache
    /// dropped); `false` means the block and its cache survived untouched.
    pub changed: bool,
}

/// A dynamic distributed matrix: DHB blocks on a 2D grid.
///
/// Alongside the mutable DHB block the matrix keeps a lazily-built, shared
/// CSR image of the block (`csr_cache`) for the snapshot layer: the cache is
/// invalidated whenever the block is actually mutated and rebuilt on the
/// next [`DistMat::snapshot_csr`] call — so publishing an epoch after a
/// batch converts exactly the blocks the batch touched, and untouched blocks
/// are re-shared into the new epoch by a refcount increment (block-granular
/// copy-on-write; see [`crate::snapshot`]).
#[derive(Debug, Clone)]
pub struct DistMat<V> {
    info: BlockInfo,
    block: DhbMatrix<V>,
    csr_cache: Option<Arc<Csr<V>>>,
}

impl<V: Elem> DistMat<V> {
    /// An empty dynamic matrix of global shape `nrows × ncols` under the
    /// uniform layout.
    pub fn empty(grid: &Grid, nrows: Index, ncols: Index) -> Self {
        Self::empty_in(grid, &uniform_layout(nrows, ncols, grid.q()))
    }

    /// An empty dynamic matrix under an explicit layout.
    pub fn empty_in(grid: &Grid, layout: &Arc<Layout>) -> Self {
        let info = BlockInfo::for_rank_in(grid, layout);
        let block = DhbMatrix::new(info.local_rows(), info.local_cols());
        Self {
            info,
            block,
            csr_cache: None,
        }
    }

    /// Builds from rank-local triples with **global** indices: redistributes
    /// them to their owners (two-phase counting-sort alltoall) and inserts
    /// into the local dynamic block with `threads`-way `(i mod T)`
    /// parallelism. Duplicate coordinates keep the last value, matching
    /// "insert" semantics. Collective over the grid.
    pub fn from_global_triples(
        grid: &Grid,
        nrows: Index,
        ncols: Index,
        triples: Vec<Triple<V>>,
        threads: usize,
        timer: &mut PhaseTimer,
    ) -> Self {
        let mut mat = Self::empty(grid, nrows, ncols);
        mat.insert_global_triples(grid, triples, threads, timer);
        mat
    }

    /// Redistributes globally-indexed triples and inserts them (last write
    /// wins). Collective over the grid.
    pub fn insert_global_triples(
        &mut self,
        grid: &Grid,
        triples: Vec<Triple<V>>,
        threads: usize,
        timer: &mut PhaseTimer,
    ) {
        let mine = redistribute_in(grid, self.info.layout(), triples, timer);
        let local = timer.time(crate::redistribute::phase::LOCAL_CONSTRUCT, || {
            self.to_local_triples(mine)
        });
        if local.is_empty() {
            return;
        }
        self.csr_cache = None;
        timer.time(crate::redistribute::phase::LOCAL_ADDITION, || {
            crate::update::apply_local_triples_set(&mut self.block, &local, threads);
        });
    }

    fn to_local_triples(&self, global: Vec<Triple<V>>) -> Vec<Triple<V>> {
        global
            .into_iter()
            .map(|t| {
                let (lr, lc) = self.info.to_local(t.row, t.col);
                Triple::new(lr, lc, t.val)
            })
            .collect()
    }

    /// Block placement info.
    #[inline]
    pub fn info(&self) -> &BlockInfo {
        &self.info
    }

    /// The local dynamic block (block-local indices).
    #[inline]
    pub fn block(&self) -> &DhbMatrix<V> {
        &self.block
    }

    /// Mutable access to the local block. Conservatively invalidates the
    /// cached CSR snapshot image: the next [`DistMat::snapshot_csr`] call
    /// rebuilds it. Callers that can prove a batch leaves the block
    /// untouched (empty update block) should skip the call instead — that
    /// is what keeps publishing copy-on-write at block granularity.
    #[inline]
    pub fn block_mut(&mut self) -> &mut DhbMatrix<V> {
        self.csr_cache = None;
        &mut self.block
    }

    /// Local non-zero count.
    #[inline]
    pub fn local_nnz(&self) -> usize {
        self.block.nnz()
    }

    /// Global non-zero count (allreduce; collective over the grid).
    pub fn global_nnz(&self, grid: &Grid) -> u64 {
        grid.world()
            .allreduce(self.block.nnz() as u64, |a, b| a + b)
    }

    /// Reads a single global entry (local lookup; returns `None` when the
    /// coordinate belongs to another rank's block).
    pub fn get_local(&self, r: Index, c: Index) -> Option<Option<V>> {
        if self.info.row_range.contains(&r) && self.info.col_range.contains(&c) {
            let (lr, lc) = self.info.to_local(r, c);
            Some(self.block.get(lr, lc))
        } else {
            None
        }
    }

    /// Reads a single global entry from whichever rank owns it and
    /// broadcasts the result, so every rank returns the same value — the
    /// SPMD point-lookup `c(u, v)` of the analytics query API. One
    /// `O(log p)`-round broadcast of a single element. Collective over the
    /// grid; all ranks must pass the same coordinate.
    pub fn get_collective(&self, grid: &Grid, r: Index, c: Index) -> Option<V> {
        let owner = self.info.owner_rank(grid, r, c);
        let mine = if grid.world().rank() == owner {
            Some(self.get_local(r, c).expect("owner rank holds the block"))
        } else {
            None
        };
        grid.world().bcast(owner, mine)
    }

    /// Snapshot of the local block as a column-sorted CSR (used by SUMMA
    /// broadcasts).
    pub fn block_csr(&self) -> Csr<V> {
        self.block.to_csr()
    }

    /// Shared snapshot of the local block as a CSR, ready for the zero-copy
    /// broadcast rounds: the conversion allocates once, then every round
    /// moves the same `Arc` (one refcount increment per receiver instead of
    /// a deep clone per round).
    pub fn block_csr_shared(&self) -> Arc<Csr<V>> {
        match &self.csr_cache {
            Some(cached) => Arc::clone(cached),
            None => Arc::new(self.block.to_csr()),
        }
    }

    /// The shared CSR image of the local block for epoch publishing,
    /// rebuilt only if the block was mutated since the last call — the
    /// copy-on-write primitive behind [`crate::snapshot`]: publishing an
    /// epoch whose block is unchanged re-shares the previous epoch's `Arc`
    /// (a refcount increment, `Arc::ptr_eq` with the prior image).
    pub fn snapshot_csr(&mut self) -> Arc<Csr<V>> {
        if self.csr_cache.is_none() {
            self.csr_cache = Some(Arc::new(self.block.to_csr()));
        }
        Arc::clone(self.csr_cache.as_ref().expect("cache just filled"))
    }

    /// Whether the cached CSR snapshot image is valid (i.e. the block was
    /// not mutated since the last [`DistMat::snapshot_csr`]) — COW
    /// diagnostics for tests.
    #[inline]
    pub fn snapshot_cached(&self) -> bool {
        self.csr_cache.is_some()
    }

    /// Restores the local block from a previously published snapshot image
    /// — the rollback primitive of epoch-anchored recovery. The dynamic
    /// block is rebuilt from the image's triples and the image `Arc` itself
    /// becomes the CSR cache, so the first post-rollback publish re-shares
    /// the anchor's image by refcount increment (no rebuild, bit-identical
    /// to the pinned epoch). Pinned snapshots of rolled-back epochs are
    /// untouched: only the working block is replaced.
    ///
    /// # Panics
    /// Panics if the image shape does not match this rank's block shape —
    /// recovery never changes the layout, so a mismatch is a protocol bug.
    pub fn restore_image(&mut self, image: Arc<Csr<V>>, threads: usize) {
        assert_eq!(
            (image.nrows(), image.ncols()),
            (self.info.local_rows(), self.info.local_cols()),
            "restore_image: anchor image shape does not match the local block"
        );
        self.block = DhbMatrix::new(self.info.local_rows(), self.info.local_cols());
        let local = image.to_triples();
        if !local.is_empty() {
            crate::update::apply_local_triples_set(&mut self.block, &local, threads);
        }
        self.csr_cache = Some(image);
    }

    /// Snapshot of the local block as a DCSR.
    pub fn block_dcsr(&self) -> Dcsr<V> {
        self.block.to_dcsr()
    }

    /// Local entries as globally-indexed triples (row-major).
    pub fn to_global_triples(&self) -> Vec<Triple<V>> {
        self.block
            .to_sorted_triples()
            .into_iter()
            .map(|t| {
                let (r, c) = self.info.to_global(t.row, t.col);
                Triple::new(r, c, t.val)
            })
            .collect()
    }

    /// The distributed transpose `Aᵀ`, **materialized** through the
    /// standard two-phase redistribution: one `O(nnz/p)` exchange, after
    /// which every algorithm applies unchanged (collective over the grid).
    ///
    /// Section V-C's *virtual* transposition — no materialization, no
    /// wire bytes — is implemented where it pays: static `Aᵀ·B` products
    /// run through [`crate::summa::summa_transposed`] (panels transposed
    /// root-side, locally), and the dynamic update paths route transposed
    /// update blocks via [`crate::dyn_algebraic::TransposeMode::Virtual`]
    /// (the default — see the `repro commavoid` ablation). Materializing
    /// remains the right tool when the transposed operand is reused across
    /// many products, where the one-off exchange amortizes away.
    pub fn transposed(&self, grid: &Grid, threads: usize) -> DistMat<V> {
        let mut timer = PhaseTimer::new();
        let flipped: Vec<Triple<V>> = self
            .to_global_triples()
            .into_iter()
            .map(|t| Triple::new(t.col, t.row, t.val))
            .collect();
        DistMat::from_global_triples(
            grid,
            self.info.ncols,
            self.info.nrows,
            flipped,
            threads,
            &mut timer,
        )
    }

    /// Moves this rank's block to a new layout: stripe migration through
    /// the two-phase redistribution path. Collective over the grid (every
    /// rank calls with the same layout).
    ///
    /// Only entries whose owner *changes* cross the wire — the boundary
    /// stripes between the old and new cuts. A rank whose ranges are
    /// untouched by the new cuts keeps its block **and its cached CSR
    /// snapshot image** (the `Arc` survives, so the next epoch publish
    /// re-shares it by refcount increment exactly as if no migration had
    /// happened); migrated blocks are rebuilt and their caches dropped.
    pub fn migrate_to(
        &mut self,
        grid: &Grid,
        layout: &Arc<Layout>,
        threads: usize,
        timer: &mut PhaseTimer,
    ) -> MigrationStats {
        let new_info = BlockInfo::for_rank_in(grid, layout);
        assert_eq!(new_info.nrows, self.info.nrows, "migration keeps shape");
        assert_eq!(new_info.ncols, self.info.ncols, "migration keeps shape");
        let changed =
            new_info.row_range != self.info.row_range || new_info.col_range != self.info.col_range;
        // Split the local entries at the new boundaries. Unchanged ranks
        // scan but keep everything local.
        let (mut stay, mut outgoing) = (Vec::new(), Vec::new());
        if changed {
            for t in self.to_global_triples() {
                if new_info.row_range.contains(&t.row) && new_info.col_range.contains(&t.col) {
                    stay.push(t);
                } else {
                    outgoing.push(t);
                }
            }
        }
        let moved_out = outgoing.len();
        // Collective even when this rank moves nothing: peers may be
        // routing entries here.
        let incoming = redistribute_in(grid, layout, outgoing, timer);
        let moved_in = incoming.len();
        if !changed {
            debug_assert!(
                incoming.is_empty(),
                "a rank with unchanged ranges cannot receive entries"
            );
            // Only the layout handle changes: block and CSR cache survive.
            self.info = new_info;
            return MigrationStats {
                moved_out,
                moved_in,
                changed,
            };
        }
        self.info = new_info;
        self.csr_cache = None;
        self.block = DhbMatrix::new(self.info.local_rows(), self.info.local_cols());
        stay.extend(incoming);
        let local = timer.time(crate::redistribute::phase::LOCAL_CONSTRUCT, || {
            self.to_local_triples(stay)
        });
        if !local.is_empty() {
            timer.time(crate::redistribute::phase::LOCAL_ADDITION, || {
                crate::update::apply_local_triples_set(&mut self.block, &local, threads);
            });
        }
        MigrationStats {
            moved_out,
            moved_in,
            changed,
        }
    }

    /// Gathers the whole matrix to world rank 0 as sorted global triples
    /// (testing/diagnostics; collective over the grid).
    pub fn gather_to_root(&self, comm: &Comm) -> Option<Vec<Triple<V>>> {
        let mine = self.to_global_triples();
        comm.gather(0, mine).map(|parts| {
            let mut all: Vec<Triple<V>> = parts.into_iter().flatten().collect();
            dspgemm_sparse::triple::sort_row_major(&mut all);
            all
        })
    }
}

/// A distributed hypersparse matrix: DCSR blocks on the grid. This is the
/// type of update matrices `A*`, `B*` after redistribution.
///
/// The block is held in an `Arc`: update matrices are immutable after
/// redistribution, and Algorithm 1/2 feed them to transpose exchanges and
/// broadcast rounds — [`DistDcsr::block_shared`] hands those collectives the
/// payload without a deep clone.
#[derive(Debug, Clone)]
pub struct DistDcsr<V> {
    info: BlockInfo,
    block: Arc<Dcsr<V>>,
}

impl<V: Elem> DistDcsr<V> {
    /// An empty distributed DCSR under the uniform layout.
    pub fn empty(grid: &Grid, nrows: Index, ncols: Index) -> Self {
        Self::empty_in(grid, &uniform_layout(nrows, ncols, grid.q()))
    }

    /// An empty distributed DCSR under an explicit layout.
    pub fn empty_in(grid: &Grid, layout: &Arc<Layout>) -> Self {
        let info = BlockInfo::for_rank_in(grid, layout);
        let block = Arc::new(Dcsr::empty(info.local_rows(), info.local_cols()));
        Self { info, block }
    }

    /// Wraps an already-local block (must match the rank's block shape).
    pub fn from_block(grid: &Grid, nrows: Index, ncols: Index, block: Dcsr<V>) -> Self {
        Self::from_block_in(grid, &uniform_layout(nrows, ncols, grid.q()), block)
    }

    /// Wraps an already-local block under an explicit layout.
    pub fn from_block_in(grid: &Grid, layout: &Arc<Layout>, block: Dcsr<V>) -> Self {
        let info = BlockInfo::for_rank_in(grid, layout);
        assert_eq!(block.nrows(), info.local_rows(), "block shape mismatch");
        assert_eq!(block.ncols(), info.local_cols(), "block shape mismatch");
        Self {
            info,
            block: Arc::new(block),
        }
    }

    /// Block placement info.
    #[inline]
    pub fn info(&self) -> &BlockInfo {
        &self.info
    }

    /// The local hypersparse block.
    #[inline]
    pub fn block(&self) -> &Dcsr<V> {
        &self.block
    }

    /// The local block as a shared handle for the zero-copy collectives —
    /// a refcount increment, never a copy of the block.
    #[inline]
    pub fn block_shared(&self) -> Arc<Dcsr<V>> {
        Arc::clone(&self.block)
    }

    /// Local non-zero count.
    #[inline]
    pub fn local_nnz(&self) -> usize {
        self.block.nnz()
    }

    /// Global non-zero count (collective).
    pub fn global_nnz(&self, grid: &Grid) -> u64 {
        grid.world()
            .allreduce(self.block.nnz() as u64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;
    use dspgemm_util::rng::{Rng, SplitMix64};

    #[test]
    fn block_info_partitions_square() {
        let out = run(4, |comm| {
            let grid = Grid::new(comm);
            let info = BlockInfo::for_rank(&grid, 10, 7);
            (info.row_range.clone(), info.col_range.clone())
        });
        assert_eq!(out.results[0], (0..5, 0..4));
        assert_eq!(out.results[1], (0..5, 4..7));
        assert_eq!(out.results[2], (5..10, 0..4));
        assert_eq!(out.results[3], (5..10, 4..7));
    }

    #[test]
    fn local_global_roundtrip() {
        let out = run(4, |comm| {
            let grid = Grid::new(comm);
            let info = BlockInfo::for_rank(&grid, 100, 100);
            for r in info.row_range.clone().step_by(13) {
                for c in info.col_range.clone().step_by(17) {
                    let (lr, lc) = info.to_local(r, c);
                    assert_eq!(info.to_global(lr, lc), (r, c));
                }
            }
            true
        });
        assert!(out.results.iter().all(|&x| x));
    }

    #[test]
    fn construction_from_global_triples_and_gather() {
        let n: Index = 50;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut rng = SplitMix64::new(77 + comm.rank() as u64);
                // Rank-local random triples with globally unique coordinates
                // per rank stripe.
                let mine: Vec<Triple<u64>> = (0..200)
                    .map(|_| {
                        let r = rng.gen_range(n as u64) as Index;
                        let c = rng.gen_range(n as u64) as Index;
                        Triple::new(r, c, (r * n + c) as u64)
                    })
                    .collect();
                let mut timer = PhaseTimer::new();
                let mat = DistMat::from_global_triples(&grid, n, n, mine.clone(), 2, &mut timer);
                // Every local entry value encodes its global coordinate.
                for t in mat.to_global_triples() {
                    assert_eq!(t.val, (t.row * n + t.col) as u64);
                }
                let gathered = mat.gather_to_root(comm);
                (mine, gathered, mat.global_nnz(&grid))
            });
            // Root's gathered set equals the union of inputs (dedup by coord).
            let mut expect: Vec<(Index, Index)> = out
                .results
                .iter()
                .flat_map(|(mine, _, _)| mine.iter().map(|t| (t.row, t.col)))
                .collect();
            expect.sort_unstable();
            expect.dedup();
            let gathered = out.results[0].1.as_ref().unwrap();
            let got: Vec<(Index, Index)> = gathered.iter().map(|t| (t.row, t.col)).collect();
            assert_eq!(got, expect, "p={p}");
            assert_eq!(out.results[0].2, expect.len() as u64);
        }
    }

    #[test]
    fn transpose_roundtrip_and_product() {
        let n: Index = 23;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed: Vec<Triple<u64>> = if comm.rank() == 0 {
                let mut rng = SplitMix64::new(13);
                (0..80)
                    .map(|_| {
                        Triple::new(
                            rng.gen_range(n as u64) as Index,
                            rng.gen_range(17) as Index,
                            rng.gen_range(9) + 1,
                        )
                    })
                    .collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, 17, feed, 1, &mut timer);
            let at = a.transposed(&grid, 1);
            let att = at.transposed(&grid, 1);
            // Shape flips; double transpose is the identity.
            let same = a.gather_to_root(comm) == att.gather_to_root(comm);
            (
                at.info().nrows,
                at.info().ncols,
                same,
                at.global_nnz(&grid) == a.global_nnz(&grid),
            )
        });
        for &(tr, tc, same, nnz_eq) in &out.results {
            assert_eq!((tr, tc), (17, 23));
            assert!(same);
            assert!(nnz_eq);
        }
    }

    #[test]
    fn dist_dcsr_shape_checked() {
        let out = run(4, |comm| {
            let grid = Grid::new(comm);
            let d = DistDcsr::<u64>::empty(&grid, 9, 9);
            (d.info().local_rows(), d.info().local_cols(), d.local_nnz())
        });
        // 9 split as 5+4.
        assert_eq!(out.results[0].0, 5);
        assert_eq!(out.results[3].0, 4);
        assert!(out.results.iter().all(|r| r.2 == 0));
    }
}
