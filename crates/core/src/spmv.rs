//! Distributed sparse matrix–vector multiplication on the 2D grid.
//!
//! SpMV is the workhorse of the vector-shaped analytics views (degrees,
//! k-hop frontiers, PageRank-style sweeps) that `dspgemm-analytics` maintains
//! next to the matrix-shaped SpGEMM views. The kernel reuses SUMMA's
//! communication domains (Section IV's row/column communicators) rather than
//! introducing a new distribution:
//!
//! * the input vector `x` is **column-aligned**: rank `(i, j)` holds the
//!   segment `x[cols(j)]` matching its block's column range, replicated down
//!   each grid column — exactly the operand every local block multiply needs,
//!   so the multiply itself is communication-free;
//! * partial results `y_part = A_{i,j} · x_j` are combined with one
//!   elementwise allreduce over the **row communicator** (`O(log √p)` rounds
//!   of `n/√p`-element messages), leaving `y` **row-aligned**: rank `(i, j)`
//!   holds `y[rows(i)]`, replicated across each grid row;
//! * chaining multiplications (`A^k x`) re-aligns `y` back to column
//!   alignment with the same transpose `sendrecv` exchange Algorithm 1 uses
//!   for its update blocks: segment `b` of a row-aligned vector lives on the
//!   ranks of grid row `b`, so peer `(j, i)` holds exactly the segment rank
//!   `(i, j)` needs next.
//!
//! Total volume per multiply is `O(n/√p · log √p)` per rank — independent of
//! `nnz(A)`, mirroring how the paper's dynamic SpGEMM avoids moving the big
//! operand.

use crate::distmat::{DistMat, Elem};
use crate::grid::Grid;
use crate::layout::{owner_of, uniform_cuts};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Index, RowScan};
use dspgemm_util::par::parallel_map_ranges;
use std::ops::Range;
use std::sync::Arc;

/// Which grid axis a [`DistVec`]'s segment follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Rank `(i, j)` holds the segment for column block `j` (replicated down
    /// each grid column) — the input alignment of [`spmv`].
    Col,
    /// Rank `(i, j)` holds the segment for row block `i` (replicated across
    /// each grid row) — the output alignment of [`spmv`].
    Row,
}

/// A dense vector distributed conformally with the 2D block distribution.
///
/// The segment is held in an `Arc`: SpMV's aggregation broadcast and the
/// transpose re-alignment move it zero-copy through the shared collectives,
/// and cloning a `DistVec` (views snapshotting their result) is a refcount
/// increment. Local mutation goes through copy-on-write
/// ([`Arc::make_mut`]), which never copies while the segment is unshared.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVec<V> {
    n: Index,
    align: Align,
    /// The `q + 1` monotone stripe cuts the segments follow — the uniform
    /// split unless the vector was built conformal to a rebalanced matrix
    /// layout ([`DistVec::from_fn_in`]).
    cuts: Arc<Vec<Index>>,
    seg: Arc<Vec<V>>,
}

impl<V: Elem> DistVec<V> {
    /// Builds a column-aligned vector from a generator evaluated at every
    /// global index of this rank's segment, under the uniform stripe cuts.
    /// `f` must be a pure function of the index (all ranks of a grid column
    /// evaluate it for the same indices), so no communication is needed.
    pub fn from_fn(grid: &Grid, n: Index, f: impl FnMut(Index) -> V) -> Self {
        Self::from_fn_in(grid, Arc::new(uniform_cuts(n, grid.q())), f)
    }

    /// [`DistVec::from_fn`] under an explicit stripe cut vector (`q + 1`
    /// monotone cuts starting at `0`) — the form conformal to a rebalanced
    /// matrix layout ([`crate::layout::Layout::col_cuts`] for an [`spmv`]
    /// input).
    pub fn from_fn_in(grid: &Grid, cuts: Arc<Vec<Index>>, mut f: impl FnMut(Index) -> V) -> Self {
        assert_eq!(cuts.len(), grid.q() + 1, "one cut per grid stripe plus end");
        let (_, j) = grid.coords();
        let range = cuts[j]..cuts[j + 1];
        Self {
            n: *cuts.last().expect("validated: q + 1 cuts"),
            align: Align::Col,
            seg: Arc::new(range.map(&mut f).collect()),
            cuts,
        }
    }

    /// A column-aligned constant vector under the uniform stripe cuts.
    pub fn constant(grid: &Grid, n: Index, value: V) -> Self {
        Self::from_fn(grid, n, |_| value)
    }

    /// A column-aligned constant vector under an explicit stripe cut vector.
    pub fn constant_in(grid: &Grid, cuts: Arc<Vec<Index>>, value: V) -> Self {
        Self::from_fn_in(grid, cuts, |_| value)
    }

    /// A column-aligned vector that is `zero` everywhere except at the given
    /// `(index, value)` entries, under the uniform stripe cuts. `entries`
    /// must be identical on all ranks (each rank keeps the ones falling in
    /// its segment).
    pub fn from_entries(grid: &Grid, n: Index, entries: &[(Index, V)], zero: V) -> Self {
        Self::from_entries_in(grid, Arc::new(uniform_cuts(n, grid.q())), entries, zero)
    }

    /// [`DistVec::from_entries`] under an explicit stripe cut vector.
    pub fn from_entries_in(
        grid: &Grid,
        cuts: Arc<Vec<Index>>,
        entries: &[(Index, V)],
        zero: V,
    ) -> Self {
        let mut v = Self::constant_in(grid, cuts, zero);
        let range = v.range(grid);
        let seg = Arc::make_mut(&mut v.seg);
        for &(idx, val) in entries {
            if range.contains(&idx) {
                seg[(idx - range.start) as usize] = val;
            }
        }
        v
    }

    /// Global length.
    #[inline]
    pub fn len(&self) -> Index {
        self.n
    }

    /// Whether the vector has length zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current alignment.
    #[inline]
    pub fn align(&self) -> Align {
        self.align
    }

    /// This rank's segment.
    #[inline]
    pub fn seg(&self) -> &[V] {
        &self.seg
    }

    /// The stripe cut points the segments follow (length `q + 1`).
    #[inline]
    pub fn cuts(&self) -> &[Index] {
        &self.cuts
    }

    /// Global index range of this rank's segment.
    pub fn range(&self, grid: &Grid) -> Range<Index> {
        let (i, j) = grid.coords();
        let b = match self.align {
            Align::Col => j,
            Align::Row => i,
        };
        self.cuts[b]..self.cuts[b + 1]
    }

    /// The stripe holding global index `u` and that stripe's start — the
    /// grid row (row-aligned) or column (column-aligned) whose ranks hold
    /// `u`'s segment entry.
    pub fn owner_stripe(&self, u: Index) -> (usize, Index) {
        owner_of(&self.cuts, u)
    }

    /// Re-aligns between row and column alignment via the transpose
    /// exchange: peer `(j, i)` holds exactly the segment this rank needs
    /// under the other alignment. Prepost-irecv form: the receive is posted
    /// before the send, so both directions are in flight concurrently and
    /// the wait is pure arrival time. Diagonal ranks move nothing.
    /// Collective over the grid.
    pub fn realign(self, grid: &Grid) -> Self {
        const TAG_VEC: u64 = 105;
        let peer = grid.transpose_rank();
        let align = match self.align {
            Align::Col => Align::Row,
            Align::Row => Align::Col,
        };
        let seg = if peer == grid.world().rank() {
            self.seg
        } else {
            // `sendrecv_shared` is itself in prepost-irecv form.
            grid.world().sendrecv_shared(peer, self.seg, peer, TAG_VEC)
        };
        Self {
            n: self.n,
            align,
            cuts: self.cuts,
            seg,
        }
    }

    /// Assembles the full vector on every rank: one allgather along the
    /// communicator that spans the segments (testing/diagnostics; `O(n)`
    /// memory per rank). Collective over the grid.
    pub fn to_global(&self, grid: &Grid) -> Vec<V> {
        let comm = match self.align {
            // Column-aligned: the ranks of a grid row jointly hold all
            // segments in block order (row-comm member j holds block j).
            Align::Col => grid.row_comm(),
            Align::Row => grid.col_comm(),
        };
        // The shared ring moves `Arc` handles — statically incapable of
        // deep-cloning a segment.
        let parts = comm.allgather_shared(Arc::clone(&self.seg));
        let mut out = Vec::with_capacity(self.n as usize);
        for part in parts {
            out.extend_from_slice(&part);
        }
        out
    }
}

/// Computes `y = A · x` over semiring `S`. `x` must be column-aligned and
/// conform to `A`'s column count; the result is row-aligned (see the module
/// docs for the round structure). Returns `(y, local_flops)`. Collective
/// over the grid.
pub fn spmv<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    x: &DistVec<S::Elem>,
    threads: usize,
) -> (DistVec<S::Elem>, u64) {
    assert_eq!(x.align, Align::Col, "spmv input must be column-aligned");
    assert_eq!(
        a.info().layout().col_cuts(),
        &x.cuts[..],
        "SpMV input must be conformal with A's column cuts"
    );
    let local_rows = a.info().local_rows() as usize;
    debug_assert_eq!(a.info().local_cols() as usize, x.seg.len());

    // Local block multiply: rows are disjoint across threads, each range
    // produces its own slice of the partial result.
    let parts = parallel_map_ranges(threads.max(1), local_rows, |range| {
        let mut part = vec![S::zero(); range.len()];
        let mut flops = 0u64;
        a.block()
            .scan_row_range(range.start as Index, range.end as Index, |r, cols, vals| {
                let acc = &mut part[(r as usize) - range.start];
                for (&c, &v) in cols.iter().zip(vals) {
                    flops += 1;
                    *acc = S::add(*acc, S::mul(v, x.seg[c as usize]));
                }
            });
        (part, flops)
    });
    let flops = parts.iter().map(|(_, f)| *f).sum();
    let mut y_part: Vec<S::Elem> = Vec::with_capacity(local_rows);
    for (part, _) in parts {
        y_part.extend(part);
    }

    // Aggregate partials across the grid row (the k-sum of y_i = Σ_j A_ij x_j):
    // a merge-reduce onto row-comm rank 0 followed by a zero-copy broadcast
    // of the combined segment — same rounds and wire bytes as an allreduce,
    // but the result vector is never deep-cloned on its way back out.
    let reduced = grid.row_comm().reduce(0, y_part, |mut acc, other| {
        for (a_el, b_el) in acc.iter_mut().zip(other) {
            *a_el = S::add(*a_el, b_el);
        }
        acc
    });
    let seg = grid.row_comm().bcast_shared(0, reduced.map(Arc::new));
    (
        DistVec {
            n: a.info().nrows,
            align: Align::Row,
            cuts: Arc::new(a.info().layout().row_cuts().to_vec()),
            seg,
        },
        flops,
    )
}

/// Computes `y = Aᵏ · x` by chaining [`spmv`] with re-alignment between
/// hops (requires a square matrix). `k = 0` returns `x` unchanged. The
/// result is column-aligned, ready for further multiplication. Returns
/// `(y, local_flops)`. Collective over the grid.
pub fn spmv_chain<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    x: DistVec<S::Elem>,
    k: usize,
    threads: usize,
) -> (DistVec<S::Elem>, u64) {
    assert_eq!(
        a.info().nrows,
        a.info().ncols,
        "chained SpMV requires a square matrix"
    );
    let mut x = x;
    let mut flops = 0u64;
    for _ in 0..k {
        let (y, fl) = spmv::<S>(grid, a, &x, threads);
        flops += fl;
        x = y.realign(grid);
    }
    (x, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;
    use dspgemm_sparse::semiring::{BoolOrAnd, MinPlus, U64Plus};
    use dspgemm_sparse::Triple;
    use dspgemm_util::rng::{Rng, SplitMix64};
    use dspgemm_util::stats::PhaseTimer;

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    /// Dense reference: y[r] = Σ_c add(mul(a_rc, x_c)).
    fn reference_spmv(n: Index, triples: &[Triple<u64>], x: &[u64]) -> Vec<u64> {
        // Last write wins per coordinate, matching DistMat construction.
        let mut last = std::collections::BTreeMap::new();
        for t in triples {
            last.insert((t.row, t.col), t.val);
        }
        let mut y = vec![0u64; n as usize];
        for ((r, c), v) in last {
            y[r as usize] += v * x[c as usize];
        }
        y
    }

    #[test]
    fn spmv_matches_dense_reference_all_grids() {
        let n: Index = 37;
        for p in [1usize, 4, 9] {
            let triples = random_triples(11, n, 300);
            let t_in = triples.clone();
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = if comm.rank() == 0 {
                    t_in.clone()
                } else {
                    vec![]
                };
                let a = DistMat::from_global_triples(&grid, n, n, feed, 2, &mut timer);
                let x = DistVec::from_fn(&grid, n, |i| (i as u64) % 7 + 1);
                let (y, flops) = spmv::<U64Plus>(&grid, &a, &x, 2);
                assert!(flops as usize <= a.local_nnz());
                y.to_global(&grid)
            });
            let x: Vec<u64> = (0..n).map(|i| (i as u64) % 7 + 1).collect();
            let expect = reference_spmv(n, &triples, &x);
            for (rank, got) in out.results.iter().enumerate() {
                assert_eq!(got, &expect, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn chained_spmv_counts_walks() {
        // Directed cycle 0 → 1 → … → n-1 → 0: A^k x shifts x by k.
        let n: Index = 12;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t: Vec<Triple<u64>> = if comm.rank() == 0 {
                (0..n).map(|i| Triple::new(i, (i + 1) % n, 1)).collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let x = DistVec::from_fn(&grid, n, |i| u64::from(i == 0));
            let (y, _) = spmv_chain::<U64Plus>(&grid, &a, x, 5, 1);
            y.to_global(&grid)
        });
        // e_0 pushed 5 steps backwards along the cycle: A e_{i+1} = e_i.
        let expect: Vec<u64> = (0..n).map(|i| u64::from(i == n - 5)).collect();
        assert!(out.results.iter().all(|v| *v == expect));
    }

    #[test]
    fn realign_round_trips() {
        let n: Index = 23;
        let out = run(9, move |comm| {
            let grid = Grid::new(comm);
            let x = DistVec::from_fn(&grid, n, |i| i as u64 * 3);
            let back = x.clone().realign(&grid).realign(&grid);
            (x == back, x.to_global(&grid))
        });
        let expect: Vec<u64> = (0..23).map(|i| i as u64 * 3).collect();
        for (same, full) in &out.results {
            assert!(same);
            assert_eq!(full, &expect);
        }
    }

    #[test]
    fn bool_semiring_khop_reachability() {
        // Path graph 0 - 1 - 2 - … (undirected): 2 hops from vertex 0
        // reaches {0, 1, 2}.
        let n: Index = 10;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t: Vec<Triple<bool>> = if comm.rank() == 0 {
                (0..n - 1)
                    .flat_map(|i| [Triple::new(i, i + 1, true), Triple::new(i + 1, i, true)])
                    .collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let seed = DistVec::from_entries(&grid, n, &[(0, true)], false);
            // Reachable within ≤ 2 hops: fold the frontier into the seed.
            let (h1, _) = spmv_chain::<BoolOrAnd>(&grid, &a, seed.clone(), 1, 1);
            let (h2, _) = spmv_chain::<BoolOrAnd>(&grid, &a, seed.clone(), 2, 1);
            let reach: Vec<bool> = seed
                .to_global(&grid)
                .iter()
                .zip(h1.to_global(&grid))
                .zip(h2.to_global(&grid))
                .map(|((&s, a), b)| s | a | b)
                .collect();
            reach
        });
        let expect: Vec<bool> = (0..10).map(|i| i <= 2).collect();
        assert!(out.results.iter().all(|v| *v == expect));
    }

    #[test]
    fn min_plus_spmv_relaxes_distances() {
        // One SSSP relaxation step under (min, +): y_v = min_u (d_u + w_uv)
        // over the *incoming* edges, i.e. y = Aᵀ·d; with the symmetric path
        // graph Aᵀ = A.
        let n: Index = 8;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t: Vec<Triple<f64>> = if comm.rank() == 0 {
                (0..n - 1)
                    .flat_map(|i| [Triple::new(i, i + 1, 1.0), Triple::new(i + 1, i, 1.0)])
                    .collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let d = DistVec::from_entries(&grid, n, &[(0, 0.0)], f64::INFINITY);
            let (y, _) = spmv::<MinPlus>(&grid, &a, &d, 1);
            y.to_global(&grid)
        });
        // After one relaxation only vertex 1 (distance 1) is finite — y has
        // no self-loop term, matching pure matrix-vector semantics.
        for v in &out.results {
            assert_eq!(v[1], 1.0);
            assert!(v[0].is_infinite() && v[2..].iter().all(|x| x.is_infinite()));
        }
    }
}
