//! The 2D process grid and the block distribution of index space.
//!
//! Matrices are distributed over a `√p × √p` grid: rank `r` sits at grid
//! coordinates `(r / √p, r % √p)` and owns the block at that position
//! (Section IV). Row and column communicators — the communication domains of
//! SUMMA-style algorithms — are created once per grid via `split`.

use dspgemm_mpi::Comm;
use dspgemm_sparse::Index;
use std::ops::Range;

/// A square process grid with row/column sub-communicators.
pub struct Grid {
    /// Communicator over all `q*q` grid members (a private `dup`).
    world: Comm,
    /// Communicator over this rank's grid row (members ordered by column).
    row_comm: Comm,
    /// Communicator over this rank's grid column (members ordered by row).
    col_comm: Comm,
    q: usize,
    i: usize,
    j: usize,
}

impl Grid {
    /// Builds the grid from a communicator whose size is a perfect square.
    ///
    /// # Panics
    /// Panics if `comm.size()` is not a perfect square (the same restriction
    /// CombBLAS imposes and the paper adopts).
    pub fn new(comm: &Comm) -> Self {
        let p = comm.size();
        let q = (p as f64).sqrt().round() as usize;
        assert_eq!(
            q * q,
            p,
            "process count {p} is not a perfect square; a square grid is required"
        );
        let world = comm.dup();
        let rank = world.rank();
        let (i, j) = (rank / q, rank % q);
        let row_comm = world.split(i as u64, j as u64);
        let col_comm = world.split((q + j) as u64, i as u64);
        Self {
            world,
            row_comm,
            col_comm,
            q,
            i,
            j,
        }
    }

    /// Grid side length `√p`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Total ranks `p = q²`.
    #[inline]
    pub fn p(&self) -> usize {
        self.q * self.q
    }

    /// This rank's grid coordinates `(i, j)`.
    #[inline]
    pub fn coords(&self) -> (usize, usize) {
        (self.i, self.j)
    }

    /// The grid-wide communicator.
    #[inline]
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// This rank's row communicator (rank within = grid column `j`).
    #[inline]
    pub fn row_comm(&self) -> &Comm {
        &self.row_comm
    }

    /// This rank's column communicator (rank within = grid row `i`).
    #[inline]
    pub fn col_comm(&self) -> &Comm {
        &self.col_comm
    }

    /// World rank of grid position `(i, j)`.
    #[inline]
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.q && j < self.q);
        i * self.q + j
    }

    /// World rank of this rank's transposed position `(j, i)` — the peer of
    /// the initial exchange in Algorithm 1.
    #[inline]
    pub fn transpose_rank(&self) -> usize {
        self.rank_of(self.j, self.i)
    }

    /// Advances this rank into the next recovery epoch on every grid
    /// communicator after a detected failure: the endpoint-level advance
    /// (buffered-traffic purge + progress-table clear) runs once through
    /// the world dup, and all three communicators restart their collective
    /// sequences in lockstep. Local; callers must barrier afterwards (see
    /// `dspgemm_mpi::Comm::advance_recovery_epoch`). Returns the new epoch.
    pub fn advance_recovery_epoch(&self) -> u64 {
        let epoch = self.world.advance_recovery_epoch();
        self.row_comm.reset_collective_seq();
        self.col_comm.reset_collective_seq();
        epoch
    }
}

/// Contiguous block decomposition of `0..n` into `q` near-equal ranges:
/// the first `n mod q` blocks get one extra element.
#[inline]
pub fn block_range(n: Index, q: usize, b: usize) -> Range<Index> {
    debug_assert!(b < q);
    let n = n as usize;
    let base = n / q;
    let extra = n % q;
    let lo = b * base + b.min(extra);
    let len = base + usize::from(b < extra);
    (lo as Index)..((lo + len) as Index)
}

/// The block index owning global index `x` under [`block_range`]'s
/// decomposition, plus the offset of that block.
#[inline]
pub fn owner_block(n: Index, q: usize, x: Index) -> (usize, Index) {
    debug_assert!(x < n);
    let n_us = n as usize;
    let x_us = x as usize;
    let base = n_us / q;
    let extra = n_us % q;
    let big = base + 1;
    let b = if x_us < extra * big {
        x_us / big
    } else {
        match (x_us - extra * big).checked_div(base) {
            Some(q) => extra + q,
            // base == 0: all elements live in the first `extra` big blocks.
            None => extra.saturating_sub(1),
        }
    };
    let lo = b * base + b.min(extra);
    (b, lo as Index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;

    #[test]
    fn block_ranges_partition() {
        for n in [0u32, 1, 7, 64, 100, 1023] {
            for q in [1usize, 2, 3, 4, 7] {
                let mut covered = 0u32;
                let mut prev_end = 0u32;
                for b in 0..q {
                    let r = block_range(n, q, b);
                    assert_eq!(r.start, prev_end, "contiguous");
                    covered += r.end - r.start;
                    prev_end = r.end;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn owner_block_matches_ranges() {
        for n in [1u32, 7, 64, 100, 1023] {
            for q in [1usize, 2, 3, 4, 7] {
                for x in 0..n {
                    let (b, lo) = owner_block(n, q, x);
                    let r = block_range(n, q, b);
                    assert!(r.contains(&x), "n={n} q={q} x={x}: block {b} range {r:?}");
                    assert_eq!(lo, r.start);
                }
            }
        }
    }

    #[test]
    fn grid_coordinates_and_comms() {
        let out = run(9, |comm| {
            let grid = Grid::new(comm);
            let (i, j) = grid.coords();
            assert_eq!(grid.q(), 3);
            assert_eq!(grid.rank_of(i, j), comm.rank());
            // Row communicator: my rank within is my column.
            assert_eq!(grid.row_comm().rank(), j);
            assert_eq!(grid.row_comm().size(), 3);
            // Column communicator: my rank within is my row.
            assert_eq!(grid.col_comm().rank(), i);
            assert_eq!(grid.col_comm().size(), 3);
            // Row comm sums world ranks of my row: 3i + (0+1+2).
            let s = grid.row_comm().allreduce(comm.rank() as u64, |a, b| a + b);
            assert_eq!(s, (3 * i * 3 + 3) as u64);
            (i, j, grid.transpose_rank())
        });
        assert_eq!(out.results[5], (1, 2, 7)); // rank 5 = (1,2); transpose (2,1) = rank 7.
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn non_square_rejected() {
        run(3, |comm| {
            let _ = Grid::new(comm);
        });
    }
}
