//! Dynamic updates: building update matrices and applying them (Section IV-A).
//!
//! The update protocol is exactly the paper's:
//!
//! 1. ranks hold arbitrary update tuples with global indices;
//! 2. [`build_update_matrix`] redistributes them (two-phase counting-sort
//!    alltoall) and assembles this rank's block of the hypersparse update
//!    matrix `A*` in DCSR layout;
//! 3. one of the *purely local* application operators finishes the job —
//!    [`apply_add_exec`] (`A += A*`), [`apply_merge_exec`] (`MERGE`), or
//!    [`apply_mask_exec`] (`MASK`) — each parallelized over the shards of
//!    the session [`Exec`](crate::exec::Exec) by `row mod T`.
//!
//! The `_exec` operators are the primary entry points: the engine, the
//! analytics session and the pipelined SpGEMM paths all drive application
//! through a session [`Exec`](crate::exec::Exec) so one configuration
//! object carries the thread count (and, for the kernels, the row schedule
//! and pooled workspaces) everywhere. The bare-`threads` forms
//! ([`apply_add`], [`apply_merge`], [`apply_mask`]) survive as thin
//! conveniences for tests and one-off callers that have no session.
//!
//! An update matrix empty on this rank is applied as a guaranteed no-op
//! that leaves the dynamic block — and its cached snapshot image —
//! untouched, so the next published epoch re-shares the block
//! copy-on-write (see [`crate::snapshot`]).

use crate::distmat::{DistDcsr, DistMat, Elem};
use crate::grid::Grid;
use crate::layout::{uniform_layout, Layout};
use crate::redistribute::{phase, redistribute_finish_in, redistribute_start_in, InflightRedist};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{dhb::DhbRow, Dcsr, DhbMatrix, Index, Triple};
use dspgemm_util::par::parallel_for_each_shard;
use dspgemm_util::sort::counting_sort_by_key;
use dspgemm_util::stats::PhaseTimer;
use parking_lot::Mutex;
use std::sync::Arc;

/// How duplicate coordinates within one update batch combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dedup {
    /// Last write wins (MERGE / MASK batches).
    LastWins,
    /// Combine with the semiring addition (algebraic insertion batches).
    Add,
}

/// Assembles this rank's hypersparse block from its already-routed,
/// globally-indexed tuples (the purely local tail of
/// [`build_update_matrix`]).
fn assemble_update_block<S: Semiring>(
    grid: &Grid,
    layout: &Arc<Layout>,
    mine: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> DistDcsr<S::Elem> {
    timer.time(phase::LOCAL_CONSTRUCT, || {
        let info = crate::distmat::BlockInfo::for_rank_in(grid, layout);
        let mut local: Vec<Triple<S::Elem>> = mine
            .into_iter()
            .map(|t| {
                let (lr, lc) = info.to_local(t.row, t.col);
                Triple::new(lr, lc, t.val)
            })
            .collect();
        dspgemm_sparse::triple::sort_row_major(&mut local);
        match dedup {
            Dedup::LastWins => dspgemm_sparse::triple::dedup_last_wins(&mut local),
            Dedup::Add => dspgemm_sparse::triple::dedup_add::<S>(&mut local),
        }
        let block = Dcsr::from_sorted_triples(info.local_rows(), info.local_cols(), &local);
        DistDcsr::from_block_in(grid, layout, block)
    })
}

/// An update-matrix build whose first redistribution phase is in flight
/// (see [`crate::redistribute::redistribute_start`]). Produced by
/// [`start_update_matrix`], completed by [`PendingUpdateMatrix::finish`] —
/// the unit the engine's depth-1 lookahead queues.
pub struct PendingUpdateMatrix<S: Semiring> {
    layout: Arc<Layout>,
    dedup: Dedup,
    inflight: InflightRedist<S::Elem>,
}

impl<S: Semiring> PendingUpdateMatrix<S> {
    /// Awaits the in-flight exchange, runs the second redistribution phase
    /// and assembles this rank's block. Collective over the grid.
    pub fn finish(self, grid: &Grid, timer: &mut PhaseTimer) -> DistDcsr<S::Elem> {
        let mine = redistribute_finish_in(grid, &self.layout, self.inflight, timer);
        assemble_update_block::<S>(grid, &self.layout, mine, self.dedup, timer)
    }
}

/// Issues the first redistribution phase of an update-matrix build
/// nonblocking and returns the pending handle, routing and assembling under
/// the uniform layout. Collective over the grid (same issue order on every
/// rank).
pub fn start_update_matrix<S: Semiring>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> PendingUpdateMatrix<S> {
    start_update_matrix_in::<S>(
        grid,
        &uniform_layout(nrows, ncols, grid.q()),
        tuples,
        dedup,
        timer,
    )
}

/// [`start_update_matrix`] under an explicit layout — the form the engine
/// uses so update matrices always match the (possibly rebalanced) layout of
/// the matrix they apply to.
pub fn start_update_matrix_in<S: Semiring>(
    grid: &Grid,
    layout: &Arc<Layout>,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> PendingUpdateMatrix<S> {
    let _sp = dspgemm_obs::span("engine", "redistribute").attr("updates", tuples.len() as u64);
    let inflight = redistribute_start_in(grid, layout, tuples, timer);
    PendingUpdateMatrix {
        layout: Arc::clone(layout),
        dedup,
        inflight,
    }
}

/// Redistributes globally-indexed update tuples and assembles this rank's
/// hypersparse `A*` block under the uniform layout. Collective over the
/// grid. Composed as [`start_update_matrix`] + [`PendingUpdateMatrix::finish`],
/// so the sequential path and the engine's inter-batch lookahead share one
/// code path (byte-identical wire traffic).
pub fn build_update_matrix<S: Semiring>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> DistDcsr<S::Elem> {
    start_update_matrix::<S>(grid, nrows, ncols, tuples, dedup, timer).finish(grid, timer)
}

/// [`build_update_matrix`] under an explicit layout.
pub fn build_update_matrix_in<S: Semiring>(
    grid: &Grid,
    layout: &Arc<Layout>,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> DistDcsr<S::Elem> {
    start_update_matrix_in::<S>(grid, layout, tuples, dedup, timer).finish(grid, timer)
}

/// The natural- and transposed-layout builds of one update matrix — what
/// the virtual-transposition rounds of Section V-C consume.
///
/// `natural` is the standard `A*` (rank `(i, j)` holds `A*_{i,j}`; the
/// local `A += A*` application needs this layout). `transposed` is
/// `(A*)ᵀ` built by routing the *flipped* tuples through the same two-phase
/// redistribution with swapped dimensions, so rank `(i, j)` holds
/// `(A*_{j,i})ᵀ` — exactly the block it would have received from its
/// transposed peer in Algorithm 1's point-to-point exchange, already
/// transposed. A purely local counting-sort transposition
/// ([`Dcsr::transpose_into`]) recovers the broadcast payload `A*_{j,i}`
/// bit-for-bit, and the `TAG_AT`/`TAG_BT`/`TAG_SHARED` wire exchange
/// disappears.
#[derive(Debug, Clone)]
pub struct StarPair<V> {
    /// The natural-layout update matrix (`A*_{i,j}` at rank `(i, j)`).
    pub natural: DistDcsr<V>,
    /// The transposed-layout build (`(A*_{j,i})ᵀ` at rank `(i, j)`).
    pub transposed: DistDcsr<V>,
}

/// A [`StarPair`] build with both first redistribution phases in flight.
/// Produced by [`start_update_matrix_pair`].
pub struct PendingStarPair<S: Semiring> {
    natural: PendingUpdateMatrix<S>,
    transposed: PendingUpdateMatrix<S>,
}

impl<S: Semiring> PendingStarPair<S> {
    /// Completes both builds. Collective over the grid.
    pub fn finish(self, grid: &Grid, timer: &mut PhaseTimer) -> StarPair<S::Elem> {
        StarPair {
            natural: self.natural.finish(grid, timer),
            transposed: self.transposed.finish(grid, timer),
        }
    }
}

/// Issues the first redistribution phase of both layouts of one update
/// matrix (natural tuples, then flipped tuples with swapped dimensions) and
/// returns the pending pair. The two `IALLTOALLV`s cross the wire
/// concurrently. Collective over the grid.
pub fn start_update_matrix_pair<S: Semiring>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> PendingStarPair<S> {
    start_update_matrix_pair_in::<S>(
        grid,
        &uniform_layout(nrows, ncols, grid.q()),
        tuples,
        dedup,
        timer,
    )
}

/// [`start_update_matrix_pair`] under an explicit layout; the transposed
/// build routes under [`Layout::transposed`].
pub fn start_update_matrix_pair_in<S: Semiring>(
    grid: &Grid,
    layout: &Arc<Layout>,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> PendingStarPair<S> {
    // Flip (r, c, v) → (c, r, v) *before* routing: the transposed layout is
    // an ordinary update-matrix build of the flipped entry set. Stable
    // sorting + dedup then reproduce the exact values of the natural build
    // (same input order, same fold order), so the two layouts are exact
    // transposes of each other entry-for-entry.
    let flipped: Vec<Triple<S::Elem>> = tuples
        .iter()
        .map(|t| Triple::new(t.col, t.row, t.val))
        .collect();
    let natural = start_update_matrix_in::<S>(grid, layout, tuples, dedup, timer);
    let transposed =
        start_update_matrix_in::<S>(grid, &Arc::new(layout.transposed()), flipped, dedup, timer);
    PendingStarPair {
        natural,
        transposed,
    }
}

/// Builds both layouts of one update matrix (see [`StarPair`]). Collective
/// over the grid.
pub fn build_update_matrix_pair<S: Semiring>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> StarPair<S::Elem> {
    start_update_matrix_pair::<S>(grid, nrows, ncols, tuples, dedup, timer).finish(grid, timer)
}

/// [`build_update_matrix_pair`] under an explicit layout.
pub fn build_update_matrix_pair_in<S: Semiring>(
    grid: &Grid,
    layout: &Arc<Layout>,
    tuples: Vec<Triple<S::Elem>>,
    dedup: Dedup,
    timer: &mut PhaseTimer,
) -> StarPair<S::Elem> {
    start_update_matrix_pair_in::<S>(grid, layout, tuples, dedup, timer).finish(grid, timer)
}

/// One stored row of an update block borrowed for application:
/// `(local row, columns, values)`.
type RowEntries<'a, V> = (Index, &'a [Index], &'a [V]);

/// The three local application operators of Section IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ApplyOp {
    Add,
    Merge,
    Mask,
}

fn apply_rows<S: Semiring>(
    shard_rows: &mut [&mut DhbRow<S::Elem>],
    shards: usize,
    rows: &[RowEntries<'_, S::Elem>],
    op: ApplyOp,
) {
    for &(lr, cols, vals) in rows {
        let row = &mut *shard_rows[lr as usize / shards];
        match op {
            ApplyOp::Add => {
                for (&c, &v) in cols.iter().zip(vals) {
                    row.combine(c, v, S::add);
                }
            }
            ApplyOp::Merge => {
                for (&c, &v) in cols.iter().zip(vals) {
                    row.set(c, v);
                }
            }
            ApplyOp::Mask => {
                for &c in cols {
                    row.remove(c);
                }
            }
        }
    }
}

fn apply_update_matrix<S: Semiring>(
    mat: &mut DistMat<S::Elem>,
    upd: &DistDcsr<S::Elem>,
    op: ApplyOp,
    threads: usize,
) {
    assert_eq!(
        mat.info(),
        upd.info(),
        "matrix/update distribution mismatch"
    );
    if upd.local_nnz() == 0 {
        // Nothing routed to this rank: leave the block (and its cached
        // snapshot image) untouched, so the next published epoch re-shares
        // this block copy-on-write instead of reconverting it.
        return;
    }
    let threads = threads.max(1);
    // Group the update's stored rows by (row mod T) — the paper's partition
    // for lock-free parallel application.
    let mut grouped: Vec<Vec<RowEntries<'_, S::Elem>>> = (0..threads).map(|_| Vec::new()).collect();
    for (r, cols, vals) in upd.block().iter_rows() {
        grouped[r as usize % threads].push((r, cols, vals));
    }
    let shards = mat.block_mut().shard_rows_mut(threads);
    let shard_cells: Vec<Mutex<Vec<&mut DhbRow<S::Elem>>>> =
        shards.into_iter().map(Mutex::new).collect();
    parallel_for_each_shard(threads, |t| {
        let mut rows = shard_cells[t].lock();
        apply_rows::<S>(&mut rows, threads, &grouped[t], op);
    });
    drop(shard_cells);
    mat.block_mut().recount_nnz();
}

/// [`apply_add_exec`] with a bare thread count (test/one-off convenience;
/// sessions use the `_exec` form). Local-only.
pub fn apply_add<S: Semiring>(mat: &mut DistMat<S::Elem>, upd: &DistDcsr<S::Elem>, threads: usize) {
    apply_update_matrix::<S>(mat, upd, ApplyOp::Add, threads);
}

/// `A += A*` over the semiring addition (algebraic updates), driven by a
/// session [`Exec`](crate::exec::Exec) — the engine's path: one
/// configuration object carries the thread count through kernels and apply
/// operators alike. Local-only.
pub fn apply_add_exec<S: Semiring>(
    mat: &mut DistMat<S::Elem>,
    upd: &DistDcsr<S::Elem>,
    exec: &crate::exec::Exec<S>,
) {
    apply_add::<S>(mat, upd, exec.threads);
}

/// [`apply_merge_exec`] with a bare thread count (test/one-off
/// convenience). Local-only.
pub fn apply_merge<S: Semiring>(
    mat: &mut DistMat<S::Elem>,
    upd: &DistDcsr<S::Elem>,
    threads: usize,
) {
    apply_update_matrix::<S>(mat, upd, ApplyOp::Merge, threads);
}

/// `MERGE(A, A*)`: replaces the value of every position non-zero in `A*`
/// (inserting new entries), driven by a session
/// [`Exec`](crate::exec::Exec). Local-only.
pub fn apply_merge_exec<S: Semiring>(
    mat: &mut DistMat<S::Elem>,
    upd: &DistDcsr<S::Elem>,
    exec: &crate::exec::Exec<S>,
) {
    apply_merge::<S>(mat, upd, exec.threads);
}

/// [`apply_mask_exec`] with a bare thread count (test/one-off
/// convenience). Local-only.
pub fn apply_mask<S: Semiring>(
    mat: &mut DistMat<S::Elem>,
    upd: &DistDcsr<S::Elem>,
    threads: usize,
) {
    apply_update_matrix::<S>(mat, upd, ApplyOp::Mask, threads);
}

/// `MASK(A, A*)`: deletes every position of `A` that is non-zero in `A*`,
/// driven by a session [`Exec`](crate::exec::Exec). Local-only.
pub fn apply_mask_exec<S: Semiring>(
    mat: &mut DistMat<S::Elem>,
    upd: &DistDcsr<S::Elem>,
    exec: &crate::exec::Exec<S>,
) {
    apply_mask::<S>(mat, upd, exec.threads);
}

/// Inserts block-local triples into a DHB block with `(row mod T)`
/// parallelism, last write winning (used during construction).
///
/// Each shard radix-sorts its share row-major, deduplicates, and fills each
/// row through the bulk path ([`DhbRow::fill_sorted`]) — one reservation and
/// one index build per row instead of per-entry incremental growth.
pub fn apply_local_triples_set<V: Elem>(
    block: &mut DhbMatrix<V>,
    triples: &[Triple<V>],
    threads: usize,
) {
    let threads = threads.max(1);
    // Shard the triples by (row mod T) — the paper's partitioning.
    let (sorted, offsets) =
        counting_sort_by_key(triples.to_vec(), threads, |t| t.row as usize % threads);
    let shards = block.shard_rows_mut(threads);
    let shard_cells: Vec<Mutex<Vec<&mut DhbRow<V>>>> = shards.into_iter().map(Mutex::new).collect();
    parallel_for_each_shard(threads, |t| {
        let mut rows = shard_cells[t].lock();
        let mut mine: Vec<Triple<V>> = sorted[offsets[t]..offsets[t + 1]].to_vec();
        dspgemm_sparse::triple::sort_row_major(&mut mine);
        dspgemm_sparse::triple::dedup_last_wins(&mut mine);
        let mut i = 0;
        while i < mine.len() {
            let row = mine[i].row;
            let mut j = i + 1;
            while j < mine.len() && mine[j].row == row {
                j += 1;
            }
            let cols: Vec<dspgemm_sparse::Index> = mine[i..j].iter().map(|tr| tr.col).collect();
            let vals: Vec<V> = mine[i..j].iter().map(|tr| tr.val).collect();
            rows[row as usize / threads].fill_sorted(&cols, &vals);
            i = j;
        }
    });
    drop(shard_cells);
    block.recount_nnz();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;
    use dspgemm_sparse::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};
    use std::collections::BTreeMap;

    const N: Index = 40;

    fn random_tuples(seed: u64, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(N as u64) as Index,
                    rng.gen_range(N as u64) as Index,
                    rng.gen_range(100) + 1,
                )
            })
            .collect()
    }

    /// Reference model: apply the same global updates to a BTreeMap.
    fn model_apply(model: &mut BTreeMap<(Index, Index), u64>, upd: &[Triple<u64>], op: &str) {
        // Mirror Dedup first (Add for add-op batches, LastWins otherwise).
        let mut dedup: BTreeMap<(Index, Index), u64> = BTreeMap::new();
        for t in upd {
            match op {
                "add" => *dedup.entry((t.row, t.col)).or_insert(0) += t.val,
                _ => {
                    dedup.insert((t.row, t.col), t.val);
                }
            }
        }
        for ((r, c), v) in dedup {
            match op {
                "add" => *model.entry((r, c)).or_insert(0) += v,
                "merge" => {
                    model.insert((r, c), v);
                }
                "mask" => {
                    model.remove(&(r, c));
                }
                _ => unreachable!(),
            }
        }
    }

    fn check_against_model(p: usize, op: &'static str) {
        let out = run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            // Shared initial matrix, built identically on all ranks; rank 0
            // feeds the triples.
            let initial = if comm.rank() == 0 {
                random_tuples(1, 300)
            } else {
                vec![]
            };
            let mut mat = DistMat::from_global_triples(&grid, N, N, initial, 2, &mut timer);
            // Three update batches, each rank contributing its own draws.
            let mut all_batches = Vec::new();
            for round in 0..3u64 {
                let mine = random_tuples(100 + round * 10 + comm.rank() as u64, 50);
                let dedup = if op == "add" {
                    Dedup::Add
                } else {
                    Dedup::LastWins
                };
                let upd =
                    build_update_matrix::<U64Plus>(&grid, N, N, mine.clone(), dedup, &mut timer);
                match op {
                    "add" => apply_add::<U64Plus>(&mut mat, &upd, 3),
                    "merge" => apply_merge::<U64Plus>(&mut mat, &upd, 3),
                    "mask" => apply_mask::<U64Plus>(&mut mat, &upd, 3),
                    _ => unreachable!(),
                }
                all_batches.push(mine);
            }
            (mat.gather_to_root(comm), all_batches)
        });
        // Rebuild the reference model from the union of all ranks' batches.
        let mut model: BTreeMap<(Index, Index), u64> = BTreeMap::new();
        for t in random_tuples(1, 300) {
            model.insert((t.row, t.col), t.val);
        }
        for round in 0..3usize {
            let mut batch: Vec<Triple<u64>> = Vec::new();
            for (_, batches) in &out.results {
                batch.extend(batches[round].iter().copied());
            }
            model_apply(&mut model, &batch, op);
        }
        let gathered = out.results[0].0.as_ref().unwrap();
        let got: Vec<((Index, Index), u64)> =
            gathered.iter().map(|t| ((t.row, t.col), t.val)).collect();
        let expect: Vec<((Index, Index), u64)> = model.into_iter().collect();
        if op == "add" {
            // Adds across ranks commute, totals must match.
            let sum_got: u64 = got.iter().map(|(_, v)| v).sum();
            let sum_expect: u64 = expect.iter().map(|(_, v)| v).sum();
            assert_eq!(sum_got, sum_expect, "p={p} op={op}");
            assert_eq!(
                got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
                expect.iter().map(|(k, _)| *k).collect::<Vec<_>>()
            );
        } else if p == 1 {
            // With one rank there is no cross-rank write race: exact match.
            assert_eq!(got, expect, "p={p} op={op}");
        } else {
            // MERGE/MASK across ranks: the surviving key set can depend on
            // cross-rank batch interleaving only when the same key is
            // written by two ranks in one round; values may differ there.
            // Keys written by a single rank must match the model.
            let got_keys: std::collections::BTreeSet<_> = got.iter().map(|(k, _)| *k).collect();
            let expect_keys: std::collections::BTreeSet<_> =
                expect.iter().map(|(k, _)| *k).collect();
            assert_eq!(got_keys, expect_keys, "p={p} op={op} key sets differ");
        }
    }

    #[test]
    fn add_matches_model() {
        check_against_model(1, "add");
        check_against_model(4, "add");
    }

    #[test]
    fn merge_matches_model() {
        check_against_model(1, "merge");
        check_against_model(4, "merge");
    }

    #[test]
    fn mask_matches_model() {
        check_against_model(1, "mask");
        check_against_model(4, "mask");
    }

    #[test]
    fn local_triples_set_parallel_matches_serial() {
        let triples = random_tuples(9, 5000);
        let local: Vec<Triple<u64>> = triples
            .iter()
            .map(|t| Triple::new(t.row % 20, t.col % 20, t.val))
            .collect();
        let mut a = DhbMatrix::new(20, 20);
        apply_local_triples_set(&mut a, &local, 1);
        let mut b = DhbMatrix::new(20, 20);
        apply_local_triples_set(&mut b, &local, 4);
        assert_eq!(a.to_sorted_triples(), b.to_sorted_triples());
        assert_eq!(a.nnz(), b.nnz());
    }

    #[test]
    fn update_matrix_is_hypersparse_dcsr() {
        let out = run(4, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mine = if comm.rank() == 0 {
                vec![Triple::new(0, 0, 5u64), Triple::new(39, 39, 6)]
            } else {
                vec![]
            };
            let upd =
                build_update_matrix::<U64Plus>(&grid, N, N, mine, Dedup::LastWins, &mut timer);
            (upd.local_nnz(), upd.global_nnz(&grid))
        });
        assert!(out.results.iter().all(|&(_, g)| g == 2));
        // (0,0) on rank 0's block; (39,39) on rank 3's.
        assert_eq!(out.results[0].0, 1);
        assert_eq!(out.results[3].0, 1);
        assert_eq!(out.results[1].0 + out.results[2].0, 0);
    }
}
