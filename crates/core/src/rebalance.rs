//! Metrics-driven inter-rank rebalancing policy.
//!
//! The engine publishes per-rank load gauges (`engine.block_nnz.*`) at every
//! epoch publish. The [`Rebalancer`] turns that signal into action: when the
//! max/mean per-rank load imbalance crosses a configurable threshold (and a
//! cooldown of epochs has passed since the last move), it solves for new cut
//! points with [`crate::layout::rebalance_cuts`] over the per-stripe load and
//! the engine migrates every session matrix to the new [`Layout`] through
//! the two-phase redistribution path — only boundary stripes cross the wire.
//!
//! The *decision* must be rank-uniform (migration is collective), so the
//! engine has world rank 0 read the gauges for all ranks from the
//! process-global registry and broadcast the verdict; see
//! [`crate::engine::DynSpGemm::maybe_rebalance`]. This module holds the pure
//! policy pieces — testable without a grid.

use crate::layout::{rebalance_cuts, Layout};
use dspgemm_sparse::Index;

/// When and how eagerly the engine migrates block boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Max/mean per-rank load ratio above which a migration is considered.
    /// `1.0` is perfect balance; the default `1.5` tolerates mild skew
    /// (migration is not free — it costs one stripe redistribution plus a
    /// full republish of the migrated blocks).
    pub threshold: f64,
    /// Minimum epochs between migrations: hysteresis so an oscillating
    /// stream cannot thrash stripes back and forth every batch.
    pub cooldown: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            threshold: 1.5,
            cooldown: 2,
        }
    }
}

/// The rebalancing policy state carried by a [`crate::DynSpGemm`] session
/// (opt-in via `enable_rebalancing`).
#[derive(Debug, Clone)]
pub struct Rebalancer {
    /// The trigger configuration.
    pub cfg: RebalanceConfig,
    /// Epoch of the last migration (`None` before the first).
    last_migration_epoch: Option<u64>,
    /// Migrations performed so far.
    migrations: u64,
    /// Total migration wire bytes (alltoall category, summed over ranks).
    migrated_bytes: u64,
    /// The max/mean load imbalance observed at the last decision.
    last_imbalance: f64,
}

impl Rebalancer {
    /// A fresh policy with the given trigger configuration.
    pub fn new(cfg: RebalanceConfig) -> Self {
        Self {
            cfg,
            last_migration_epoch: None,
            migrations: 0,
            migrated_bytes: 0,
            last_imbalance: 1.0,
        }
    }

    /// Migrations performed so far.
    #[inline]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total migration wire bytes so far (alltoall category, network-wide).
    #[inline]
    pub fn migrated_bytes(&self) -> u64 {
        self.migrated_bytes
    }

    /// The max/mean load imbalance at the last decision point.
    #[inline]
    pub fn last_imbalance(&self) -> f64 {
        self.last_imbalance
    }

    /// The policy decision: given the current square layout's cuts and the
    /// per-rank loads (row-major over the `q × q` grid) at `epoch`, returns
    /// the new cut vector — or `None` to stay put (balanced enough, inside
    /// the cooldown, no load at all, or the solver reproduced the current
    /// cuts). Pure: call on the deciding rank, broadcast the result.
    pub fn decide(&self, old_cuts: &[Index], loads: &[u64], epoch: u64) -> Option<Vec<Index>> {
        let q = old_cuts.len() - 1;
        assert_eq!(loads.len(), q * q, "one load per grid rank");
        if imbalance(loads) < self.cfg.threshold {
            return None;
        }
        if let Some(last) = self.last_migration_epoch {
            if epoch.saturating_sub(last) < self.cfg.cooldown {
                return None;
            }
        }
        let stripes = stripe_loads(loads, q);
        if stripes.iter().all(|&w| w == 0) {
            return None;
        }
        let cuts = rebalance_cuts(old_cuts, &stripes);
        if cuts == old_cuts {
            return None;
        }
        Some(cuts)
    }

    /// Records the imbalance observed at a decision point (every rank, so
    /// the diagnostic state stays rank-uniform).
    pub fn note_decision(&mut self, imbalance: f64) {
        self.last_imbalance = imbalance;
    }

    /// Records a completed migration at `epoch` costing `bytes` on the wire.
    pub fn note_migration(&mut self, epoch: u64, bytes: u64) {
        self.last_migration_epoch = Some(epoch);
        self.migrations += 1;
        self.migrated_bytes += bytes;
    }
}

/// Max/mean of the per-rank loads; `1.0` when nothing is loaded.
pub fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1.0;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    max / (total as f64 / loads.len() as f64)
}

/// Per-stripe load for the square cut solver: stripe `k`'s weight is the
/// load of grid row `k` plus grid column `k`, because one square cut vector
/// bounds both the row and the column extent of every block.
pub fn stripe_loads(loads: &[u64], q: usize) -> Vec<u64> {
    let mut out = vec![0u64; q];
    for i in 0..q {
        for j in 0..q {
            let l = loads[i * q + j];
            out[i] += l;
            out[j] += l;
        }
    }
    out
}

/// Reads the per-rank load gauges the engine publishes at every epoch:
/// `engine.block_nnz.a.rank{r} + engine.block_nnz.c.rank{r}` for each of the
/// `p` ranks. (The flop gauges are *cumulative* across epochs, so nnz — the
/// state actually being migrated — is the balance signal.) Missing gauges
/// read as zero. The registry is process-global, so any rank can read all
/// ranks' gauges once a barrier orders the publishes before the read.
pub fn read_rank_load_gauges(p: usize) -> Vec<u64> {
    let reg = dspgemm_obs::global();
    (0..p)
        .map(|r| {
            let a = reg
                .gauge(&format!("engine.block_nnz.a.rank{r}"))
                .unwrap_or(0.0);
            let c = reg
                .gauge(&format!("engine.block_nnz.c.rank{r}"))
                .unwrap_or(0.0);
            (a + c) as u64
        })
        .collect()
}

/// The square [`Layout`] a decision migrates to.
pub fn layout_for_cuts(cuts: Vec<Index>) -> Layout {
    Layout::square(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_basics() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0, 0]), 1.0);
        assert_eq!(imbalance(&[5, 5, 5, 5]), 1.0);
        assert_eq!(imbalance(&[12, 0, 0, 0]), 4.0);
    }

    #[test]
    fn stripe_loads_sum_rows_and_cols() {
        // 2x2 grid, loads [[10, 2], [4, 0]]: stripe b sums grid row b and
        // grid column b — stripe 0 = (10 + 2) + (10 + 4), stripe 1 =
        // (4 + 0) + (2 + 0).
        let s = stripe_loads(&[10, 2, 4, 0], 2);
        assert_eq!(s, vec![26, 6]);
    }

    #[test]
    fn decide_respects_threshold_and_cooldown() {
        let old = vec![0u32, 3, 6, 9];
        let mut reb = Rebalancer::new(RebalanceConfig {
            threshold: 2.0,
            cooldown: 3,
        });
        // Balanced: no move.
        assert_eq!(reb.decide(&old, &[1; 9], 5), None);
        // Skewed beyond threshold: move.
        let mut skew = vec![0u64; 9];
        skew[0] = 900;
        let cuts = reb.decide(&old, &skew, 5).expect("must migrate");
        assert_ne!(cuts, old);
        reb.note_migration(5, 1024);
        assert_eq!(reb.migrations(), 1);
        assert_eq!(reb.migrated_bytes(), 1024);
        // Inside the cooldown the same skew is ignored...
        assert_eq!(reb.decide(&old, &skew, 6), None);
        assert_eq!(reb.decide(&old, &skew, 7), None);
        // ...and considered again once it expires.
        assert!(reb.decide(&old, &skew, 8).is_some());
    }

    #[test]
    fn decide_skips_no_op_cuts() {
        // Imbalance above threshold but the solver lands on the same cuts:
        // loads symmetric per stripe (heavy diagonal) on a tiny n.
        let reb = Rebalancer::new(RebalanceConfig {
            threshold: 1.0,
            cooldown: 0,
        });
        let old = vec![0u32, 1, 2, 3];
        // q=3, n=3: every stripe has width 1; equal stripe loads keep cuts.
        let loads = [9, 0, 0, 0, 9, 0, 0, 0, 9];
        assert_eq!(reb.decide(&old, &loads, 1), None);
        // All load at rank (0,0): even at width-1 stripes the solver
        // collapses the leading cuts onto the hot corner (zero-width
        // stripes 0 and 1), which is a real move.
        let mut corner = vec![0u64; 9];
        corner[0] = 36;
        assert_eq!(reb.decide(&old, &corner, 1), Some(vec![0, 0, 0, 3]));
    }

    #[test]
    fn zero_load_never_migrates() {
        let reb = Rebalancer::new(RebalanceConfig {
            threshold: 0.0,
            cooldown: 0,
        });
        assert_eq!(reb.decide(&[0, 3, 6, 9], &[0; 9], 1), None);
    }
}
