//! # dspgemm-core — distributed dynamic sparse matrices and dynamic SpGEMM
//!
//! The paper's primary contribution, reproduced in full:
//!
//! * [`grid`] — the `√p × √p` process grid with row/column communicators and
//!   the 2D block distribution (Section IV).
//! * [`layout`] — explicit block layouts ([`Layout`]): the monotone row/col
//!   cut points of the distribution, uniform by default, movable at run
//!   time; plus the weighted cut solver [`layout::rebalance_cuts`].
//! * [`rebalance`] — the metrics-driven [`Rebalancer`]: reads the per-rank
//!   load gauges the engine publishes each epoch and, past a configurable
//!   imbalance threshold, migrates block boundaries (stripe
//!   re-redistribution) to a freshly solved layout.
//! * [`recovery`] — fault tolerance for engine sessions: per-batch
//!   write-ahead logs replicated to a buddy rank, periodic copy-on-write
//!   epoch anchors, and deterministic rollback + replay after a rank
//!   failure (including full replacement-rank rebuild).
//! * [`distmat`] — dynamic distributed matrices ([`DistMat`], DHB blocks)
//!   and hypersparse distributed update matrices ([`DistDcsr`]).
//! * [`redistribute`] — the two-phase counting-sort/alltoall update
//!   redistribution (Section IV-B).
//! * [`update`] — update-matrix assembly plus the local `A += A*`,
//!   `MERGE`, `MASK` operators with `(i mod T)` thread parallelism
//!   (Section IV-A).
//! * [`summa`] — static sparse SUMMA (the paper's baseline algorithm and the
//!   producer of the initial product `C = A · B`), optionally fused with
//!   Bloom-filter tracking.
//! * [`dyn_algebraic`] — **Algorithm 1**: dynamic SpGEMM for algebraic
//!   updates, computing `C* = A*·B' + A·B*` with input-stationary broadcasts
//!   of only the hypersparse update blocks plus a sparse merge-reduction
//!   (Section V-A).
//! * [`dyn_general`] — **Algorithm 2**: dynamic SpGEMM for general updates
//!   via `COMPUTE_PATTERN`, Bloom-filtered extraction `A^R` and masked
//!   recomputation (Section V-B).
//! * [`engine`] — [`engine::DynSpGemm`], the user-facing session object that
//!   owns `A`, `B`, `C` (and the filter matrix `F`) and routes update
//!   batches to the right algorithm.
//! * [`spmv`] — distributed sparse matrix–vector multiplication reusing
//!   SUMMA's row/column communication domains ([`spmv::DistVec`]), the
//!   kernel behind the vector-shaped analytics views.
//! * [`pipeline`] — the pipelined round scheduler: double-buffers the
//!   broadcast/multiply rounds of every SpGEMM path over the nonblocking
//!   collectives so round `k + 1`'s panels are in flight while round `k`'s
//!   local multiply runs (communication/compute overlap).
//! * [`exec`] — the session-level local compute configuration
//!   ([`exec::Exec`]): thread count, skew-aware row schedule, and the
//!   pooled per-thread kernel workspaces every SpGEMM path leases from, so
//!   pipelined rounds stop reallocating accumulators.
//! * [`snapshot`] — epoch-versioned immutable snapshots of `{A, C}`
//!   published after committed batches ([`snapshot::Snapshot`]), built
//!   block-granular copy-on-write over the live matrices; readers pin an
//!   epoch and query it bit-stably while further batches commit — the
//!   serving interface behind `dspgemm-analytics`.
//!
//! Beyond the two per-engine algorithms, [`dyn_algebraic`] and
//! [`dyn_general`] also export *shared-operand* variants
//! (`apply_shared_*`) that maintain `C = A · A` for a single dynamic
//! matrix from a pre-redistributed update matrix — the hook the
//! `dspgemm-analytics` session uses so one redistribution feeds every
//! maintained view.
//!
//! ## Quick example
//!
//! ```
//! use dspgemm_core::{engine::DynSpGemm, grid::Grid, distmat::DistMat};
//! use dspgemm_sparse::{semiring::U64Plus, Triple};
//! use dspgemm_util::stats::PhaseTimer;
//!
//! let out = dspgemm_mpi::run(4, |comm| {
//!     let grid = Grid::new(comm);
//!     let mut timer = PhaseTimer::new();
//!     let n = 32;
//!     // B = a fixed matrix; A starts empty and will grow dynamically.
//!     let b_triples = if comm.rank() == 0 {
//!         (0..n).map(|i| Triple::new(i, (i + 1) % n, 1u64)).collect()
//!     } else {
//!         vec![]
//!     };
//!     let a = DistMat::empty(&grid, n, n);
//!     let b = DistMat::from_global_triples(&grid, n, n, b_triples, 1, &mut timer);
//!     let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
//!     // Insert a batch into A; C = A·B is updated dynamically.
//!     let ups = if comm.rank() == 0 { vec![Triple::new(0, 0, 2u64)] } else { vec![] };
//!     eng.apply_algebraic(&grid, ups, vec![]);
//!     eng.c.global_nnz(&grid)
//! });
//! assert_eq!(out.results, vec![1, 1, 1, 1]); // c_{0,1} = 2·b_{0,1}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distmat;
pub mod dyn_algebraic;
pub mod dyn_general;
pub mod engine;
pub mod exec;
pub mod grid;
pub mod layout;
pub mod pipeline;
pub mod rebalance;
pub mod recovery;
pub mod redistribute;
pub mod snapshot;
pub mod spmv;
pub mod summa;
pub mod update;

pub use distmat::{DistDcsr, DistMat};
pub use engine::DynSpGemm;
pub use exec::Exec;
pub use grid::Grid;
pub use layout::Layout;
pub use rebalance::{RebalanceConfig, Rebalancer};
pub use recovery::{RecoveryConfig, RecoveryReport};
pub use snapshot::{Snapshot, SnapshotMat, SnapshotStore};

/// Phase names used by the SpGEMM breakdown (the paper's Fig. 12 series).
pub mod phase {
    /// Initial transpose exchange of update blocks.
    pub const SEND_RECV: &str = "send/recv";
    /// Row/column broadcasts of update blocks.
    pub const BCAST: &str = "bcast";
    /// Local Gustavson multiplications.
    pub const LOCAL_MULT: &str = "local mult.";
    /// Update redistribution (scatter of tuples to owners).
    pub const SCATTER: &str = "scatter";
    /// Sparse merge-reduction of partial result blocks.
    pub const REDUCE_SCATTER: &str = "reduce-scatter";
    /// Applying updates / merged results into local dynamic matrices.
    pub const LOCAL_UPDATE: &str = "local update";
    /// Local counting-sort transposition of a rank's own block — the
    /// virtual-transposition replacement for [`SEND_RECV`] (Section V-C):
    /// pure local work where the physical path paid a wire exchange.
    pub const TRANSPOSE_LOCAL: &str = "transpose local";
}
