//! Two-phase update redistribution (Section IV-B).
//!
//! MPI processes generate update tuples `(i, j, x)` "independently and
//! without knowledge of the distribution of data across the MPI process
//! grid". Routing a tuple to the owner of block `(bi, bj)` takes two phases:
//!
//! 1. **row phase** — exchange across the rows of the grid (inside each
//!    *column* communicator), grouping tuples by destination grid row `bi`
//!    with a **counting sort over √p buckets**;
//! 2. **column phase** — exchange across the columns (inside each *row*
//!    communicator), grouping by destination grid column `bj`.
//!
//! Each `ALLTOALLV` involves only √p ranks and each counting sort only √p
//! buckets — the paper's stated advantage over the comparison-sort +
//! global-alltoall redistribution of CombBLAS/CTF (measured by the
//! `redistribution` ablation bench).

use crate::grid::{owner_block, Grid};
use crate::layout::Layout;
use crate::pipeline::await_into_phase;
use dspgemm_mpi::Request;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use dspgemm_util::{WireDecode, WireSize};

/// Phase-name constants for the Fig. 7 breakdown.
pub mod phase {
    /// Counting sorts grouping tuples by destination.
    pub const REDIST_SORT: &str = "redist. sort";
    /// The two `ALLTOALLV` exchanges.
    pub const REDIST_COMM: &str = "redist. comm.";
    /// Buffer allocation / assembly of received tuples.
    pub const MEM_MANAGEMENT: &str = "mem. management";
    /// Building the local update matrix (DCSR).
    pub const LOCAL_CONSTRUCT: &str = "local construct.";
    /// Applying the update matrix to the local dynamic block.
    pub const LOCAL_ADDITION: &str = "local addition";
}

/// The in-flight first half of a [`redistribute`]: the row-phase
/// `IALLTOALLV` has been issued (its sends are on the wire and progress
/// under whatever the caller does next) but not yet awaited. Produced by
/// [`redistribute_start`], consumed by [`redistribute_finish`].
///
/// This is the handle behind the engine's depth-1 inter-batch lookahead:
/// batch `k + 1`'s redistribution crosses the wire while batch `k`'s SpGEMM
/// rounds and epoch publish run.
pub struct InflightRedist<V: Copy + Send + Sync + WireSize + WireDecode + 'static> {
    req: Request<Vec<Vec<Triple<V>>>>,
}

/// Issues the first (row) phase of the two-phase redistribution
/// nonblocking: counting-sorts the tuples by destination grid row and
/// starts the column-communicator `IALLTOALLV`. Collective over the grid
/// (every rank must issue in the same order); complete with
/// [`redistribute_finish`].
pub fn redistribute_start<V>(
    grid: &Grid,
    nrows: Index,
    tuples: Vec<Triple<V>>,
    timer: &mut PhaseTimer,
) -> InflightRedist<V>
where
    V: Copy + Send + Sync + WireSize + WireDecode + 'static,
{
    let q = grid.q();
    let chunks = timer.time(phase::REDIST_SORT, || {
        partition_by(tuples, q, |t| owner_block(nrows, q, t.row).0)
    });
    InflightRedist {
        req: grid.col_comm().ialltoallv(chunks),
    }
}

/// Completes a redistribution started with [`redistribute_start`]: awaits
/// the row phase (blocked time goes into [`phase::REDIST_COMM`] exposed,
/// compute-hidden time into its overlapped share) and runs the second
/// (column) phase. Returns this rank's tuples, still globally indexed.
pub fn redistribute_finish<V>(
    grid: &Grid,
    ncols: Index,
    inflight: InflightRedist<V>,
    timer: &mut PhaseTimer,
) -> Vec<Triple<V>>
where
    V: Copy + Send + Sync + WireSize + WireDecode + 'static,
{
    let q = grid.q();
    let received = await_into_phase(inflight.req, timer, phase::REDIST_COMM);
    let tuples: Vec<Triple<V>> = timer.time(phase::MEM_MANAGEMENT, || {
        let total = received.iter().map(Vec::len).sum();
        let mut v = Vec::with_capacity(total);
        for chunk in received {
            v.extend(chunk);
        }
        v
    });

    // Phase 2: to the correct grid column, exchanging within my grid row.
    let chunks = timer.time(phase::REDIST_SORT, || {
        partition_by(tuples, q, |t| owner_block(ncols, q, t.col).0)
    });
    let received = timer.time(phase::REDIST_COMM, || grid.row_comm().alltoallv(chunks));
    timer.time(phase::MEM_MANAGEMENT, || {
        let total = received.iter().map(Vec::len).sum();
        let mut v = Vec::with_capacity(total);
        for chunk in received {
            v.extend(chunk);
        }
        v
    })
}

/// Routes every tuple to the rank owning its `(row, col)` position under the
/// grid's 2D block distribution of an `nrows × ncols` matrix. Returns this
/// rank's tuples (still globally indexed). Phase durations are accumulated
/// into `timer`.
///
/// Composed as [`redistribute_start`] + [`redistribute_finish`] back to
/// back, so the sequential path and the engine's pipelined lookahead share
/// one code path — same sorts, same collectives, byte-identical wire
/// traffic.
pub fn redistribute<V>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    tuples: Vec<Triple<V>>,
    timer: &mut PhaseTimer,
) -> Vec<Triple<V>>
where
    V: Copy + Send + Sync + WireSize + WireDecode + 'static,
{
    let inflight = redistribute_start(grid, nrows, tuples, timer);
    redistribute_finish(grid, ncols, inflight, timer)
}

/// Layout-keyed twin of [`redistribute_start`]: routes by the explicit cut
/// points of `layout` instead of the uniform closed form. Same sorts, same
/// collectives — under [`Layout::uniform`] the wire traffic is
/// byte-identical to the uniform path.
pub fn redistribute_start_in<V>(
    grid: &Grid,
    layout: &Layout,
    tuples: Vec<Triple<V>>,
    timer: &mut PhaseTimer,
) -> InflightRedist<V>
where
    V: Copy + Send + Sync + WireSize + WireDecode + 'static,
{
    let q = grid.q();
    debug_assert_eq!(layout.q(), q, "layout must target the grid side");
    let chunks = timer.time(phase::REDIST_SORT, || {
        partition_by(tuples, q, |t| layout.row_owner(t.row).0)
    });
    InflightRedist {
        req: grid.col_comm().ialltoallv(chunks),
    }
}

/// Layout-keyed twin of [`redistribute_finish`].
pub fn redistribute_finish_in<V>(
    grid: &Grid,
    layout: &Layout,
    inflight: InflightRedist<V>,
    timer: &mut PhaseTimer,
) -> Vec<Triple<V>>
where
    V: Copy + Send + Sync + WireSize + WireDecode + 'static,
{
    let q = grid.q();
    debug_assert_eq!(layout.q(), q, "layout must target the grid side");
    let received = await_into_phase(inflight.req, timer, phase::REDIST_COMM);
    let tuples: Vec<Triple<V>> = timer.time(phase::MEM_MANAGEMENT, || {
        let total = received.iter().map(Vec::len).sum();
        let mut v = Vec::with_capacity(total);
        for chunk in received {
            v.extend(chunk);
        }
        v
    });
    let chunks = timer.time(phase::REDIST_SORT, || {
        partition_by(tuples, q, |t| layout.col_owner(t.col).0)
    });
    let received = timer.time(phase::REDIST_COMM, || grid.row_comm().alltoallv(chunks));
    timer.time(phase::MEM_MANAGEMENT, || {
        let total = received.iter().map(Vec::len).sum();
        let mut v = Vec::with_capacity(total);
        for chunk in received {
            v.extend(chunk);
        }
        v
    })
}

/// Layout-keyed twin of [`redistribute`]: routes every tuple to the rank
/// owning its `(row, col)` position under the explicit cut points of
/// `layout`. This is the path stripe migration and all post-rebalance
/// update routing take; the uniform entry points above remain the static
/// fast path.
pub fn redistribute_in<V>(
    grid: &Grid,
    layout: &Layout,
    tuples: Vec<Triple<V>>,
    timer: &mut PhaseTimer,
) -> Vec<Triple<V>>
where
    V: Copy + Send + Sync + WireSize + WireDecode + 'static,
{
    let inflight = redistribute_start_in(grid, layout, tuples, timer);
    redistribute_finish_in(grid, layout, inflight, timer)
}

/// The counting-sort distribution pass: one counting pass for exact bucket
/// capacities, one scatter pass into per-bucket vectors. `O(n + buckets)`,
/// no comparisons — the paper's alternative to the competitors' comparison
/// sort.
fn partition_by<T>(items: Vec<T>, buckets: usize, mut key: impl FnMut(&T) -> usize) -> Vec<Vec<T>> {
    let offsets = dspgemm_util::sort::bucket_offsets(&items, buckets, &mut key);
    let mut out: Vec<Vec<T>> = (0..buckets)
        .map(|b| Vec::with_capacity(offsets[b + 1] - offsets[b]))
        .collect();
    for it in items {
        let k = key(&it);
        out[k].push(it);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;

    #[test]
    fn partition_by_groups_and_preserves_order() {
        let v = vec![3, 1, 2, 1, 3, 3];
        let chunks = partition_by(v, 4, |&x| x as usize);
        assert_eq!(chunks, vec![vec![], vec![1, 1], vec![2], vec![3, 3, 3]]);
        // Empty input.
        let chunks = partition_by(Vec::<u32>::new(), 3, |&x| x as usize);
        assert_eq!(chunks, vec![vec![], vec![], vec![]]);
    }

    #[test]
    fn every_tuple_reaches_its_owner() {
        let n: Index = 37;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let q = grid.q();
                // Each rank contributes tuples covering the whole index
                // space, tagged with origin.
                let mine: Vec<Triple<u64>> = (0..n)
                    .flat_map(|r| (0..n).map(move |c| Triple::new(r, c, (r * n + c) as u64)))
                    .filter(|t| (t.val as usize) % comm.size() == comm.rank())
                    .collect();
                let mut timer = PhaseTimer::new();
                let got = redistribute(&grid, n, n, mine, &mut timer);
                // Everything I received belongs to my block.
                let (i, j) = grid.coords();
                let rr = crate::grid::block_range(n, q, i);
                let cr = crate::grid::block_range(n, q, j);
                for t in &got {
                    assert!(rr.contains(&t.row) && cr.contains(&t.col));
                    assert_eq!(t.val, (t.row * n + t.col) as u64);
                }
                got.len()
            });
            let total: usize = out.results.iter().sum();
            assert_eq!(
                total,
                (n * n) as usize,
                "p={p}: no tuple lost or duplicated"
            );
        }
    }

    #[test]
    fn layout_routing_matches_ownership() {
        // Deliberately skewed cuts, including a narrow middle stripe: every
        // tuple must land on the rank whose layout ranges contain it.
        let n: Index = 30;
        let out = run(9, move |comm| {
            let grid = Grid::new(comm);
            let layout = Layout::square(vec![0, 3, 5, n]);
            let mine: Vec<Triple<u64>> = (0..n)
                .flat_map(|r| (0..n).map(move |c| Triple::new(r, c, (r * n + c) as u64)))
                .filter(|t| (t.val as usize) % comm.size() == comm.rank())
                .collect();
            let mut timer = PhaseTimer::new();
            let got = redistribute_in(&grid, &layout, mine, &mut timer);
            let (i, j) = grid.coords();
            let (rr, cr) = (layout.row_range(i), layout.col_range(j));
            for t in &got {
                assert!(rr.contains(&t.row) && cr.contains(&t.col));
                assert_eq!(t.val, (t.row * n + t.col) as u64);
            }
            got.len()
        });
        let total: usize = out.results.iter().sum();
        assert_eq!(total, (n * n) as usize, "no tuple lost or duplicated");
    }

    #[test]
    fn uniform_layout_routing_is_byte_identical() {
        // The layout-keyed path under a uniform layout must produce the
        // same wire volume as the closed-form path (same chunks, same
        // collectives).
        let n: Index = 37;
        let mk = |comm: &dspgemm_mpi::Comm| -> Vec<Triple<u64>> {
            (0..n)
                .flat_map(|r| (0..n).map(move |c| Triple::new(r, c, (r * n + c) as u64)))
                .filter(|t| (t.val as usize) % comm.size() == comm.rank())
                .collect()
        };
        let uni = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            redistribute(&grid, n, n, mk(comm), &mut timer).len()
        });
        let lay = run(4, move |comm| {
            let grid = Grid::new(comm);
            let layout = Layout::uniform(n, n, grid.q());
            let mut timer = PhaseTimer::new();
            redistribute_in(&grid, &layout, mk(comm), &mut timer).len()
        });
        assert_eq!(uni.results, lay.results);
        assert_eq!(uni.stats.volume(), lay.stats.volume());
    }

    #[test]
    fn communication_is_alltoall_category() {
        let out = run(4, |comm| {
            let grid = Grid::new(comm);
            let mine: Vec<Triple<u64>> = (0..100)
                .map(|k| Triple::new(k % 10, (k * 7) % 10, k as u64))
                .collect();
            let mut timer = PhaseTimer::new();
            redistribute(&grid, 10, 10, mine, &mut timer).len()
        });
        assert!(out.stats.bytes_in(dspgemm_mpi::CommCategory::Alltoall) > 0);
        assert_eq!(out.stats.bytes_in(dspgemm_mpi::CommCategory::Bcast), 0);
    }

    #[test]
    fn empty_input_everywhere() {
        let out = run(4, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            redistribute::<u64>(&grid, 10, 10, vec![], &mut timer).len()
        });
        assert!(out.results.iter().all(|&l| l == 0));
    }
}
