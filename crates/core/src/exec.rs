//! The per-session local compute configuration: thread count, row schedule,
//! and the workspace pools every SpGEMM path leases from.
//!
//! [`Exec`] is what turns the sparse crate's per-call
//! [`dspgemm_sparse::local_mm::KernelPlan`] into a *session*
//! resource: one `Exec` lives in the engine (or is built transiently per
//! collective call) and hands out plans whose pooled workspaces persist
//! across SUMMA rounds, dynamic X/Y passes, masked recomputes and analytics
//! refreshes — so the pipelined rounds of `crate::pipeline` reuse their
//! SPA scratch and flat output buffers instead of reallocating per round.
//!
//! Three pools are kept because the kernel payloads differ: plain values
//! (`S::Elem`), value+Bloom fusion (`(S::Elem, u64)`), and pattern bits
//! (`u64`). [`crate::dyn_algebraic::XYKernel::plan`] selects the right one.

use dspgemm_sparse::local_mm::KernelPlan;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::workspace::{TransposeLease, TransposePool, WorkspacePool};
use dspgemm_util::par::RowSchedule;

/// Local-kernel execution context for one semiring: intra-rank thread
/// count, row schedule, and the per-payload workspace pools.
#[derive(Debug)]
pub struct Exec<S: Semiring> {
    /// Intra-rank worker threads (the paper's OpenMP `T`).
    pub threads: usize,
    /// Row-to-worker assignment policy for every local multiply.
    pub schedule: RowSchedule,
    plain: WorkspacePool<S::Elem>,
    fused: WorkspacePool<(S::Elem, u64)>,
    pattern: WorkspacePool<u64>,
    transpose: TransposePool<S::Elem>,
}

impl<S: Semiring> Exec<S> {
    /// Flop-balanced execution with `threads` workers (the default).
    pub fn new(threads: usize) -> Self {
        Self::with_schedule(threads, RowSchedule::default())
    }

    /// Execution with an explicit [`RowSchedule`] (ablation arms).
    pub fn with_schedule(threads: usize, schedule: RowSchedule) -> Self {
        Self {
            threads,
            schedule,
            plain: WorkspacePool::new(),
            fused: WorkspacePool::new(),
            pattern: WorkspacePool::new(),
            transpose: TransposePool::new(),
        }
    }

    /// Plan for plain-valued kernels (`spgemm`).
    pub fn plain(&self) -> KernelPlan<'_, S::Elem> {
        KernelPlan::with_schedule(self.threads, self.schedule).pooled(&self.plain)
    }

    /// Plan for Bloom-fused kernels (`spgemm_bloom`, `masked_spgemm_bloom`).
    pub fn fused(&self) -> KernelPlan<'_, (S::Elem, u64)> {
        KernelPlan::with_schedule(self.threads, self.schedule).pooled(&self.fused)
    }

    /// Plan for pattern kernels (`spgemm_pattern`).
    pub fn pattern(&self) -> KernelPlan<'_, u64> {
        KernelPlan::with_schedule(self.threads, self.schedule).pooled(&self.pattern)
    }

    /// Leases a pooled transposition workspace for the virtual-transpose
    /// local step (`Csr::transpose_into` / `Dcsr::transpose_into`); the
    /// workspace returns to the pool on drop.
    pub fn transpose_ws(&self) -> TransposeLease<'_, S::Elem> {
        self.transpose.lease()
    }

    /// Total heap bytes idling in the pools (workspace-reuse
    /// regression signal; see
    /// [`WorkspacePool::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.plain.heap_bytes()
            + self.fused.heap_bytes()
            + self.pattern.heap_bytes()
            + self.transpose.heap_bytes()
    }

    /// Stashed workspace counts per pool `(plain, fused, pattern)`.
    pub fn stashed(&self) -> (usize, usize, usize) {
        (
            self.plain.stashed(),
            self.fused.stashed(),
            self.pattern.stashed(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_sparse::semiring::U64Plus;

    #[test]
    fn plans_carry_schedule_threads_and_pools() {
        let exec = Exec::<U64Plus>::with_schedule(3, RowSchedule::WorkStealing);
        let p = exec.plain();
        assert_eq!(p.threads, 3);
        assert_eq!(p.schedule, RowSchedule::WorkStealing);
        assert!(p.pool.is_some());
        assert!(exec.fused().pool.is_some());
        assert!(exec.pattern().pool.is_some());
        assert_eq!(exec.stashed(), (0, 0, 0));
        assert_eq!(exec.heap_bytes(), 0);
    }
}
