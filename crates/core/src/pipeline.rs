//! The pipelined round scheduler: communication/compute overlap for the
//! broadcast-multiply round structure shared by every SpGEMM path.
//!
//! SUMMA and the dynamic algorithms all run `√p` rounds of *broadcast a
//! panel, multiply it locally*. With blocking collectives the two steps
//! serialize: every rank idles through round `k`'s broadcast before touching
//! its kernel. The scheduler double-buffers instead — round `k + 1`'s
//! communication is **issued** (nonblocking) before round `k`'s compute, so
//! the panels of the next round are in flight while the current multiply
//! runs, and the wait at the top of round `k + 1` finds them (mostly)
//! already arrived. The memory cost is exactly one extra in-flight panel
//! set per operand (the `Flight` value held across the body).
//!
//! The round *schedule* is unchanged — same collectives, same tags, same
//! wire bytes, same merge order — so results are bit-identical to the
//! blocking schedule and the metered communication volume is byte-identical
//! (property-tested in `tests/overlap.rs`). Only the exposed/overlapped
//! split of communication *time* moves.

use dspgemm_mpi::{Overlap, Request};
use dspgemm_util::stats::PhaseTimer;

/// Whether a round loop runs with one-round communication lookahead.
///
/// `Blocking` issues each round's communication immediately before waiting
/// on it — byte-for-byte the pre-pipelining schedule, kept as the ablation
/// baseline (`repro overlap`) and for `p = 1` grids where there is nothing
/// to overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Issue round `k + 1` before computing round `k` (the default).
    Overlap,
    /// Issue round `k` right before completing round `k`.
    Blocking,
}

/// Runs `rounds` rounds of issue → complete → compute with the given
/// schedule. `ctx` is the caller's mutable round state (timer,
/// accumulators, output blocks), threaded through every callback so call
/// sites keep plain `&mut` state instead of interior-mutability cells.
///
/// * `issue(ctx, k)` starts round `k`'s communication and returns its
///   in-flight handle(s) — typically a tuple of [`Request`]s.
/// * `complete(ctx, k, flight)` waits for round `k`'s communication and
///   returns the ready operand(s).
/// * `body(ctx, k, ready)` is the local compute (multiply/merge/reduce) of
///   round `k`.
///
/// Under [`Schedule::Overlap`] the call order is
/// `issue(0), [complete(0), issue(1), body(0)], [complete(1), issue(2),
/// body(1)], …` — every rank issues the same collectives in the same order
/// (the SPMD contract), just one round ahead of the compute.
pub fn run_rounds<Ctx, Flight, Ready>(
    ctx: &mut Ctx,
    rounds: usize,
    schedule: Schedule,
    mut issue: impl FnMut(&mut Ctx, usize) -> Flight,
    mut complete: impl FnMut(&mut Ctx, usize, Flight) -> Ready,
    mut body: impl FnMut(&mut Ctx, usize, Ready),
) {
    if rounds == 0 {
        return;
    }
    match schedule {
        Schedule::Overlap => {
            let mut flight = Some(issue(ctx, 0));
            for k in 0..rounds {
                let ready = complete(ctx, k, flight.take().expect("round in flight"));
                if k + 1 < rounds {
                    flight = Some(issue(ctx, k + 1));
                }
                let _sp = dspgemm_obs::span("round", "round").attr("round", k as u64);
                body(ctx, k, ready);
            }
        }
        Schedule::Blocking => {
            for k in 0..rounds {
                let flight = issue(ctx, k);
                let ready = complete(ctx, k, flight);
                let _sp = dspgemm_obs::span("round", "round").attr("round", k as u64);
                body(ctx, k, ready);
            }
        }
    }
}

/// Waits for a request and attributes its timing split to `phase`: the
/// blocked wait goes into the phase's exposed wall time ([`PhaseTimer::add`],
/// part of `total()`), the compute-hidden remainder into the phase's
/// overlapped communication ([`PhaseTimer::add_overlapped`]) — so hidden
/// communication is never double-counted against the compute phase that
/// covered it, while `comm_total(phase)` still reports the full Fig. 7/12
/// communication cost.
pub fn await_into_phase<T: 'static>(req: Request<T>, timer: &mut PhaseTimer, phase: &str) -> T {
    let (value, timing) = req.wait_timed();
    record_overlap(&timing, timer, phase);
    value
}

/// Attributes an already-measured request timing split to `phase` (for call
/// sites that need the value and the timing separately).
pub fn record_overlap(timing: &Overlap, timer: &mut PhaseTimer, phase: &str) {
    timer.add(phase, timing.exposed);
    timer.add_overlapped(phase, timing.overlapped());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_schedule_issues_one_round_ahead() {
        // Flight/Ready are just the round index; the ctx is a plain
        // `&mut Vec` call-order log — no interior mutability needed.
        let mut log: Vec<String> = Vec::new();
        run_rounds(
            &mut log,
            3,
            Schedule::Overlap,
            |log, k| {
                log.push(format!("issue{k}"));
                k
            },
            |log, k, f| {
                assert_eq!(k, f);
                log.push(format!("complete{k}"));
                k
            },
            |log, k, r| {
                assert_eq!(k, r);
                log.push(format!("body{k}"));
                // When body k runs, round k+1 must already be issued.
                if k + 1 < 3 {
                    assert!(
                        log.contains(&format!("issue{}", k + 1)),
                        "round {} in flight",
                        k + 1
                    );
                }
            },
        );
        assert_eq!(
            log,
            vec![
                "issue0",
                "complete0",
                "issue1",
                "body0",
                "complete1",
                "issue2",
                "body1",
                "complete2",
                "body2"
            ]
        );
    }

    #[test]
    fn blocking_schedule_is_strictly_sequential() {
        let mut order: Vec<String> = Vec::new();
        run_rounds(
            &mut order,
            2,
            Schedule::Blocking,
            |order, k| {
                order.push(format!("issue{k}"));
                k
            },
            |order, k, f| {
                order.push(format!("complete{k}"));
                f
            },
            |order, k, _| order.push(format!("body{k}")),
        );
        assert_eq!(
            order,
            vec![
                "issue0",
                "complete0",
                "body0",
                "issue1",
                "complete1",
                "body1"
            ]
        );
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        run_rounds(
            &mut (),
            0,
            Schedule::Overlap,
            |_, _| unreachable!("no rounds"),
            |_, _, f: ()| f,
            |_, _, _| unreachable!("no rounds"),
        );
    }
}
