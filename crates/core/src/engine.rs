//! The user-facing dynamic SpGEMM session.
//!
//! [`DynSpGemm`] owns the operand matrices `A` and `B`, the maintained
//! product `C = A · B`, and (optionally) the Bloom filter matrix `F` that
//! general updates require. Update batches are routed to Algorithm 1
//! (algebraic) or Algorithm 2 (general); the session keeps the invariant
//! `C = A · B` after every call — verified end-to-end by the integration
//! tests against static recomputation.

use crate::distmat::{DistMat, MigrationStats};
use crate::dyn_algebraic::{
    apply_algebraic_updates_mode_exec, apply_algebraic_updates_prebuilt_exec,
    apply_algebraic_updates_tracked_mode_exec, apply_algebraic_updates_tracked_prebuilt_exec,
    StarBuild, TransposeMode,
};
use crate::dyn_general::{apply_general_updates_mode_exec, GeneralUpdates};
use crate::exec::Exec;
use crate::grid::Grid;
use crate::layout::Layout;
use crate::rebalance::{imbalance, read_rank_load_gauges, RebalanceConfig, Rebalancer};
use crate::recovery::{
    Anchor, LoggedBatch, MatImage, RecoveryConfig, RecoveryReport, RecoveryState, ReplicaBundle,
    TAG_ANCHOR, TAG_REBUILD, TAG_WAL,
};
use crate::snapshot::{Snapshot, SnapshotMat, SnapshotStore};
use crate::summa::{summa_bloom_exec, summa_exec};
use crate::update::{
    start_update_matrix_in, start_update_matrix_pair_in, Dedup, PendingStarPair,
    PendingUpdateMatrix,
};
use dspgemm_mpi::{catch_comm_mut, CommError};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Index, Triple};
use dspgemm_util::stats::PhaseTimer;
use dspgemm_util::WireSize;
use std::sync::Arc;

/// An algebraic batch whose redistribution row-phase `IALLTOALLV`s are in
/// flight — the content of [`DynSpGemm`]'s depth-1 lookahead slot. One
/// handle per operand (two per operand under virtual transposition, where
/// each star is built in both layouts).
enum PendingBatch<S: Semiring> {
    /// Natural-layout builds only ([`TransposeMode::Physical`]).
    Physical {
        a: Box<PendingUpdateMatrix<S>>,
        b: Box<PendingUpdateMatrix<S>>,
    },
    /// Natural + transposed builds ([`TransposeMode::Virtual`]).
    Virtual {
        a: Box<PendingStarPair<S>>,
        b: Box<PendingStarPair<S>>,
    },
}

/// A dynamic SpGEMM session maintaining `C = A · B` under batched updates.
pub struct DynSpGemm<S: Semiring> {
    /// Left operand (dynamic). Mutating it directly (rather than through
    /// the `apply_*` batch calls) requires an explicit SPMD
    /// [`DynSpGemm::publish`] before the next [`DynSpGemm::snapshot`] —
    /// see the latter's docs.
    pub a: DistMat<S::Elem>,
    /// Right operand (dynamic). Same direct-mutation caveat as `a`.
    pub b: DistMat<S::Elem>,
    /// The maintained product. Same direct-mutation caveat as `a`.
    pub c: DistMat<S::Elem>,
    /// The Bloom filter matrix `F` (present iff the session tracks filters,
    /// which is required before general updates can be applied).
    pub f: Option<DistMat<u64>>,
    /// Local compute configuration: thread count (the paper's OpenMP `T`),
    /// row schedule, and the workspace pools that persist across every
    /// update batch and recomputation of this session.
    pub exec: Exec<S>,
    /// Accumulated per-phase timings (Fig. 7 / Fig. 12 breakdowns).
    pub timer: PhaseTimer,
    /// Accumulated local scalar-multiplication count.
    pub flops: u64,
    /// How update-SpGEMM round roots obtain their transposed-position
    /// blocks ([`TransposeMode::Virtual`] — the communication-avoiding
    /// Section V-C schedule — by default). Must be rank-uniform: the mode
    /// changes the collective schedule. The maintained `C` is bit-identical
    /// across modes.
    pub transpose_mode: TransposeMode,
    /// Published epochs of `{A, C}` (see [`crate::snapshot`]); the latest is
    /// held here, older ones live as long as a reader pins them.
    snapshots: SnapshotStore<Snapshot<S::Elem>>,
    /// Whether a batch committed since the last publish.
    dirty: bool,
    /// The depth-1 inter-batch lookahead slot: a submitted algebraic batch
    /// whose redistribution is in flight (see
    /// [`DynSpGemm::submit_algebraic`]).
    pending: Option<PendingBatch<S>>,
    /// The dynamic inter-rank rebalancing policy (opt-in via
    /// [`DynSpGemm::enable_rebalancing`]; `None` keeps the distribution
    /// static, the pre-rebalancing behavior).
    rebalancer: Option<Rebalancer>,
    /// Epoch-anchored recovery state (opt-in via
    /// [`DynSpGemm::enable_recovery`]; mutually exclusive with
    /// rebalancing).
    recovery: Option<RecoveryState<S::Elem>>,
}

impl<S: Semiring> DynSpGemm<S> {
    /// Creates a session, computing the initial product `C = A · B` with
    /// sparse SUMMA (fused with Bloom tracking when `track_filter`).
    /// Collective over the grid.
    pub fn new(
        grid: &Grid,
        a: DistMat<S::Elem>,
        b: DistMat<S::Elem>,
        threads: usize,
        track_filter: bool,
    ) -> Self {
        Self::new_with_exec(grid, a, b, Exec::new(threads), track_filter)
    }

    /// [`DynSpGemm::new`] with an explicit local compute configuration
    /// (row schedule ablations, pre-warmed pools). Collective over the grid.
    pub fn new_with_exec(
        grid: &Grid,
        a: DistMat<S::Elem>,
        b: DistMat<S::Elem>,
        exec: Exec<S>,
        track_filter: bool,
    ) -> Self {
        let mut timer = PhaseTimer::new();
        let (c, f, flops) = if track_filter {
            let (c, f, flops) = summa_bloom_exec::<S>(grid, &a, &b, &exec, &mut timer);
            (c, Some(f), flops)
        } else {
            let (c, flops) = summa_exec::<S>(grid, &a, &b, &exec, &mut timer);
            (c, None, flops)
        };
        let mut eng = Self {
            a,
            b,
            c,
            f,
            exec,
            timer,
            flops,
            transpose_mode: TransposeMode::default(),
            snapshots: SnapshotStore::new(),
            dirty: false,
            pending: None,
            rebalancer: None,
            recovery: None,
        };
        // Epoch 0: the initial product, queryable before any batch.
        eng.publish();
        eng
    }

    /// Intra-rank thread count (the paper's OpenMP `T`).
    pub fn threads(&self) -> usize {
        self.exec.threads
    }

    // ------------------------------------------------------------------
    // Epoch-versioned snapshots (the serving interface)
    // ------------------------------------------------------------------

    /// Publishes the current `{A, C}` as the next epoch and returns the
    /// pinned handle. Local-only (no collectives): every rank converts at
    /// most the blocks the batches since the last publish touched —
    /// untouched blocks are re-shared copy-on-write from the previous
    /// epoch. SPMD callers publish in lockstep, so epoch numbers agree on
    /// every rank.
    ///
    /// # Panics
    /// Panics if a [`DynSpGemm::submit_algebraic`] batch is still in
    /// flight: publishing would capture pre-batch content on every rank
    /// while the batch's redistribution is already on the wire, and a later
    /// flush would silently postdate it. Call [`DynSpGemm::flush`] first
    /// (epoch contents then match the sequential schedule exactly).
    pub fn publish(&mut self) -> Arc<Snapshot<S::Elem>> {
        assert!(
            self.pending.is_none(),
            "flush() the submitted algebraic batch before publish()/snapshot()"
        );
        let a = SnapshotMat::new(self.a.info().clone(), self.a.snapshot_csr());
        let c = SnapshotMat::new(self.c.info().clone(), self.c.snapshot_csr());
        self.dirty = false;
        let snap = self
            .snapshots
            .publish_with(|epoch| Snapshot::new(epoch, a, c));
        self.record_load(snap.epoch());
        snap
    }

    /// Emits the `epoch_publish` trace instant and refreshes this rank's
    /// per-block load gauges — local nnz of `A` and `C` plus accumulated
    /// local flops, the skew signal a rebalancing policy would key on.
    fn record_load(&self, epoch: u64) {
        let nnz_a = self.a.block().nnz() as u64;
        let nnz_c = self.c.block().nnz() as u64;
        dspgemm_obs::instant(
            "engine",
            "epoch_publish",
            &[
                ("epoch", epoch),
                ("nnz_a", nnz_a),
                ("nnz_c", nnz_c),
                ("flops", self.flops),
            ],
        );
        let rank = dspgemm_obs::thread_rank();
        let reg = dspgemm_obs::global();
        reg.gauge_set(&format!("engine.block_nnz.a.rank{rank}"), nnz_a as f64);
        reg.gauge_set(&format!("engine.block_nnz.c.rank{rank}"), nnz_c as f64);
        reg.gauge_set(&format!("engine.block_flops.rank{rank}"), self.flops as f64);
    }

    /// Pins the current epoch: returns the latest published snapshot,
    /// publishing first if engine batches ([`DynSpGemm::apply_algebraic`],
    /// [`DynSpGemm::apply_general`], [`DynSpGemm::recompute_static`])
    /// committed since the last publish — so the returned epoch always
    /// reflects every committed batch. Readers keep the returned `Arc` for
    /// as long as they need repeatable reads; the `apply_*` paths never
    /// mutate a published epoch.
    ///
    /// The lazy-publish decision must be rank-uniform (publishing advances
    /// the epoch counter), so it keys on the *collective* batch calls
    /// above. Callers that mutate the public matrix fields directly (e.g.
    /// `eng.a.block_mut()`) must follow up with an explicit SPMD
    /// [`DynSpGemm::publish`] — `snapshot()` cannot observe such mutations,
    /// and any per-rank content check would let ranks' epoch numbers
    /// diverge (a rank whose local block a batch left untouched would skip
    /// the publish its peers perform).
    pub fn snapshot(&mut self) -> Arc<Snapshot<S::Elem>> {
        assert!(
            self.pending.is_none(),
            "flush() the submitted algebraic batch before publish()/snapshot()"
        );
        if self.dirty || self.snapshots.latest().is_none() {
            self.publish()
        } else {
            Arc::clone(self.snapshots.latest().expect("published above"))
        }
    }

    /// The latest published epoch number (`None` before the first publish —
    /// unreachable through the public constructors, which publish epoch 0).
    pub fn epoch(&self) -> Option<u64> {
        self.snapshots.latest().map(|s| s.epoch())
    }

    /// The snapshot registry (retention diagnostics: how many epochs are
    /// still pinned, and their memory footprint).
    pub fn snapshots(&self) -> &SnapshotStore<Snapshot<S::Elem>> {
        &self.snapshots
    }

    /// Applies a batch of **algebraic** updates (`A' = A + A*`,
    /// `B' = B + B*` under the semiring addition) via Algorithm 1.
    /// Tuples carry global indices and may live on any rank. A pending
    /// [`DynSpGemm::submit_algebraic`] batch is flushed first, preserving
    /// submission order. Collective.
    pub fn apply_algebraic(
        &mut self,
        grid: &Grid,
        a_updates: Vec<Triple<S::Elem>>,
        b_updates: Vec<Triple<S::Elem>>,
    ) {
        self.flush(grid);
        self.apply_algebraic_core(grid, a_updates, b_updates);
    }

    /// The collective body of an algebraic batch, shared between
    /// [`DynSpGemm::apply_algebraic`], the fault-tolerant
    /// [`DynSpGemm::try_apply_algebraic`], and recovery replay. Assumes any
    /// pending submitted batch was already flushed.
    fn apply_algebraic_core(
        &mut self,
        grid: &Grid,
        a_updates: Vec<Triple<S::Elem>>,
        b_updates: Vec<Triple<S::Elem>>,
    ) {
        let _sp = dspgemm_obs::span("engine", "apply_algebraic")
            .attr("updates", (a_updates.len() + b_updates.len()) as u64);
        self.dirty = true;
        self.flops += match &mut self.f {
            Some(f) => apply_algebraic_updates_tracked_mode_exec::<S>(
                grid,
                &mut self.a,
                &mut self.b,
                &mut self.c,
                f,
                a_updates,
                b_updates,
                self.transpose_mode,
                &self.exec,
                &mut self.timer,
            ),
            None => apply_algebraic_updates_mode_exec::<S>(
                grid,
                &mut self.a,
                &mut self.b,
                &mut self.c,
                a_updates,
                b_updates,
                self.transpose_mode,
                &self.exec,
                &mut self.timer,
            ),
        };
    }

    /// Submits a batch of algebraic updates with **inter-batch
    /// pipelining**: the batch's redistribution row phase is issued
    /// nonblocking (`IALLTOALLV`) and parked in the depth-1 lookahead
    /// slot; the *previously* submitted batch (if any) is then completed
    /// and applied — its SpGEMM rounds, merge-reductions and local updates
    /// run while the progress engine moves the new batch's redistribution
    /// in the background. Collective; every rank must submit the same
    /// sequence of batches.
    ///
    /// The queue is bounded at depth 1 by construction: submitting drains
    /// the previous batch before returning, so at most one redistribution
    /// is ever in flight across batches ([`DynSpGemm::pending_depth`]).
    /// Wire traffic is byte-identical to the sequential
    /// [`DynSpGemm::apply_algebraic`] schedule — both run the same
    /// two-phase redistribution code path; only the completion point moves
    /// — and the maintained `C` is bit-identical because batches still
    /// apply in submission order. Observable state (the public matrix
    /// fields, epochs) reflects a submitted batch only once a later
    /// `submit_algebraic`, [`DynSpGemm::flush`], or batch call completes
    /// it; [`DynSpGemm::publish`]/[`DynSpGemm::snapshot`] refuse to run
    /// with a batch still pending so epoch contents always equal the
    /// sequential schedule's.
    pub fn submit_algebraic(
        &mut self,
        grid: &Grid,
        a_updates: Vec<Triple<S::Elem>>,
        b_updates: Vec<Triple<S::Elem>>,
    ) {
        let _sp = dspgemm_obs::span("engine", "redist_lookahead")
            .attr("updates", (a_updates.len() + b_updates.len()) as u64);
        // Route under the operands' *current* layouts: after a rebalancing
        // migration the update matrices must land on the new owners.
        let a_layout = Arc::clone(self.a.info().layout());
        let b_layout = Arc::clone(self.b.info().layout());
        // Issue the new batch's row phase first so it is already in flight
        // while the previous batch (drained below) computes.
        let newly = match self.transpose_mode {
            TransposeMode::Physical => PendingBatch::Physical {
                a: Box::new(start_update_matrix_in::<S>(
                    grid,
                    &a_layout,
                    a_updates,
                    Dedup::Add,
                    &mut self.timer,
                )),
                b: Box::new(start_update_matrix_in::<S>(
                    grid,
                    &b_layout,
                    b_updates,
                    Dedup::Add,
                    &mut self.timer,
                )),
            },
            TransposeMode::Virtual => PendingBatch::Virtual {
                a: Box::new(start_update_matrix_pair_in::<S>(
                    grid,
                    &a_layout,
                    a_updates,
                    Dedup::Add,
                    &mut self.timer,
                )),
                b: Box::new(start_update_matrix_pair_in::<S>(
                    grid,
                    &b_layout,
                    b_updates,
                    Dedup::Add,
                    &mut self.timer,
                )),
            },
        };
        let previous = self.pending.replace(newly);
        self.complete(grid, previous);
    }

    /// Completes and applies the submitted batch still in flight, if any —
    /// the linearization point of [`DynSpGemm::submit_algebraic`].
    /// Idempotent. Collective when a batch is pending (rank-uniform by the
    /// submit discipline).
    pub fn flush(&mut self, grid: &Grid) {
        let previous = self.pending.take();
        self.complete(grid, previous);
    }

    /// Number of submitted batches whose redistribution is in flight
    /// (0 or 1 — the lookahead is depth-bounded).
    pub fn pending_depth(&self) -> usize {
        usize::from(self.pending.is_some())
    }

    /// Finishes a pending batch's redistributions (await into
    /// `redist. comm.` exposed/overlapped, then the column phase) and
    /// applies it through the prebuilt Algorithm-1 path.
    fn complete(&mut self, grid: &Grid, batch: Option<PendingBatch<S>>) {
        let Some(batch) = batch else { return };
        self.dirty = true;
        let (a_star, b_star) = match batch {
            PendingBatch::Physical { a, b } => (
                StarBuild::Physical(a.finish(grid, &mut self.timer)),
                StarBuild::Physical(b.finish(grid, &mut self.timer)),
            ),
            PendingBatch::Virtual { a, b } => (
                StarBuild::Virtual(a.finish(grid, &mut self.timer)),
                StarBuild::Virtual(b.finish(grid, &mut self.timer)),
            ),
        };
        self.flops += match &mut self.f {
            Some(f) => apply_algebraic_updates_tracked_prebuilt_exec::<S>(
                grid,
                &mut self.a,
                &mut self.b,
                &mut self.c,
                f,
                &a_star,
                &b_star,
                &self.exec,
                &mut self.timer,
            ),
            None => apply_algebraic_updates_prebuilt_exec::<S>(
                grid,
                &mut self.a,
                &mut self.b,
                &mut self.c,
                &a_star,
                &b_star,
                &self.exec,
                &mut self.timer,
            ),
        };
    }

    /// Applies a batch of **general** updates (value writes incompatible
    /// with the semiring addition, and deletions) via Algorithm 2.
    /// Collective.
    ///
    /// # Panics
    /// Panics if the session was created without `track_filter` — the
    /// Bloom filter matrix is a prerequisite of the general algorithm.
    pub fn apply_general(
        &mut self,
        grid: &Grid,
        a_updates: GeneralUpdates<S::Elem>,
        b_updates: GeneralUpdates<S::Elem>,
    ) {
        self.flush(grid);
        let _sp = dspgemm_obs::span("engine", "apply_general")
            .attr("updates", (a_updates.len() + b_updates.len()) as u64);
        let f = self
            .f
            .as_mut()
            .expect("general updates require a session created with track_filter = true");
        self.dirty = true;
        self.flops += apply_general_updates_mode_exec::<S>(
            grid,
            &mut self.a,
            &mut self.b,
            &mut self.c,
            f,
            a_updates,
            b_updates,
            self.transpose_mode,
            &self.exec,
            &mut self.timer,
        );
    }

    /// Discards the maintained product and recomputes `C = A · B` (and `F`)
    /// from scratch — the static strategy the paper's competitors are forced
    /// into. Useful as a baseline and as a repair path. Collective.
    pub fn recompute_static(&mut self, grid: &Grid) {
        self.flush(grid);
        let _sp = dspgemm_obs::span("engine", "recompute");
        self.dirty = true;
        if self.f.is_some() {
            let (c, f, flops) =
                summa_bloom_exec::<S>(grid, &self.a, &self.b, &self.exec, &mut self.timer);
            self.c = c;
            self.f = Some(f);
            self.flops += flops;
        } else {
            let (c, flops) = summa_exec::<S>(grid, &self.a, &self.b, &self.exec, &mut self.timer);
            self.c = c;
            self.flops += flops;
        }
    }

    // ------------------------------------------------------------------
    // Dynamic inter-rank rebalancing
    // ------------------------------------------------------------------

    /// Opts this session into metrics-driven inter-rank rebalancing:
    /// [`DynSpGemm::maybe_rebalance`] becomes live with the given trigger
    /// configuration. Requires square operands (one square cut vector keeps
    /// `A`, `B`, `C`, `F` mutually SUMMA-conformal through every
    /// migration). Must be enabled rank-uniformly.
    ///
    /// # Panics
    /// Panics if the session's matrices are not all square of one size.
    pub fn enable_rebalancing(&mut self, cfg: RebalanceConfig) {
        let (an, ac) = (self.a.info().nrows, self.a.info().ncols);
        let (bn, bc) = (self.b.info().nrows, self.b.info().ncols);
        assert!(
            an == ac && bn == bc && an == bn,
            "rebalancing requires square operands of one size (got A {an}x{ac}, B {bn}x{bc})"
        );
        assert!(
            self.recovery.is_none(),
            "rebalancing and epoch-anchored recovery are mutually exclusive (anchors pin a layout)"
        );
        self.rebalancer = Some(Rebalancer::new(cfg));
    }

    /// The rebalancing policy state, when enabled (migration/byte counters
    /// and the last observed imbalance).
    pub fn rebalancer(&self) -> Option<&Rebalancer> {
        self.rebalancer.as_ref()
    }

    /// One rebalancing step: publishes the current epoch (refreshing the
    /// per-rank load gauges), has world rank 0 read all ranks' gauges and
    /// decide — max/mean nnz imbalance vs. the configured threshold, under
    /// the migration cooldown — and, when the verdict is a new cut vector,
    /// migrates `A`, `B`, `C` (and `F`) to the new [`Layout`] through the
    /// two-phase redistribution path and re-publishes under it. Returns
    /// whether a migration happened. No-op unless
    /// [`DynSpGemm::enable_rebalancing`] was called. Collective over the
    /// grid.
    ///
    /// Pinned pre-migration snapshots are untouched: they keep their own
    /// layout inside their [`crate::distmat::BlockInfo`], so epoch readers
    /// stay bit-stable across the remap. Migration wire cost is metered
    /// from each rank's own alltoall byte counters (summed network-wide)
    /// and accumulated on the session's [`Rebalancer`] plus the
    /// `engine.rebalance.*` metrics.
    pub fn maybe_rebalance(&mut self, grid: &Grid) -> bool {
        if self.rebalancer.is_none() {
            return false;
        }
        self.flush(grid);
        // Publish (lazily) so every rank's gauges reflect the latest
        // committed batch, then fence before the root reads them.
        self.snapshot();
        grid.world().barrier();
        let epoch = self.epoch().unwrap_or(0);
        let layout = Arc::clone(self.a.info().layout());
        let verdict: (f64, Option<Vec<Index>>) = {
            let mine = (grid.world().rank() == 0).then(|| {
                let loads = read_rank_load_gauges(grid.p());
                let reb = self.rebalancer.as_ref().expect("checked above");
                (
                    imbalance(&loads),
                    reb.decide(layout.row_cuts(), &loads, epoch),
                )
            });
            grid.world().bcast(0, mine)
        };
        let (imb, cuts) = verdict;
        self.rebalancer
            .as_mut()
            .expect("checked above")
            .note_decision(imb);
        dspgemm_obs::global().gauge_set("engine.rebalance.imbalance", imb);
        let Some(cuts) = cuts else { return false };
        let _sp = dspgemm_obs::span("engine", "migrate").attr("epoch", epoch);
        let new_layout = Arc::new(Layout::square(cuts));
        let me = grid.world().rank();
        let cat = dspgemm_mpi::CommCategory::Alltoall as usize;
        let sent_before = grid.world().comm_stats().per_rank[me].bytes[cat];
        let threads = self.exec.threads;
        let sa = self
            .a
            .migrate_to(grid, &new_layout, threads, &mut self.timer);
        let sb = self
            .b
            .migrate_to(grid, &new_layout, threads, &mut self.timer);
        let sc = self
            .c
            .migrate_to(grid, &new_layout, threads, &mut self.timer);
        let sf = match &mut self.f {
            Some(f) => f.migrate_to(grid, &new_layout, threads, &mut self.timer),
            None => MigrationStats::default(),
        };
        // Fence, then meter this rank's own migration sends (a rank's own
        // byte counters move only on its own sends, so the delta is exact
        // and deterministic) and sum them network-wide.
        grid.world().barrier();
        let sent = grid.world().comm_stats().per_rank[me].bytes[cat] - sent_before;
        let bytes = grid.world().allreduce(sent, |x, y| x + y);
        let moved_in = (sa.moved_in + sb.moved_in + sc.moved_in + sf.moved_in) as u64;
        dspgemm_obs::instant(
            "engine",
            "migrated",
            &[("epoch", epoch), ("bytes", bytes), ("moved_in", moved_in)],
        );
        let reg = dspgemm_obs::global();
        reg.counter_add("engine.rebalance.bytes", bytes);
        let reb = self.rebalancer.as_mut().expect("checked above");
        reb.note_migration(epoch, bytes);
        reg.gauge_set("engine.rebalance.migrations", reb.migrations() as f64);
        // Re-publish under the new layout: the next epoch carries the new
        // cuts, pinned pre-migration epochs keep the old ones.
        self.dirty = true;
        self.publish();
        true
    }

    // ------------------------------------------------------------------
    // Epoch-anchored recovery (see `crate::recovery` for the protocol)
    // ------------------------------------------------------------------

    /// Opts this session into epoch-anchored recovery: batches applied
    /// through [`DynSpGemm::try_apply_algebraic`] are write-ahead logged and
    /// replicated to the buddy rank `(r + 1) mod p`, periodic anchors bound
    /// replay, and [`DynSpGemm::recover`] /
    /// [`DynSpGemm::recover_as_replacement`] restore the grid after a rank
    /// failure. Collective over the grid (the initial anchor is exchanged
    /// buddy-to-buddy). Requires a published, batch-free state — enable
    /// right after construction or after an explicit publish.
    ///
    /// # Panics
    /// Panics if recovery is already enabled, if rebalancing is enabled
    /// (anchors pin a layout), if a submitted batch is pending, or if a
    /// committed batch has not been published yet.
    pub fn enable_recovery(&mut self, grid: &Grid, cfg: RecoveryConfig) {
        assert!(self.recovery.is_none(), "recovery is already enabled");
        assert!(
            self.rebalancer.is_none(),
            "rebalancing and epoch-anchored recovery are mutually exclusive (anchors pin a layout)"
        );
        assert!(
            self.pending.is_none(),
            "flush() the submitted algebraic batch before enable_recovery()"
        );
        assert!(
            !self.dirty,
            "publish() committed batches before enable_recovery()"
        );
        assert!(cfg.anchor_period >= 1, "anchor_period must be at least 1");
        assert!(cfg.max_log >= 1, "max_log must be at least 1");
        let anchor = self.capture_anchor();
        let world = grid.world();
        let (p, me) = (world.size(), world.rank());
        let (succ, pred) = ((me + 1) % p, (me + p - 1) % p);
        let got: Anchor<S::Elem> = world.sendrecv(succ, anchor.clone(), pred, TAG_ANCHOR);
        self.recovery = Some(RecoveryState {
            cfg,
            newest: anchor,
            prev: None,
            log: Vec::new(),
            replica: ReplicaBundle {
                newest: got,
                prev: None,
                log: Vec::new(),
            },
        });
    }

    /// The recovery state, when enabled (anchor/log diagnostics for tests
    /// and experiments).
    pub fn recovery(&self) -> Option<&RecoveryState<S::Elem>> {
        self.recovery.as_ref()
    }

    /// Fault-tolerant [`DynSpGemm::apply_algebraic`]: write-ahead logs the
    /// batch locally and at the buddy rank, applies it, then passes a
    /// grid-wide agreement fence — so a batch whose epoch *any* rank
    /// publishes is guaranteed logged on *every* rank, and replay after a
    /// failure can always reach the commit frontier. Returns `Err` when a
    /// peer failure (or this rank's own injected crash) interrupts the
    /// batch; the caller then runs [`DynSpGemm::recover`] (survivors) or
    /// [`DynSpGemm::recover_as_replacement`] (the crashed rank) and
    /// re-submits every batch the returned report says did not commit.
    ///
    /// Recovery mode requires the publish-per-batch discipline: call
    /// [`DynSpGemm::publish`] after every `Ok` before the next batch (the
    /// log keys batches by published epoch).
    ///
    /// # Panics
    /// Panics if recovery is not enabled, a submitted batch is pending, or
    /// the previous committed batch was not published.
    pub fn try_apply_algebraic(
        &mut self,
        grid: &Grid,
        a_updates: Vec<Triple<S::Elem>>,
        b_updates: Vec<Triple<S::Elem>>,
    ) -> Result<(), CommError> {
        assert!(
            self.recovery.is_some(),
            "enable_recovery() before try_apply_algebraic()"
        );
        assert!(
            self.pending.is_none(),
            "recovery mode is incompatible with the submit/flush lookahead"
        );
        assert!(
            !self.dirty,
            "recovery mode requires publish() after every committed batch"
        );
        // Deterministic anchor refresh at batch boundaries: both triggers
        // key on counters that move in lockstep across ranks, so every rank
        // refreshes at the same batch.
        {
            let rec = self.recovery.as_ref().expect("checked above");
            let window = self.snapshots.published() - rec.newest.published;
            if window >= rec.cfg.anchor_period || rec.log.len() >= rec.cfg.max_log {
                self.refresh_anchor(grid)?;
            }
        }
        let world = grid.world();
        let (p, me) = (world.size(), world.rank());
        let (succ, pred) = ((me + 1) % p, (me + p - 1) % p);
        let entry = LoggedBatch {
            epoch: self.snapshots.published(),
            a_ups: a_updates,
            b_ups: b_updates,
        };
        // Write-ahead: ship the entry to the buddy before applying anything.
        // Local append happens only after the exchange completes, so a rank
        // that errors here retries the same batch cleanly after recovery.
        let got: LoggedBatch<S::Elem> =
            catch_comm_mut(|| world.sendrecv(succ, entry.clone(), pred, TAG_WAL))?;
        {
            let rec = self.recovery.as_mut().expect("checked above");
            rec.log.push(entry.clone());
            rec.replica.log.push(got);
        }
        catch_comm_mut(|| {
            self.apply_algebraic_core(grid, entry.a_ups, entry.b_ups);
            // Post-batch agreement fence: a failed rank cannot contribute,
            // so completing it proves every rank logged and applied the
            // batch — the publish that follows is then safe to count as
            // committed.
            let n = world.allreduce(1u64, |x, y| x + y);
            debug_assert_eq!(n as usize, p, "agreement fence lost a contribution");
        })
    }

    /// Captures a full rollback anchor of the current published state
    /// (copy-on-write: warm blocks re-share their snapshot `Arc`s).
    fn capture_anchor(&mut self) -> Anchor<S::Elem> {
        Anchor {
            published: self.snapshots.published(),
            flops: self.flops,
            a: MatImage::capture(&mut self.a),
            b: MatImage::capture(&mut self.b),
            c: MatImage::capture(&mut self.c),
            f: self.f.as_mut().map(MatImage::capture),
        }
    }

    /// Captures a new anchor and exchanges it with the buddy ring, then
    /// commits the two-window rotation on both the own and the replica
    /// side. Windows move only after the exchange completes: a crash racing
    /// the refresh leaves every surviving rank holding its old windows, and
    /// the rank-minimum rollback agreement in [`DynSpGemm::recover`] picks
    /// the anchor all ranks still share.
    fn refresh_anchor(&mut self, grid: &Grid) -> Result<(), CommError> {
        let _sp = dspgemm_obs::span("engine", "anchor_refresh")
            .attr("published", self.snapshots.published());
        let anchor = self.capture_anchor();
        let world = grid.world();
        let (p, me) = (world.size(), world.rank());
        let (succ, pred) = ((me + 1) % p, (me + p - 1) % p);
        let got: Anchor<S::Elem> =
            catch_comm_mut(|| world.sendrecv(succ, anchor.clone(), pred, TAG_ANCHOR))?;
        let rec = self.recovery.as_mut().expect("recovery enabled");
        rec.prev = Some(std::mem::replace(&mut rec.newest, anchor));
        let keep_from = rec.prev.as_ref().expect("just set").published;
        rec.log.retain(|e| e.epoch >= keep_from);
        let old = std::mem::replace(&mut rec.replica.newest, got);
        let replica_keep_from = old.published;
        rec.replica.prev = Some(old);
        rec.replica.log.retain(|e| e.epoch >= replica_keep_from);
        Ok(())
    }

    /// Rolls the live matrices and counters back to an anchor. Pinned
    /// snapshots of rolled-back epochs are untouched — only the working
    /// blocks are replaced, and they re-share the anchor's images
    /// copy-on-write.
    fn restore_anchor(&mut self, anchor: &Anchor<S::Elem>) {
        let threads = self.exec.threads;
        anchor.a.restore_into(&mut self.a, threads);
        anchor.b.restore_into(&mut self.b, threads);
        anchor.c.restore_into(&mut self.c, threads);
        match (&mut self.f, &anchor.f) {
            (Some(f), Some(img)) => img.restore_into(f, threads),
            (None, None) => {}
            _ => panic!("anchor filter presence must match the session's track_filter"),
        }
        self.flops = anchor.flops;
        self.dirty = false;
    }

    /// Replays logged batches in epoch order through the normal collective
    /// apply path, publishing a catch-up epoch whenever this rank's counter
    /// lags the entry's (so all ranks' epoch numbering realigns at the
    /// commit frontier). Collective: every rank replays the same number of
    /// entries.
    fn replay(&mut self, grid: &Grid, entries: Vec<LoggedBatch<S::Elem>>) {
        for e in entries {
            let target = e.epoch;
            self.apply_algebraic_core(grid, e.a_ups, e.b_ups);
            if self.snapshots.published() <= target {
                debug_assert_eq!(
                    self.snapshots.published(),
                    target,
                    "replay publishes must stay contiguous"
                );
                self.publish();
            }
        }
    }

    /// Publishes the uniform post-recovery epoch, captures a fresh anchor
    /// at it, exchanges anchors around the buddy ring and resets every log
    /// window — restoring the full recovery invariant (including the
    /// replacement rank's replica of *its* predecessor, which the crash
    /// destroyed). Collective.
    fn reanchor(&mut self, grid: &Grid, cfg: RecoveryConfig) {
        self.publish();
        let anchor = self.capture_anchor();
        let world = grid.world();
        let (p, me) = (world.size(), world.rank());
        let (succ, pred) = ((me + 1) % p, (me + p - 1) % p);
        let got: Anchor<S::Elem> = world.sendrecv(succ, anchor.clone(), pred, TAG_ANCHOR);
        self.recovery = Some(RecoveryState {
            cfg,
            newest: anchor,
            prev: None,
            log: Vec::new(),
            replica: ReplicaBundle {
                newest: got,
                prev: None,
                log: Vec::new(),
            },
        });
    }

    /// Recovers a *surviving* rank after a peer failure surfaced as
    /// `Err(CommError::PeerFailed { .. })` from
    /// [`DynSpGemm::try_apply_algebraic`]: advances the communicator
    /// recovery epoch, agrees on the failed set, ships the replica bundle
    /// to the replacement (if this rank is the failed rank's buddy), rolls
    /// back to the grid-minimum anchor and deterministically replays to the
    /// grid-maximum commit frontier. Collective — every surviving rank
    /// calls `recover` while the failed rank calls
    /// [`DynSpGemm::recover_as_replacement`], in the same incident.
    ///
    /// Returns an allreduced [`RecoveryReport`]; the caller re-submits every
    /// batch whose publish would be epoch `>= committed_publishes`.
    pub fn recover(&mut self, grid: &Grid) -> RecoveryReport {
        assert!(
            self.recovery.is_some(),
            "enable_recovery() before recover()"
        );
        // A submitted batch cannot be pending: recovery mode forbids the
        // lookahead, and a panic-unwound batch never parks one.
        assert!(self.pending.is_none(), "recovery found a pending batch");
        let mut sp = dspgemm_obs::span("engine", "recover");
        let world = grid.world();
        let (p, me) = (world.size(), world.rank());
        assert!(p <= 64, "failure agreement uses a 64-bit rank mask");
        // (1) Enter the next recovery epoch and rendezvous under it: stale
        // traffic from the interrupted batch is dropped, early traffic from
        // ranks already recovering was buffered and now matches.
        let recovery_epoch = grid.advance_recovery_epoch();
        world.barrier();
        // (2) Agree on the failed set (consumed failure markers, OR-ed).
        let mine: u64 = world
            .take_failed_ranks()
            .iter()
            .fold(0, |m, &r| m | (1u64 << r));
        let mask = world.allreduce(mine, |a, b| a | b);
        assert_eq!(
            mask.count_ones(),
            1,
            "recovery handles one failure per incident (failed mask {mask:#x})"
        );
        let failed = mask.trailing_zeros() as usize;
        assert_ne!(failed, me, "a crashed rank must recover_as_replacement()");
        let detect_local = world.last_failure_detect_ns();
        // (3) The failed rank's buddy ships it the replica bundle.
        let shipped = if me == (failed + 1) % p {
            let bundle = self
                .recovery
                .as_ref()
                .expect("checked above")
                .replica
                .clone();
            let bytes = bundle.wire_bytes();
            world.send(failed, TAG_REBUILD, bundle);
            bytes
        } else {
            0
        };
        let rebuild_bytes = world.allreduce(shipped, |a, b| a + b);
        // (4) Commit frontier P*: the furthest published count any rank
        // reached. The agreement fence guarantees every batch below it is
        // logged grid-wide.
        let p_star = world.allreduce(self.snapshots.published(), |a, b| a.max(b));
        // (5) Rollback anchor A: the newest anchor *every* rank still holds
        // (two-window retention covers a crash racing a refresh).
        let a_min = world.allreduce(
            self.recovery
                .as_ref()
                .expect("checked above")
                .newest
                .published,
            |a, b| a.min(b),
        );
        // (6) Roll back.
        let rolled_back = self.snapshots.published() - a_min;
        let anchor = {
            let rec = self.recovery.as_ref().expect("checked above");
            if rec.newest.published == a_min {
                rec.newest.clone()
            } else {
                let prev = rec.prev.as_ref().expect(
                    "rollback target predates the newest anchor but no prev window is held",
                );
                assert_eq!(
                    prev.published, a_min,
                    "two-window retention must cover the agreed rollback anchor"
                );
                prev.clone()
            }
        };
        self.restore_anchor(&anchor);
        // (7) Deterministic replay of the committed window [A, P*).
        let entries: Vec<LoggedBatch<S::Elem>> = self
            .recovery
            .as_ref()
            .expect("checked above")
            .log
            .iter()
            .filter(|e| e.epoch >= a_min && e.epoch < p_star)
            .cloned()
            .collect();
        assert_eq!(
            entries.len() as u64,
            p_star - a_min,
            "write-ahead log must cover every committed epoch past the rollback anchor"
        );
        let replayed = entries.len() as u64;
        self.replay(grid, entries);
        // (8) Uniform re-anchor at the recovered frontier.
        let cfg = self.recovery.as_ref().expect("checked above").cfg;
        self.reanchor(grid, cfg);
        // (9) Fence, then agree on the report numbers.
        world.barrier();
        let detect_ns = world.allreduce(detect_local, |a, b| a.max(b));
        let rollback_epochs = world.allreduce(rolled_back, |a, b| a.max(b));
        sp.set_attr("failed_rank", failed as u64);
        sp.set_attr("replayed_batches", replayed);
        sp.set_attr("rollback_epochs", rollback_epochs);
        record_recovery_metrics(detect_ns, rollback_epochs, replayed, rebuild_bytes);
        RecoveryReport {
            failed_ranks: vec![failed],
            committed_publishes: p_star,
            rollback_epochs,
            replayed_batches: replayed,
            rebuild_bytes,
            detect_ns,
            recovery_epoch,
        }
    }

    /// Rebuilds the *failed* rank as a replacement after its own injected
    /// crash surfaced as `Err(CommError::Crashed { .. })`: the old session
    /// is gone (drop it), this constructor receives the replica bundle from
    /// the buddy, rebuilds the matrices at the agreed rollback anchor and
    /// replays the crashed rank's own logged inputs alongside the
    /// survivors' [`DynSpGemm::recover`] — the identical collective
    /// sequence, so the grid stays in lockstep. `exec` and `transpose_mode`
    /// must match the original session's (rank-uniform settings).
    pub fn recover_as_replacement(
        grid: &Grid,
        exec: Exec<S>,
        transpose_mode: TransposeMode,
        cfg: RecoveryConfig,
    ) -> (Self, RecoveryReport) {
        let mut sp = dspgemm_obs::span("engine", "recover").attr("replacement", 1);
        let world = grid.world();
        let (p, me) = (world.size(), world.rank());
        assert!(p <= 64, "failure agreement uses a 64-bit rank mask");
        // (1) Same rendezvous as the survivors.
        let recovery_epoch = grid.advance_recovery_epoch();
        world.barrier();
        // (2) This rank *is* the failure.
        let mask = world.allreduce(1u64 << me, |a, b| a | b);
        assert_eq!(
            mask.count_ones(),
            1,
            "recovery handles one failure per incident (failed mask {mask:#x})"
        );
        assert_eq!(
            mask.trailing_zeros() as usize,
            me,
            "replacement rank disagrees with the grid about who failed"
        );
        // (3) Receive the replica bundle from the buddy.
        let bundle: ReplicaBundle<S::Elem> = world.recv((me + 1) % p, TAG_REBUILD);
        let rebuild_bytes = world.allreduce(0u64, |a, b| a + b);
        // (4)(5) Frontier and rollback agreement: this rank's published
        // count is lost with the crash, so it contributes the identities.
        let p_star = world.allreduce(0u64, |a, b| a.max(b));
        let a_min = world.allreduce(bundle.newest.published, |a, b| a.min(b));
        // (6) Rebuild at the rollback anchor.
        let ReplicaBundle { newest, prev, log } = bundle;
        let anchor = if newest.published == a_min {
            newest
        } else {
            let prev = prev.expect(
                "rollback target predates the newest anchor but no prev window was shipped",
            );
            assert_eq!(
                prev.published, a_min,
                "two-window retention must cover the agreed rollback anchor"
            );
            prev
        };
        let threads = exec.threads;
        let mut snapshots = SnapshotStore::new();
        snapshots.resume_at(a_min);
        let mut eng = Self {
            a: anchor.a.build(grid, threads),
            b: anchor.b.build(grid, threads),
            c: anchor.c.build(grid, threads),
            f: anchor.f.as_ref().map(|img| img.build(grid, threads)),
            exec,
            timer: PhaseTimer::new(),
            flops: anchor.flops,
            transpose_mode,
            snapshots,
            dirty: false,
            pending: None,
            rebalancer: None,
            recovery: None,
        };
        // (7) Replay the crashed rank's own logged inputs.
        let entries: Vec<LoggedBatch<S::Elem>> = log
            .into_iter()
            .filter(|e| e.epoch >= a_min && e.epoch < p_star)
            .collect();
        assert_eq!(
            entries.len() as u64,
            p_star - a_min,
            "replica log must cover every committed epoch past the rollback anchor"
        );
        let replayed = entries.len() as u64;
        eng.replay(grid, entries);
        // (8) Uniform re-anchor — this also rebuilds the replica this rank
        // should hold for its predecessor, which died with the crash.
        eng.reanchor(grid, cfg);
        // (9) Fence + report (this rank detected nothing and rolled back
        // nothing it still knows about; the allreduces fill in the grid
        // view).
        world.barrier();
        let detect_ns = world.allreduce(0u64, |a, b| a.max(b));
        let rollback_epochs = world.allreduce(0u64, |a, b| a.max(b));
        sp.set_attr("failed_rank", me as u64);
        sp.set_attr("replayed_batches", replayed);
        sp.set_attr("rollback_epochs", rollback_epochs);
        record_recovery_metrics(detect_ns, rollback_epochs, replayed, rebuild_bytes);
        let report = RecoveryReport {
            failed_ranks: vec![me],
            committed_publishes: p_star,
            rollback_epochs,
            replayed_batches: replayed,
            rebuild_bytes,
            detect_ns,
            recovery_epoch,
        };
        (eng, report)
    }
}

/// Publishes the `engine.recovery.*` metrics one completed recovery emits
/// (each rank records the allreduced, grid-agreed values).
fn record_recovery_metrics(
    detect_ns: u64,
    rollback_epochs: u64,
    replayed: u64,
    rebuild_bytes: u64,
) {
    let reg = dspgemm_obs::global();
    reg.counter_add("engine.recovery.count", 1);
    reg.gauge_set("engine.recovery.detect_ns", detect_ns as f64);
    reg.gauge_set("engine.recovery.rollback_epochs", rollback_epochs as f64);
    reg.gauge_set("engine.recovery.replayed_batches", replayed as f64);
    reg.gauge_set("engine.recovery.rebuild_bytes", rebuild_bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::{MinPlus, U64Plus};
    use dspgemm_sparse::Index;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    #[test]
    fn session_maintains_product_through_mixed_batches() {
        let n: Index = 24;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples(s, n, 70)
                } else {
                    vec![]
                }
            };
            let a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
            let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, true);
            // Algebraic batch.
            eng.apply_algebraic(
                &grid,
                random_triples(10 + comm.rank() as u64, n, 8),
                random_triples(20 + comm.rank() as u64, n, 8),
            );
            // General batch: delete some of A.
            let a_cur = eng.a.gather_to_root(comm);
            let a_upd = if comm.rank() == 0 {
                let cur = a_cur.unwrap();
                let mut upd = GeneralUpdates::new();
                for t in cur.iter().step_by(5) {
                    upd.deletes.push((t.row, t.col));
                }
                upd
            } else {
                GeneralUpdates::new()
            };
            eng.apply_general(&grid, a_upd, GeneralUpdates::new());
            // Another algebraic batch on top.
            eng.apply_algebraic(&grid, random_triples(30 + comm.rank() as u64, n, 8), vec![]);
            // Invariant: C == static A'·B'.
            let (c_static, _) =
                crate::summa::summa::<U64Plus>(&grid, &eng.a, &eng.b, 1, &mut timer);
            (
                eng.c.gather_to_root(comm),
                c_static.gather_to_root(comm),
                eng.flops,
            )
        });
        let (c_dyn, c_static, flops) = &out.results[0];
        let dd = Dense::from_triples::<U64Plus>(24, 24, c_dyn.as_ref().unwrap());
        let ds = Dense::from_triples::<U64Plus>(24, 24, c_static.as_ref().unwrap());
        assert_eq!(dd.diff(&ds), vec![]);
        assert!(*flops > 0);
    }

    #[test]
    fn submitted_batches_match_sequential_application() {
        let n: Index = 20;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = |s: u64| {
                    if comm.rank() == 0 {
                        random_triples(s, n, 50)
                    } else {
                        vec![]
                    }
                };
                let a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
                let b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
                let mut seq = DynSpGemm::<U64Plus>::new(&grid, a.clone(), b.clone(), 1, false);
                let mut pip = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
                for round in 0..4u64 {
                    let a_ups = random_triples(40 + round, n, 6);
                    let b_ups = random_triples(80 + round, n, 6);
                    seq.apply_algebraic(&grid, a_ups.clone(), b_ups.clone());
                    pip.submit_algebraic(&grid, a_ups, b_ups);
                    assert!(pip.pending_depth() <= 1, "lookahead must stay depth-1");
                }
                assert_eq!(pip.pending_depth(), 1);
                pip.flush(&grid);
                assert_eq!(pip.pending_depth(), 0);
                pip.flush(&grid); // idempotent
                                  // Epoch sequence equals the sequential schedule's.
                let (se, pe) = (seq.snapshot().epoch(), pip.snapshot().epoch());
                assert_eq!(se, pe);
                (
                    seq.c.gather_to_root(comm),
                    pip.c.gather_to_root(comm),
                    seq.flops == pip.flops,
                )
            });
            let (c_seq, c_pip, flops_eq) = &out.results[0];
            assert_eq!(c_seq, c_pip, "p={p}: pipelined C diverged");
            assert!(flops_eq, "p={p}: pipelined flop count diverged");
        }
    }

    #[test]
    fn snapshot_refuses_pending_batch() {
        let out = run(1, |comm| {
            let grid = Grid::new(comm);
            let a = DistMat::<u64>::empty(&grid, 8, 8);
            let b = DistMat::<u64>::empty(&grid, 8, 8);
            let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
            eng.submit_algebraic(&grid, vec![Triple::new(0, 0, 1)], vec![]);
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng.snapshot();
            }))
            .is_err();
            // After a flush the snapshot succeeds and reflects the batch.
            eng.flush(&grid);
            let snap = eng.snapshot();
            panicked && snap.epoch() > 0
        });
        assert!(out.results[0]);
    }

    #[test]
    fn untracked_session_rejects_general_updates() {
        let out = run(1, |comm| {
            let grid = Grid::new(comm);
            let a = DistMat::<u64>::empty(&grid, 8, 8);
            let b = DistMat::<u64>::empty(&grid, 8, 8);
            let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng.apply_general(&grid, GeneralUpdates::new(), GeneralUpdates::new());
            }))
            .is_err()
        });
        assert!(out.results[0]);
    }

    #[test]
    fn recompute_static_restores_invariant() {
        let n: Index = 16;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(4, n, 40)
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
            let before = eng.c.gather_to_root(comm);
            eng.recompute_static(&grid);
            before == eng.c.gather_to_root(comm)
        });
        assert!(out.results.iter().all(|&x| x));
    }

    #[test]
    fn min_plus_session_with_general_updates() {
        let n: Index = 14;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t: Vec<Triple<f64>> = if comm.rank() == 0 {
                let mut rng = SplitMix64::new(6);
                (0..50)
                    .map(|_| {
                        Triple::new(
                            rng.gen_range(n as u64) as Index,
                            rng.gen_range(n as u64) as Index,
                            (rng.gen_range(9) + 1) as f64,
                        )
                    })
                    .collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let mut eng = DynSpGemm::<MinPlus>::new(&grid, a, b, 1, true);
            // Increase a value (general under min-plus).
            let a_cur = eng.a.gather_to_root(comm);
            let a_upd = if comm.rank() == 0 {
                let cur = a_cur.unwrap();
                let mut upd = GeneralUpdates::new();
                if let Some(t0) = cur.first() {
                    upd.sets.push(Triple::new(t0.row, t0.col, t0.val + 100.0));
                }
                upd
            } else {
                GeneralUpdates::new()
            };
            eng.apply_general(&grid, a_upd, GeneralUpdates::new());
            let (c_static, _) =
                crate::summa::summa::<MinPlus>(&grid, &eng.a, &eng.b, 1, &mut timer);
            eng.c.gather_to_root(comm) == c_static.gather_to_root(comm)
        });
        assert!(out.results.iter().all(|&x| x));
    }
}
