//! Epoch-anchored recovery: write-ahead logging, buddy replication and
//! deterministic replay for [`crate::engine::DynSpGemm`] sessions.
//!
//! ## Failure model
//!
//! One rank fail-stops per incident (a simulated crash injected by
//! [`dspgemm_mpi::FaultPlan`]); every other rank survives and observes the
//! failure as a typed [`dspgemm_mpi::CommError`] raised out of whatever
//! communication call it was blocked in. The failed rank's *thread* is still
//! alive in the simulator — it catches its own `Crashed` error and rejoins
//! the grid as the **replacement** for itself, rebuilding its lost state from
//! its buddy's replica.
//!
//! ## Protocol invariants
//!
//! * **Write-ahead discipline** — a batch is applied only after its inputs
//!   are logged locally *and* at the buddy rank `(r + 1) mod p`; a post-batch
//!   agreement fence (an allreduce no failed rank can complete) guarantees
//!   that a *committed* batch — one whose epoch any rank published — is
//!   logged everywhere. Replay therefore always finds the inputs it needs.
//! * **Epoch anchors** — every `anchor_period` committed batches each rank
//!   captures a full [`Anchor`] (copy-on-write `Arc` images of `A`, `B`, `C`
//!   and `F`, plus the published-epoch counter and the flop counter) and
//!   ships it to its buddy. The log is truncated to the window since the
//!   *previous* anchor: two anchor windows are always retained, so a crash
//!   racing an anchor refresh still leaves every rank holding the
//!   rank-minimum anchor the grid agrees to roll back to.
//! * **Deterministic replay** — recovery rolls every rank back to the agreed
//!   anchor `A` and re-applies the logged batches up to the agreed commit
//!   frontier `P*` (the maximum published count any rank reached). Each rank
//!   replays its *own* original inputs, so the collective schedule and the
//!   resulting matrices are bit-identical to the fault-free execution.
//!   Rolled-back epochs that readers still pin stay untouched (the snapshot
//!   layer is immutable), and catch-up publishes realign every rank's epoch
//!   counter at `P*`.
//!
//! Scope (asserted, not silently assumed): one failure per incident, the
//! buddy of a failed rank alive, recovery mutually exclusive with dynamic
//! rebalancing (anchors pin a layout) and with the submit/flush lookahead
//! (the log records committed batch boundaries only).

use crate::distmat::{DistMat, Elem};
use crate::grid::Grid;
use crate::layout::Layout;
use dspgemm_sparse::{Csr, Index, Triple};
use dspgemm_util::{WireDecode, WireEncode, WireError, WireReader, WireSize};
use std::sync::Arc;

/// User tag of the per-batch write-ahead-log buddy exchange.
pub(crate) const TAG_WAL: u64 = 110;
/// User tag of the anchor-refresh buddy exchange.
pub(crate) const TAG_ANCHOR: u64 = 111;
/// User tag of the replica shipment that rebuilds a replacement rank.
pub(crate) const TAG_REBUILD: u64 = 112;

/// Tuning knobs of the recovery layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Committed batches between anchor captures. Smaller = cheaper replay,
    /// more anchor traffic.
    pub anchor_period: u64,
    /// Hard bound on the retained log window (entries since the previous
    /// anchor); reaching it forces an anchor refresh even mid-period.
    pub max_log: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            anchor_period: 4,
            max_log: 16,
        }
    }
}

/// One write-ahead-logged algebraic batch: the rank's *own* original inputs,
/// tagged with the epoch its commit publishes (the published-epoch counter at
/// append time). Replaying every rank's own entries in epoch order re-runs
/// the identical collective schedule.
#[derive(Debug, Clone)]
pub struct LoggedBatch<V> {
    /// The epoch this batch's publish produces.
    pub epoch: u64,
    /// This rank's share of the `A` updates, exactly as passed in.
    pub a_ups: Vec<Triple<V>>,
    /// This rank's share of the `B` updates, exactly as passed in.
    pub b_ups: Vec<Triple<V>>,
}

impl<V: WireSize> WireSize for LoggedBatch<V> {
    fn wire_bytes(&self) -> u64 {
        self.epoch.wire_bytes() + self.a_ups.wire_bytes() + self.b_ups.wire_bytes()
    }
}

impl<V: WireEncode> WireEncode for LoggedBatch<V> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.epoch.wire_encode(out);
        self.a_ups.wire_encode(out);
        self.b_ups.wire_encode(out);
    }
}

impl<V: WireDecode> WireDecode for LoggedBatch<V> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            epoch: u64::wire_decode(r)?,
            a_ups: Vec::wire_decode(r)?,
            b_ups: Vec::wire_decode(r)?,
        })
    }
}

/// A shippable copy-on-write image of one rank's block of a distributed
/// matrix: the shared CSR the snapshot layer already maintains, plus enough
/// layout to rebuild the [`DistMat`] from nothing on a replacement rank.
#[derive(Debug, Clone)]
pub struct MatImage<V> {
    /// Global row count.
    pub nrows: Index,
    /// Global column count.
    pub ncols: Index,
    /// Row cut points of the layout the image was captured under.
    pub row_cuts: Vec<Index>,
    /// Column cut points of the layout the image was captured under.
    pub col_cuts: Vec<Index>,
    /// The rank's block content (shared — capture is a refcount increment
    /// whenever the snapshot cache is warm).
    pub image: Arc<Csr<V>>,
}

impl<V: WireSize> WireSize for MatImage<V> {
    fn wire_bytes(&self) -> u64 {
        self.nrows.wire_bytes()
            + self.ncols.wire_bytes()
            + self.row_cuts.wire_bytes()
            + self.col_cuts.wire_bytes()
            + self.image.wire_bytes()
    }
}

impl<V: WireEncode> WireEncode for MatImage<V> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.nrows.wire_encode(out);
        self.ncols.wire_encode(out);
        self.row_cuts.wire_encode(out);
        self.col_cuts.wire_encode(out);
        self.image.wire_encode(out);
    }
}

impl<V: WireDecode> WireDecode for MatImage<V> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            nrows: Index::wire_decode(r)?,
            ncols: Index::wire_decode(r)?,
            row_cuts: Vec::wire_decode(r)?,
            col_cuts: Vec::wire_decode(r)?,
            image: Arc::wire_decode(r)?,
        })
    }
}

impl<V: Elem> MatImage<V> {
    /// Captures the matrix's current block image (copy-on-write: warms the
    /// CSR cache if the last batch touched the block, re-shares it
    /// otherwise).
    pub(crate) fn capture(mat: &mut DistMat<V>) -> Self {
        let image = mat.snapshot_csr();
        let info = mat.info();
        let layout = info.layout();
        Self {
            nrows: info.nrows,
            ncols: info.ncols,
            row_cuts: layout.row_cuts().to_vec(),
            col_cuts: layout.col_cuts().to_vec(),
            image,
        }
    }

    /// Rolls an existing matrix back to this image. Recovery never migrates
    /// layouts, so the image's cuts must match the matrix's current ones.
    pub(crate) fn restore_into(&self, mat: &mut DistMat<V>, threads: usize) {
        let layout = mat.info().layout();
        assert!(
            layout.row_cuts() == &self.row_cuts[..] && layout.col_cuts() == &self.col_cuts[..],
            "anchor layout does not match the live matrix (recovery excludes rebalancing)"
        );
        mat.restore_image(Arc::clone(&self.image), threads);
    }

    /// Builds a fresh [`DistMat`] holding this image — the replacement-rank
    /// rebuild path, which has no prior matrix to roll back.
    pub(crate) fn build(&self, grid: &Grid, threads: usize) -> DistMat<V> {
        let layout = Arc::new(Layout::from_cuts(
            self.row_cuts.clone(),
            self.col_cuts.clone(),
        ));
        assert_eq!(
            (layout.nrows(), layout.ncols()),
            (self.nrows, self.ncols),
            "anchor image cuts inconsistent with its global shape"
        );
        let mut mat = DistMat::empty_in(grid, &layout);
        mat.restore_image(Arc::clone(&self.image), threads);
        mat
    }
}

/// A full rollback point: copy-on-write images of all session matrices plus
/// the counters replay must restart from. `published` is the value of the
/// published-epoch counter at capture — i.e. the epoch the *next* publish
/// produces — so replaying entries with `epoch >= published` on top of the
/// anchor reproduces the fault-free state exactly.
#[derive(Debug, Clone)]
pub struct Anchor<V> {
    /// Published-epoch counter at capture (= next epoch number).
    pub published: u64,
    /// Accumulated local flop counter at capture (replay re-adds the rest,
    /// so post-recovery totals match the fault-free run).
    pub flops: u64,
    /// Image of the rank's `A` block.
    pub a: MatImage<V>,
    /// Image of the rank's `B` block.
    pub b: MatImage<V>,
    /// Image of the rank's `C` block.
    pub c: MatImage<V>,
    /// Image of the rank's Bloom filter block (iff the session tracks one).
    pub f: Option<MatImage<u64>>,
}

impl<V: WireSize> WireSize for Anchor<V> {
    fn wire_bytes(&self) -> u64 {
        self.published.wire_bytes()
            + self.flops.wire_bytes()
            + self.a.wire_bytes()
            + self.b.wire_bytes()
            + self.c.wire_bytes()
            + self.f.wire_bytes()
    }
}

impl<V: WireEncode> WireEncode for Anchor<V> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.published.wire_encode(out);
        self.flops.wire_encode(out);
        self.a.wire_encode(out);
        self.b.wire_encode(out);
        self.c.wire_encode(out);
        self.f.wire_encode(out);
    }
}

impl<V: WireDecode> WireDecode for Anchor<V> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            published: u64::wire_decode(r)?,
            flops: u64::wire_decode(r)?,
            a: MatImage::wire_decode(r)?,
            b: MatImage::wire_decode(r)?,
            c: MatImage::wire_decode(r)?,
            f: Option::wire_decode(r)?,
        })
    }
}

/// Everything rank `r` holds on behalf of its predecessor `(r - 1) mod p`:
/// the predecessor's two anchor windows and its log entries since the older
/// one. Shipping this bundle to a replacement rank restores exactly the
/// state the crashed rank would have recovered from locally.
#[derive(Debug, Clone)]
pub struct ReplicaBundle<V> {
    /// The predecessor's newest anchor.
    pub newest: Anchor<V>,
    /// The predecessor's previous anchor (two-window retention), if any.
    pub prev: Option<Anchor<V>>,
    /// The predecessor's log entries since the older retained anchor.
    pub log: Vec<LoggedBatch<V>>,
}

impl<V: WireSize> WireSize for ReplicaBundle<V> {
    fn wire_bytes(&self) -> u64 {
        self.newest.wire_bytes() + self.prev.wire_bytes() + self.log.wire_bytes()
    }
}

impl<V: WireEncode> WireEncode for ReplicaBundle<V> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.newest.wire_encode(out);
        self.prev.wire_encode(out);
        self.log.wire_encode(out);
    }
}

impl<V: WireDecode> WireDecode for ReplicaBundle<V> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            newest: Anchor::wire_decode(r)?,
            prev: Option::wire_decode(r)?,
            log: Vec::wire_decode(r)?,
        })
    }
}

/// Per-session recovery state: this rank's own anchor windows and log, plus
/// the replica it keeps for its predecessor in the buddy ring.
#[derive(Debug)]
pub struct RecoveryState<V> {
    pub(crate) cfg: RecoveryConfig,
    /// Own newest anchor.
    pub(crate) newest: Anchor<V>,
    /// Own previous anchor (two-window retention across refreshes).
    pub(crate) prev: Option<Anchor<V>>,
    /// Own write-ahead log since the older retained anchor.
    pub(crate) log: Vec<LoggedBatch<V>>,
    /// Replica of the predecessor rank `(r - 1) mod p`.
    pub(crate) replica: ReplicaBundle<V>,
}

impl<V> RecoveryState<V> {
    /// The configured tuning knobs.
    pub fn config(&self) -> RecoveryConfig {
        self.cfg
    }

    /// Published-epoch counter of the newest own anchor.
    pub fn anchor_published(&self) -> u64 {
        self.newest.published
    }

    /// Published-epoch counter of the previous own anchor, if retained.
    pub fn prev_anchor_published(&self) -> Option<u64> {
        self.prev.as_ref().map(|a| a.published)
    }

    /// Own log length (bounded by two anchor windows).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Replicated predecessor log length.
    pub fn replica_log_len(&self) -> usize {
        self.replica.log.len()
    }
}

/// What a completed recovery did — allreduced, so every rank (including the
/// replacement) returns identical numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The ranks that failed this incident (exactly one under the current
    /// single-failure scope).
    pub failed_ranks: Vec<usize>,
    /// The agreed commit frontier `P*`: the number of published epochs the
    /// recovered state reflects. Batches whose publish would be epoch
    /// `>= P*` did not commit and must be re-submitted by the caller.
    pub committed_publishes: u64,
    /// Maximum number of published epochs any rank rolled back (`P* - A`
    /// for the furthest-ahead rank).
    pub rollback_epochs: u64,
    /// Logged batches each rank replayed (`P* - A`, rank-uniform).
    pub replayed_batches: u64,
    /// Wire bytes of the replica bundle shipped to the replacement.
    pub rebuild_bytes: u64,
    /// Maximum failure-detection latency any rank observed (time from the
    /// crashed rank's failure marker send to its consumption), nanoseconds.
    pub detect_ns: u64,
    /// The communicator recovery epoch the grid advanced into.
    pub recovery_epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_sparse::semiring::U64Plus;

    #[test]
    fn config_default_is_sane() {
        let cfg = RecoveryConfig::default();
        assert!(cfg.anchor_period >= 1);
        assert!(cfg.max_log >= cfg.anchor_period as usize);
    }

    #[test]
    fn wire_sizes_compose() {
        let batch = LoggedBatch {
            epoch: 3,
            a_ups: vec![Triple::new(0, 0, 1u64)],
            b_ups: vec![],
        };
        // epoch (8) + a_ups (8 header + 16-byte triple) + b_ups (8 header).
        assert_eq!(batch.wire_bytes(), 8 + (8 + 16) + 8);
        let img = MatImage {
            nrows: 4,
            ncols: 4,
            row_cuts: vec![0, 2, 4],
            col_cuts: vec![0, 2, 4],
            image: Arc::new(Csr::<u64>::from_triples::<U64Plus>(2, 2, vec![])),
        };
        let anchor = Anchor {
            published: 1,
            flops: 0,
            a: img.clone(),
            b: img.clone(),
            c: img.clone(),
            f: None,
        };
        let bundle = ReplicaBundle {
            newest: anchor.clone(),
            prev: None,
            log: vec![batch],
        };
        // Sanity: nesting adds headers, never loses payload.
        assert!(bundle.wire_bytes() > anchor.wire_bytes());
        assert_eq!(
            anchor.wire_bytes(),
            8 + 8 + 3 * img.wire_bytes() + 1 // Option<None> = 1 byte
        );
    }
}
